"""Unit tests for histogram buckets and range estimation."""

import numpy as np
import pytest

from repro.histograms.base import Bucket, Histogram, values_and_frequencies


class TestBucket:
    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Bucket(5, 4, 1, 1)

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            Bucket(0, 1, -1, 1)

    def test_point_bucket_overlap(self):
        bucket = Bucket(5, 5, 10, 1)
        assert bucket.overlap_fraction(0, 10) == 1.0
        assert bucket.overlap_fraction(6, 10) == 0.0

    def test_partial_overlap_uniform(self):
        bucket = Bucket(0, 10, 100, 10)
        assert bucket.overlap_fraction(0, 5) == pytest.approx(0.5)
        assert bucket.overlap_fraction(-5, 15) == 1.0

    def test_point_query_on_wide_bucket(self):
        bucket = Bucket(0, 10, 100, 10)
        # A single point matches about one distinct value's share.
        assert bucket.overlap_fraction(5, 5) == pytest.approx(0.1)


class TestHistogram:
    def make(self) -> Histogram:
        return Histogram(
            [Bucket(0, 9, 50, 10), Bucket(10, 10, 30, 1), Bucket(11, 20, 20, 5)],
            null_count=10,
        )

    def test_totals(self):
        histogram = self.make()
        assert histogram.frequency == 100
        assert histogram.total == 110
        assert histogram.distinct == 16
        assert histogram.bucket_count == 3

    def test_overlapping_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram([Bucket(0, 5, 1, 1), Bucket(4, 9, 1, 1)])

    def test_domain_bounds(self):
        histogram = self.make()
        assert histogram.low == 0
        assert histogram.high == 20

    def test_empty_histogram(self):
        histogram = Histogram([], null_count=3)
        assert histogram.is_empty()
        assert histogram.estimate_range_count(0, 100) == 0.0
        with pytest.raises(ValueError):
            _ = histogram.low

    def test_full_range_count(self):
        histogram = self.make()
        assert histogram.estimate_range_count(0, 20) == pytest.approx(100)

    def test_range_selectivity_includes_nulls_in_denominator(self):
        histogram = self.make()
        assert histogram.estimate_range_selectivity(0, 20) == pytest.approx(
            100 / 110
        )

    def test_partial_range(self):
        histogram = self.make()
        # Half of the first bucket.
        assert histogram.estimate_range_count(0, 4.5) == pytest.approx(25)

    def test_spike_bucket_range(self):
        histogram = self.make()
        assert histogram.estimate_range_count(10, 10) == pytest.approx(30)

    def test_equality_estimate_uses_distinct(self):
        histogram = self.make()
        assert histogram.estimate_equality_count(10) == pytest.approx(30)
        assert histogram.estimate_equality_count(15) == pytest.approx(4)
        assert histogram.estimate_equality_count(100) == 0.0

    def test_empty_range(self):
        histogram = self.make()
        assert histogram.estimate_range_count(5, 4) == 0.0

    def test_scale(self):
        histogram = self.make().scale(2.0)
        assert histogram.frequency == 200
        assert histogram.null_count == 20
        with pytest.raises(ValueError):
            histogram.scale(-1)

    def test_selectivity_capped_at_one(self):
        histogram = Histogram([Bucket(0, 0, 5, 1)])
        assert histogram.estimate_range_selectivity(-1, 1) <= 1.0


class TestValuesAndFrequencies:
    def test_counts_and_nulls(self):
        values = np.array([1.0, 2.0, 2.0, np.nan, 3.0, np.nan])
        distinct, counts, nulls = values_and_frequencies(values)
        assert distinct.tolist() == [1.0, 2.0, 3.0]
        assert counts.tolist() == [1, 2, 1]
        assert nulls == 2

    def test_all_null(self):
        distinct, counts, nulls = values_and_frequencies(
            np.array([np.nan, np.nan])
        )
        assert distinct.size == 0
        assert nulls == 2

    def test_empty(self):
        distinct, counts, nulls = values_and_frequencies(np.array([]))
        assert distinct.size == 0
        assert nulls == 0
