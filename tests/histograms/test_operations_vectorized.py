"""Vectorized segment algebra vs. the pure-Python reference loops.

The ``np.searchsorted`` + difference-array implementation of mass
assignment (and the batched segment products in ``join_histograms`` /
``variation_distance``) must agree with the original loop implementations
— kept as ``*_reference`` — up to floating-point associativity.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.histograms.base import Bucket, Histogram
from repro.histograms.maxdiff import build_maxdiff
from repro.histograms.operations import (
    _assign_mass,
    _assign_mass_arrays,
    _merged_edges,
    _merged_segments,
    _segment_bounds,
    join_histograms,
    join_histograms_reference,
    variation_distance,
    variation_distance_reference,
)

RTOL = 1e-9
ATOL = 1e-9


def random_histogram(rng: random.Random, point_bias: float = 0.3) -> Histogram:
    count = rng.randint(1, 6)
    edges = sorted(rng.sample(range(0, 1001), 2 * count))
    buckets = []
    for i in range(count):
        low, high = float(edges[2 * i]), float(edges[2 * i + 1])
        if rng.random() < point_bias:
            high = low  # point bucket
        frequency = float(rng.randint(1, 5000))
        width_cap = high - low + 1.0
        distinct = float(rng.randint(1, max(1, int(min(frequency, width_cap)))))
        buckets.append(Bucket(low, high, frequency, distinct))
    return Histogram(buckets, null_count=float(rng.choice([0, 0, 7])))


def maxdiff_pair(seed: int, size: int = 4000, buckets: int = 200):
    rng = np.random.default_rng(seed)
    first = np.floor(rng.zipf(1.4, size=size).clip(max=3000)).astype(float)
    second = np.floor(rng.normal(1500.0, 300.0, size=size)).clip(0, 3000)
    return (
        build_maxdiff(first, max_buckets=buckets),
        build_maxdiff(second, max_buckets=buckets),
    )


class TestSegmentLayout:
    def test_merged_edges_match_segment_materialization(self):
        rng = random.Random(5)
        for _ in range(30):
            pair = [random_histogram(rng), random_histogram(rng)]
            edges = _merged_edges(pair)
            segments = _merged_segments(pair)
            assert len(segments) == 2 * len(edges) - 1
            for index, segment in enumerate(segments):
                assert _segment_bounds(index, edges) == (segment.low, segment.high)

    def test_assign_mass_equivalence(self):
        rng = random.Random(17)
        for _ in range(80):
            pair = [random_histogram(rng), random_histogram(rng)]
            edges = _merged_edges(pair)
            segments = _merged_segments(pair)
            for histogram in pair:
                ref_f, ref_d = _assign_mass(histogram, segments)
                vec_f, vec_d = _assign_mass_arrays(histogram, edges)
                np.testing.assert_allclose(vec_f, ref_f, rtol=RTOL, atol=ATOL)
                np.testing.assert_allclose(vec_d, ref_d, rtol=RTOL, atol=ATOL)
                # Mass conservation: segment mass sums to the histogram's.
                assert vec_f.sum() == pytest.approx(histogram.frequency)

    def test_assign_mass_on_maxdiff_histograms(self):
        first, second = maxdiff_pair(23)
        edges = _merged_edges([first, second])
        segments = _merged_segments([first, second])
        for histogram in (first, second):
            ref_f, ref_d = _assign_mass(histogram, segments)
            vec_f, vec_d = _assign_mass_arrays(histogram, edges)
            np.testing.assert_allclose(vec_f, ref_f, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(vec_d, ref_d, rtol=RTOL, atol=ATOL)

    def test_empty_histogram_assigns_nothing(self):
        histogram = Histogram([Bucket(0.0, 10.0, 5.0, 2.0)])
        edges = _merged_edges([histogram])
        freq, dist = _assign_mass_arrays(Histogram([]), edges)
        assert freq.sum() == 0.0 and dist.sum() == 0.0


class TestJoinEquivalence:
    def assert_same_join(self, left, right, max_buckets=None):
        fast = join_histograms(left, right, max_buckets=max_buckets)
        ref = join_histograms_reference(left, right, max_buckets=max_buckets)
        assert fast.pair_count == pytest.approx(ref.pair_count, rel=RTOL)
        assert fast.selectivity == pytest.approx(ref.selectivity, rel=RTOL)
        assert fast.histogram.bucket_count == ref.histogram.bucket_count
        for ours, theirs in zip(fast.histogram.buckets, ref.histogram.buckets):
            assert ours.low == theirs.low and ours.high == theirs.high
            assert ours.frequency == pytest.approx(theirs.frequency, rel=RTOL)
            assert ours.distinct == pytest.approx(theirs.distinct, rel=RTOL)

    def test_random_pairs(self):
        rng = random.Random(29)
        for _ in range(60):
            self.assert_same_join(random_histogram(rng), random_histogram(rng))

    def test_maxdiff_pairs(self):
        first, second = maxdiff_pair(31)
        self.assert_same_join(first, second)

    def test_maxdiff_pairs_compacted(self):
        # Bucket *boundaries* may differ after compaction: the greedy
        # merge breaks near-ties on combined frequency, which float-level
        # differences between the two mass-assignment kernels can flip.
        # The scalar outputs and conserved mass must still agree.
        first, second = maxdiff_pair(31)
        fast = join_histograms(first, second, max_buckets=50)
        ref = join_histograms_reference(first, second, max_buckets=50)
        assert fast.pair_count == pytest.approx(ref.pair_count, rel=RTOL)
        assert fast.selectivity == pytest.approx(ref.selectivity, rel=RTOL)
        assert fast.histogram.bucket_count <= 50
        assert ref.histogram.bucket_count <= 50
        assert fast.histogram.frequency == pytest.approx(
            ref.histogram.frequency, rel=RTOL
        )

    def test_point_vs_wide(self):
        dimension = Histogram([Bucket(float(k), float(k), 10.0, 1.0) for k in range(5)])
        fact = Histogram([Bucket(0.0, 4.0, 1000.0, 5.0)], null_count=100.0)
        self.assert_same_join(dimension, fact)

    def test_empty_operands(self):
        histogram = Histogram([Bucket(0.0, 1.0, 10.0, 2.0)])
        for left, right in [
            (Histogram([]), histogram),
            (histogram, Histogram([])),
            (Histogram([]), Histogram([])),
        ]:
            fast = join_histograms(left, right)
            ref = join_histograms_reference(left, right)
            assert fast.pair_count == ref.pair_count == 0.0
            assert fast.selectivity == ref.selectivity == 0.0


class TestVariationDistanceEquivalence:
    def test_random_pairs(self):
        rng = random.Random(37)
        for _ in range(60):
            first, second = random_histogram(rng), random_histogram(rng)
            assert variation_distance(first, second) == pytest.approx(
                variation_distance_reference(first, second), rel=RTOL, abs=ATOL
            )

    def test_maxdiff_pairs(self):
        first, second = maxdiff_pair(41)
        assert variation_distance(first, second) == pytest.approx(
            variation_distance_reference(first, second), rel=RTOL
        )

    def test_identical_distributions_have_zero_distance(self):
        rng = random.Random(43)
        histogram = random_histogram(rng, point_bias=0.0)
        assert variation_distance(histogram, histogram) == pytest.approx(0.0, abs=1e-12)
        scaled = histogram.scale(3.0)  # normalization cancels scaling
        assert variation_distance(histogram, scaled) == pytest.approx(0.0, abs=1e-12)

    def test_empty_cases(self):
        histogram = Histogram([Bucket(0.0, 1.0, 10.0, 2.0)])
        assert variation_distance(Histogram([]), Histogram([])) == 0.0
        assert variation_distance(Histogram([]), histogram) == 1.0
        assert variation_distance(histogram, Histogram([])) == 1.0
