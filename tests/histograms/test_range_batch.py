"""``estimate_range_selectivity_batch`` vs the scalar method: the
plan-cache batched replay is only bit-identical if the vectorized
kernel reproduces :meth:`Bucket.overlap_fraction` branch for branch and
sums contributions in the scalar loop's association order.  This file
pins ``==`` (not approx) equality across random histograms and
adversarial ranges: inverted, point, zero-width buckets, edge-exact,
fully-outside, and empty/zero-total histograms.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.histograms.base import Bucket, Histogram


def random_histogram(rng: random.Random) -> Histogram:
    count = rng.randint(1, 6)
    edges = sorted(rng.sample(range(0, 801), 2 * count))
    buckets = []
    for i in range(count):
        low, high = float(edges[2 * i]), float(edges[2 * i + 1])
        if rng.random() < 0.2:
            high = low  # zero-width (point) bucket
        frequency = float(rng.randint(1, 1000))
        distinct = float(
            rng.randint(1, max(1, int(min(frequency, high - low + 1))))
        )
        buckets.append(Bucket(low, high, frequency, distinct))
    return Histogram(buckets, null_count=float(rng.choice([0, 0, 0, 7])))


def random_ranges(rng: random.Random, histogram: Histogram, count: int):
    """Ranges that stress every branch of the scalar path."""
    lows, highs = [], []
    edges = [b.low for b in histogram.buckets] + [
        b.high for b in histogram.buckets
    ]
    for _ in range(count):
        kind = rng.random()
        if kind < 0.15 and edges:  # exactly on bucket edges
            low = rng.choice(edges)
            high = rng.choice(edges)
            if high < low and rng.random() < 0.5:
                low, high = high, low
        elif kind < 0.3:  # point range
            low = high = float(rng.randint(-50, 850))
        elif kind < 0.4:  # inverted: must yield exactly 0.0
            low = float(rng.randint(0, 850))
            high = low - float(rng.randint(1, 100))
        elif kind < 0.5:  # fully outside
            low, high = 900.0 + rng.random(), 1000.0
        else:  # generic overlap
            low = float(rng.randint(-50, 820))
            high = low + float(rng.randint(0, 400))
        lows.append(low)
        highs.append(high)
    return np.array(lows), np.array(highs)


class TestBatchScalarParity:
    def test_random_histograms_and_ranges_bit_identical(self):
        rng = random.Random(20260807)
        for _ in range(60):
            histogram = random_histogram(rng)
            lows, highs = random_ranges(rng, histogram, 40)
            batch = histogram.estimate_range_selectivity_batch(lows, highs)
            scalar = [
                histogram.estimate_range_selectivity(low, high)
                for low, high in zip(lows, highs)
            ]
            assert batch.shape == lows.shape
            assert batch.tolist() == scalar  # exact, not approx

    def test_inverted_ranges_are_exactly_zero(self):
        histogram = random_histogram(random.Random(3))
        lows = np.array([10.0, 500.0])
        highs = np.array([5.0, 499.0])
        assert histogram.estimate_range_selectivity_batch(
            lows, highs
        ).tolist() == [0.0, 0.0]

    def test_empty_histogram_yields_zeros(self):
        histogram = Histogram([])
        out = histogram.estimate_range_selectivity_batch(
            np.array([0.0, 1.0]), np.array([10.0, 2.0])
        )
        assert out.tolist() == [0.0, 0.0]

    def test_zero_total_yields_zeros(self):
        histogram = Histogram([Bucket(0.0, 10.0, 0.0, 0.0)])
        out = histogram.estimate_range_selectivity_batch(
            np.array([0.0]), np.array([10.0])
        )
        assert out.tolist() == [0.0]

    def test_batch_of_one_matches_scalar(self):
        rng = random.Random(11)
        for _ in range(20):
            histogram = random_histogram(rng)
            low = float(rng.randint(-10, 800))
            high = low + float(rng.randint(0, 300))
            batch = histogram.estimate_range_selectivity_batch(
                np.array([low]), np.array([high])
            )
            assert batch[0] == histogram.estimate_range_selectivity(low, high)
