"""Unit tests for histogram join, variation distance and compaction."""

import numpy as np
import pytest

from repro.engine.executor import equi_join_pairs
from repro.histograms.base import Bucket, Histogram
from repro.histograms.maxdiff import build_maxdiff
from repro.histograms.operations import (
    compact,
    join_histograms,
    variation_distance,
)


def exact_join_size(left: np.ndarray, right: np.ndarray) -> int:
    li, _ = equi_join_pairs(left, right)
    return li.size


class TestJoinHistograms:
    def test_point_vs_point(self):
        left = Histogram([Bucket(1, 1, 5, 1), Bucket(2, 2, 3, 1)])
        right = Histogram([Bucket(2, 2, 4, 1), Bucket(3, 3, 7, 1)])
        result = join_histograms(left, right)
        assert result.pair_count == pytest.approx(12)  # 3 * 4 at value 2
        assert result.selectivity == pytest.approx(12 / (8 * 11))

    def test_key_foreign_key_join_exact_under_uniformity(self):
        # Dimension: keys 0..9 (point buckets); fact: uniform fk.
        rng = np.random.default_rng(0)
        fact = rng.integers(0, 10, 1000).astype(float)
        dim = np.arange(10, dtype=float)
        h_fact = build_maxdiff(fact, 200)
        h_dim = build_maxdiff(dim, 200)
        result = join_histograms(h_fact, h_dim)
        true = exact_join_size(fact, dim)
        assert result.pair_count == pytest.approx(true, rel=1e-9)

    def test_skewed_fk_join_accuracy(self):
        rng = np.random.default_rng(1)
        weights = 1.0 / np.arange(1, 101) ** 1.2
        weights /= weights.sum()
        fact = rng.choice(100, size=20000, p=weights).astype(float)
        dim = np.arange(100, dtype=float)
        result = join_histograms(build_maxdiff(fact, 200), build_maxdiff(dim, 200))
        true = exact_join_size(fact, dim)
        assert result.pair_count == pytest.approx(true, rel=0.01)

    def test_nulls_reduce_selectivity_but_not_pairs(self):
        fact = np.array([0.0, 0.0, 1.0, np.nan, np.nan])
        dim = np.array([0.0, 1.0])
        result = join_histograms(build_maxdiff(fact, 10), build_maxdiff(dim, 10))
        assert result.pair_count == pytest.approx(3)
        # Denominator counts the NULL tuples.
        assert result.selectivity == pytest.approx(3 / (5 * 2))

    def test_disjoint_domains(self):
        left = build_maxdiff(np.array([1.0, 2.0]), 10)
        right = build_maxdiff(np.array([5.0, 6.0]), 10)
        result = join_histograms(left, right)
        assert result.pair_count == 0.0
        assert result.histogram.is_empty()

    def test_empty_input(self):
        left = Histogram([])
        right = build_maxdiff(np.array([1.0]), 10)
        assert join_histograms(left, right).selectivity == 0.0

    def test_derived_histogram_models_join_distribution(self):
        """Example 3: the joined histogram estimates post-join filters."""
        rng = np.random.default_rng(2)
        weights = 1.0 / np.arange(1, 51) ** 1.5
        weights /= weights.sum()
        fact = rng.choice(50, size=10000, p=weights).astype(float)
        dim = np.arange(50, dtype=float)
        result = join_histograms(build_maxdiff(fact, 200), build_maxdiff(dim, 200))
        joined = result.histogram
        # Post-join, key distribution equals fact's distribution (dim keys
        # are unique); check a range over the hot head.
        li, _ = equi_join_pairs(fact, dim)
        matched = fact[li]
        true = ((matched >= 0) & (matched <= 5)).sum()
        estimate = joined.estimate_range_count(0, 5)
        assert estimate == pytest.approx(true, rel=0.05)

    def test_wide_bucket_vs_wide_bucket(self):
        rng = np.random.default_rng(3)
        left_values = rng.integers(0, 1000, 30000).astype(float)
        right_values = rng.integers(0, 1000, 5000).astype(float)
        result = join_histograms(
            build_maxdiff(left_values, 50), build_maxdiff(right_values, 37)
        )
        true = exact_join_size(left_values, right_values)
        assert result.pair_count == pytest.approx(true, rel=0.1)

    def test_max_buckets_compaction(self):
        rng = np.random.default_rng(4)
        left = build_maxdiff(rng.integers(0, 5000, 20000).astype(float), 200)
        right = build_maxdiff(rng.integers(0, 5000, 20000).astype(float), 200)
        result = join_histograms(left, right, max_buckets=100)
        assert result.histogram.bucket_count <= 100


class TestVariationDistance:
    def test_identical_distributions(self):
        histogram = build_maxdiff(np.arange(100, dtype=float), 50)
        assert variation_distance(histogram, histogram) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        left = build_maxdiff(np.array([1.0, 2.0]), 10)
        right = build_maxdiff(np.array([10.0, 11.0]), 10)
        assert variation_distance(left, right) == pytest.approx(1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(5)
        left = build_maxdiff(rng.normal(0, 1, 1000), 30)
        right = build_maxdiff(rng.normal(0.5, 1, 1000), 30)
        assert variation_distance(left, right) == pytest.approx(
            variation_distance(right, left)
        )

    def test_range(self):
        rng = np.random.default_rng(6)
        left = build_maxdiff(rng.integers(0, 50, 500).astype(float), 20)
        right = build_maxdiff(rng.integers(25, 75, 500).astype(float), 20)
        distance = variation_distance(left, right)
        assert 0.0 < distance < 1.0

    def test_empty_cases(self):
        empty = Histogram([])
        other = build_maxdiff(np.array([1.0]), 10)
        assert variation_distance(empty, empty) == 0.0
        assert variation_distance(empty, other) == 1.0


class TestCompact:
    def test_reduces_bucket_count(self):
        buckets = [Bucket(float(i), float(i), 1.0, 1.0) for i in range(100)]
        histogram = Histogram(buckets)
        compacted = compact(histogram, 10)
        assert compacted.bucket_count <= 10
        assert compacted.frequency == pytest.approx(100)

    def test_preserves_nulls(self):
        buckets = [Bucket(float(i), float(i), 1.0, 1.0) for i in range(10)]
        histogram = Histogram(buckets, null_count=5)
        assert compact(histogram, 3).null_count == 5

    def test_noop_when_under_budget(self):
        histogram = Histogram([Bucket(0, 1, 5, 2)])
        assert compact(histogram, 10).bucket_count == 1

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            compact(Histogram([]), 0)
