"""Tests for Haar-wavelet synopses."""

import numpy as np
import pytest

from repro.histograms.wavelet import (
    build_wavelet,
    haar_decompose,
    haar_reconstruct,
    threshold_levels,
)


class TestHaarTransform:
    def test_roundtrip_identity(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 100, 64)
        levels = haar_decompose(data)
        np.testing.assert_allclose(haar_reconstruct(levels), data, atol=1e-9)

    def test_level_shapes(self):
        levels = haar_decompose(np.arange(8.0))
        assert [len(level) for level in levels] == [1, 1, 2, 4]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            haar_decompose(np.arange(6.0))

    def test_average_preserves_mass(self):
        data = np.array([1.0, 3.0, 5.0, 7.0])
        levels = haar_decompose(data)
        assert levels[0][0] == pytest.approx(data.mean())

    def test_threshold_keeps_top_coefficients(self):
        data = np.zeros(16)
        data[3] = 100.0  # one spike -> few large coefficients
        levels = haar_decompose(data)
        kept = threshold_levels(levels, 4)
        reconstructed = haar_reconstruct(kept)
        assert reconstructed[3] == pytest.approx(100.0, rel=0.5)

    def test_threshold_zero_keeps_only_average(self):
        data = np.array([2.0, 4.0, 6.0, 8.0])
        kept = threshold_levels(haar_decompose(data), 0)
        np.testing.assert_allclose(haar_reconstruct(kept), np.full(4, 5.0))

    def test_negative_keep_rejected(self):
        with pytest.raises(ValueError):
            threshold_levels(haar_decompose(np.arange(4.0)), -1)


class TestBuildWavelet:
    def test_small_domains_exact(self):
        values = np.array([1.0, 1.0, 2.0, 5.0])
        histogram = build_wavelet(values, max_coefficients=16)
        assert histogram.estimate_equality_count(1.0) == pytest.approx(2)

    def test_mass_conserved(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 3000, 20000).astype(float)
        values[:100] = np.nan
        histogram = build_wavelet(values, max_coefficients=100)
        assert histogram.frequency == pytest.approx(19900, rel=1e-6)
        assert histogram.null_count == 100

    def test_uniform_range_accuracy(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0, 1000, 30000)
        histogram = build_wavelet(values, max_coefficients=64)
        true = ((values >= 200) & (values <= 450)).sum()
        assert histogram.estimate_range_count(200, 450) == pytest.approx(
            true, rel=0.1
        )

    def test_spiky_data_benefits_from_coefficients(self):
        # A distribution with a few hot regions: more coefficients must
        # not hurt, and should measurably help over the 1-coefficient
        # (flat) synopsis.
        rng = np.random.default_rng(3)
        hot = rng.normal(100, 3, 20000)
        cold = rng.uniform(0, 1000, 2000)
        values = np.round(np.concatenate([hot, cold]))
        flat = build_wavelet(values, max_coefficients=1)
        rich = build_wavelet(values, max_coefficients=128)
        true = ((values >= 90) & (values <= 110)).sum()
        flat_error = abs(flat.estimate_range_count(90, 110) - true)
        rich_error = abs(rich.estimate_range_count(90, 110) - true)
        assert rich_error < flat_error / 2

    def test_empty_and_invalid(self):
        assert build_wavelet(np.array([]), 8).is_empty()
        with pytest.raises(ValueError):
            build_wavelet(np.array([1.0]), 0)

    def test_usable_as_sit_builder_scheme(self, two_table_db, two_table_attrs):
        from repro.stats.builder import SITBuilder

        builder = SITBuilder(
            two_table_db, histogram_builder=build_wavelet, max_buckets=64
        )
        sit = builder.build_base(two_table_attrs["Ra"])
        assert sit.histogram.frequency == pytest.approx(2000)
