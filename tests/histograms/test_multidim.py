"""Tests for the 2-D grid histogram, including the empirical validation of
the paper's Assumption 1 (minimality of histograms)."""

import numpy as np
import pytest

from repro.histograms.equiwidth import build_equiwidth
from repro.histograms.multidim import GridHistogram2D, build_grid2d


class TestGrid2DBasics:
    def test_mass_accounting_with_nulls(self):
        x = np.array([1.0, 2.0, np.nan, 4.0])
        y = np.array([1.0, np.nan, 3.0, 4.0])
        grid = build_grid2d(x, y, cells_per_axis=2)
        assert grid.total == 4.0
        assert grid.frequency == 2.0  # rows 0 and 3

    def test_full_box_recovers_everything(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, 5000)
        y = rng.uniform(0, 10, 5000)
        grid = build_grid2d(x, y, cells_per_axis=8)
        assert grid.estimate_box_count(0, 10, 0, 10) == pytest.approx(5000)

    def test_uniform_quadrant(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 10, 50000)
        y = rng.uniform(0, 10, 50000)
        grid = build_grid2d(x, y, cells_per_axis=10)
        assert grid.estimate_box_selectivity(0, 5, 0, 5) == pytest.approx(
            0.25, abs=0.01
        )

    def test_empty_box(self):
        grid = build_grid2d(np.array([1.0]), np.array([1.0]), 2)
        assert grid.estimate_box_count(5, 4, 0, 1) == 0.0

    def test_misaligned_columns_rejected(self):
        with pytest.raises(ValueError):
            build_grid2d(np.array([1.0]), np.array([1.0, 2.0]))

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            build_grid2d(np.array([1.0]), np.array([1.0]), 0)

    def test_degenerate_domain(self):
        grid = build_grid2d(np.full(10, 3.0), np.full(10, 7.0), 4)
        assert grid.estimate_box_count(3, 3, 7, 7) > 0


class TestAssumption1:
    """Assumption 1: for a separable (independent) pair of predicates, two
    1-D histograms with the same combined space are at least as accurate
    as one 2-D histogram — and capture correlated pairs worse, which is
    exactly why separability is the boundary of the assumption."""

    def setup_method(self):
        rng = np.random.default_rng(7)
        self.n = 60_000
        # independent pair
        self.x_ind = np.round(rng.uniform(0, 1000, self.n))
        self.y_ind = np.round(rng.normal(500, 150, self.n))
        # strongly correlated pair
        self.x_cor = np.round(rng.uniform(0, 1000, self.n))
        self.y_cor = np.round(self.x_cor + rng.normal(0, 20, self.n))

    @staticmethod
    def one_d_estimate(x, y, box, buckets):
        hx = build_equiwidth(x, buckets)
        hy = build_equiwidth(y, buckets)
        return (
            hx.estimate_range_selectivity(box[0], box[1])
            * hy.estimate_range_selectivity(box[2], box[3])
        )

    @staticmethod
    def truth(x, y, box):
        mask = (x >= box[0]) & (x <= box[1]) & (y >= box[2]) & (y <= box[3])
        return mask.mean()

    def boxes(self):
        return [
            (100, 300, 400, 600),
            (0, 500, 0, 500),
            (700, 900, 300, 800),
            (250, 260, 240, 280),
        ]

    def test_independent_pair_one_d_is_as_accurate(self):
        # Space parity: two 98-bucket 1-D histograms vs a 14x14 grid.
        grid = build_grid2d(self.x_ind, self.y_ind, cells_per_axis=14)
        one_d_errors = []
        two_d_errors = []
        for box in self.boxes():
            true = self.truth(self.x_ind, self.y_ind, box)
            one_d = self.one_d_estimate(self.x_ind, self.y_ind, box, 98)
            two_d = grid.estimate_box_selectivity(*box)
            one_d_errors.append(abs(one_d - true))
            two_d_errors.append(abs(two_d - true))
        assert sum(one_d_errors) <= sum(two_d_errors) + 1e-3

    def test_correlated_pair_needs_the_joint_distribution(self):
        grid = build_grid2d(self.x_cor, self.y_cor, cells_per_axis=14)
        box = (100, 300, 100, 300)  # on the diagonal: strong interaction
        true = self.truth(self.x_cor, self.y_cor, box)
        one_d = self.one_d_estimate(self.x_cor, self.y_cor, box, 98)
        two_d = grid.estimate_box_selectivity(*box)
        assert abs(two_d - true) < abs(one_d - true) / 2
