"""Unit tests for MaxDiff(V,A) construction."""

import numpy as np
import pytest

from repro.histograms.maxdiff import build_maxdiff


class TestBuildMaxDiff:
    def test_few_distinct_values_get_singleton_buckets(self):
        values = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0])
        histogram = build_maxdiff(values, max_buckets=10)
        assert histogram.bucket_count == 3
        assert [b.frequency for b in histogram.buckets] == [2, 1, 3]
        assert all(b.low == b.high for b in histogram.buckets)

    def test_bucket_budget_respected(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 1000, 5000).astype(float)
        histogram = build_maxdiff(values, max_buckets=20)
        assert histogram.bucket_count <= 20

    def test_mass_conservation(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 500, 3000).astype(float)
        values[:100] = np.nan
        histogram = build_maxdiff(values, max_buckets=50)
        assert histogram.frequency == pytest.approx(2900)
        assert histogram.null_count == 100
        assert histogram.total == 3000

    def test_spike_isolated(self):
        # One value with 90% of the mass: MaxDiff must isolate it so
        # equality estimates on the spike are near-exact.
        values = np.concatenate(
            [np.full(9000, 42.0), np.arange(1000, dtype=float)]
        )
        histogram = build_maxdiff(values, max_buckets=10)
        estimate = histogram.estimate_equality_count(42.0)
        assert estimate == pytest.approx(9000, rel=0.15)

    def test_domain_covered(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0, 100, 4000)
        histogram = build_maxdiff(values, max_buckets=30)
        assert histogram.low == pytest.approx(values.min())
        assert histogram.high == pytest.approx(values.max())

    def test_uniform_data_range_accuracy(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(0, 1000, 20000)
        histogram = build_maxdiff(values, max_buckets=100)
        true = ((values >= 100) & (values <= 300)).sum()
        estimate = histogram.estimate_range_count(100, 300)
        assert estimate == pytest.approx(true, rel=0.05)

    def test_empty_and_all_null(self):
        assert build_maxdiff(np.array([])).is_empty()
        histogram = build_maxdiff(np.array([np.nan, np.nan]))
        assert histogram.is_empty()
        assert histogram.null_count == 2

    def test_single_bucket_allowed(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 100, 1000).astype(float)
        histogram = build_maxdiff(values, max_buckets=1)
        assert histogram.bucket_count == 1
        assert histogram.frequency == 1000

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            build_maxdiff(np.array([1.0]), max_buckets=0)

    def test_zipfian_accuracy_beats_tail(self):
        # The frequent head values should be estimated much better than a
        # uniform split would manage.
        rng = np.random.default_rng(6)
        ranks = np.arange(1, 2001)
        weights = 1.0 / ranks**1.3
        weights /= weights.sum()
        values = rng.choice(2000, size=50000, p=weights).astype(float)
        histogram = build_maxdiff(values, max_buckets=200)
        top = float(np.bincount(values.astype(int)).argmax())
        true = (values == top).sum()
        assert histogram.estimate_equality_count(top) == pytest.approx(
            true, rel=0.25
        )
