"""Tests for the equi-depth and equi-width bucketing schemes."""

import numpy as np
import pytest

from repro.histograms.equidepth import build_equidepth
from repro.histograms.equiwidth import build_equiwidth
from repro.histograms.maxdiff import build_maxdiff

BUILDERS = [build_equidepth, build_equiwidth, build_maxdiff]


@pytest.mark.parametrize("builder", BUILDERS)
class TestCommonBuilderContract:
    def test_mass_conserved(self, builder):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2000, 10000).astype(float)
        values[:250] = np.nan
        histogram = builder(values, 64)
        assert histogram.frequency == pytest.approx(9750)
        assert histogram.null_count == 250

    def test_bucket_budget(self, builder):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 5000, 20000).astype(float)
        assert builder(values, 32).bucket_count <= 32

    def test_domain_bounds(self, builder):
        rng = np.random.default_rng(2)
        values = rng.uniform(-100, 100, 3000)
        histogram = builder(values, 50)
        assert histogram.low == pytest.approx(values.min())
        assert histogram.high == pytest.approx(values.max())

    def test_small_domain_exact(self, builder):
        values = np.array([1.0, 1.0, 2.0, 5.0])
        histogram = builder(values, 16)
        assert histogram.estimate_equality_count(1.0) == pytest.approx(2)

    def test_empty(self, builder):
        assert builder(np.array([]), 8).is_empty()

    def test_invalid_budget(self, builder):
        with pytest.raises(ValueError):
            builder(np.array([1.0]), 0)

    def test_uniform_range_estimate(self, builder):
        rng = np.random.default_rng(3)
        values = rng.uniform(0, 1000, 30000)
        histogram = builder(values, 100)
        true = ((values >= 250) & (values <= 500)).sum()
        assert histogram.estimate_range_count(250, 500) == pytest.approx(
            true, rel=0.08
        )


class TestEquiDepthSpecific:
    def test_bucket_masses_balanced(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(0, 1, 50000)
        histogram = build_equidepth(values, 20)
        masses = [b.frequency for b in histogram.buckets]
        assert max(masses) < 3 * min(masses)


class TestEquiWidthSpecific:
    def test_bucket_widths_balanced(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(0, 1000, 50000)
        histogram = build_equiwidth(values, 20)
        widths = [b.width for b in histogram.buckets]
        assert max(widths) < 2.5 * (min(w for w in widths if w > 0) + 1e-9)
