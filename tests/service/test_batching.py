"""Micro-batching semantics: coalescing, dedup and cross-request factor
sharing, asserted through StatsSnapshot telemetry."""

from __future__ import annotations

import pytest

from repro.catalog import EstimationSession
from repro.service import EstimationService, ServiceConfig

#: a wide-open batching window so one submit burst lands in one batch
COALESCING = ServiceConfig(
    workers=1, queue_depth=64, batch_window_s=0.5, max_batch=64
)

#: same, with the compiled-plan cache off — for tests that assert the
#: factor-match sharing a plan replay intentionally never exercises
COALESCING_NO_PLAN_CACHE = ServiceConfig(
    workers=1,
    queue_depth=64,
    batch_window_s=0.5,
    max_batch=64,
    plan_cache=False,
)


class TestFactorSharing:
    def test_batch_of_k_does_less_matcher_work_than_k_sessions(
        self, service_catalog, factor_sharing_queries
    ):
        """The satellite gate: a batch of K factor-sharing queries costs
        fewer matcher calls than K isolated sessions, because the
        worker's session answers them all off shared factor caches."""
        queries = factor_sharing_queries
        snapshot = service_catalog.snapshot()

        # K isolated sessions: every factor match is computed from
        # scratch (``matcher_calls`` counts *logical* invocations — the
        # paper's Figure 6 metric — and is cache-invariant by design;
        # ``match_cache_misses`` counts the matching passes actually
        # executed, which is what sharing saves).
        isolated_match_passes = 0.0
        isolated_hits = 0.0
        for query in queries:
            session = EstimationSession(snapshot, plan_cache=False)
            session.estimate(query)
            caches = session.stats_snapshot().caches
            isolated_match_passes += caches["match_cache_misses"]
            isolated_hits += caches["match_cache_hits"]
        assert isolated_hits == 0.0  # nothing shared across sessions

        with EstimationService(
            service_catalog, config=COALESCING_NO_PLAN_CACHE
        ) as service:
            futures = [service.submit(query) for query in queries]
            answers = [future.result(timeout=30.0) for future in futures]
            stats = service.stats_snapshot()

        assert stats.caches["match_cache_misses"] < isolated_match_passes
        assert stats.caches["match_cache_hits"] > 0.0
        assert stats.service["served"] == float(len(queries))
        assert stats.service["batches"] == 1.0
        assert all(answer.batch_size == len(queries) for answer in answers)
        # distinct predicate sets: coalesced but not deduplicated
        assert stats.service["deduplicated"] == 0.0

    def test_shared_cache_hits_accumulate_across_the_batch(
        self, service_catalog, factor_sharing_queries
    ):
        with EstimationService(
            service_catalog, config=COALESCING_NO_PLAN_CACHE
        ) as service:
            futures = [
                service.submit(query) for query in factor_sharing_queries
            ]
            for future in futures:
                future.result(timeout=30.0)
            stats = service.stats_snapshot()
        # later batch members hit the factor caches the first one filled
        assert stats.caches["match_cache_hits"] > 0


class TestDeduplication:
    def test_identical_requests_share_one_dp_run(
        self, service_catalog, join_query
    ):
        k = 8
        # what one isolated request costs in logical matcher invocations
        probe = EstimationSession(service_catalog.snapshot())
        probe.estimate(join_query)
        per_query_calls = probe.stats_snapshot().counters["matcher_calls"]

        with EstimationService(service_catalog, config=COALESCING) as service:
            futures = [service.submit(join_query) for _ in range(k)]
            answers = [future.result(timeout=30.0) for future in futures]
            stats = service.stats_snapshot()

        assert stats.service["batches"] == 1.0
        assert stats.service["deduplicated"] == float(k - 1)
        # one DP run answered the whole batch ...
        assert stats.counters["queries"] == 1
        # ... so the batch cost one query's matcher calls, not k of them
        assert stats.counters["matcher_calls"] == per_query_calls
        assert stats.counters["matcher_calls"] < k * per_query_calls
        # ... and every answer is the same bit pattern
        assert len({answer.selectivity for answer in answers}) == 1
        assert sum(answer.deduplicated for answer in answers) == k - 1

    def test_mixed_batch_dedups_only_identical_sets(
        self, service_catalog, factor_sharing_queries
    ):
        queries = factor_sharing_queries[:3] * 2  # each template twice
        with EstimationService(service_catalog, config=COALESCING) as service:
            futures = [service.submit(query) for query in queries]
            for future in futures:
                future.result(timeout=30.0)
            stats = service.stats_snapshot()
        assert stats.service["batches"] == 1.0
        assert stats.service["deduplicated"] == 3.0
        assert stats.counters["queries"] == 3


class TestShapeGroupBatching:
    def test_same_shape_batch_replays_as_one_group(
        self, service_catalog, factor_sharing_queries
    ):
        """Same-shape (not just identical) requests share one compiled
        plan: the first instance compiles, the rest of the batch — and
        all of the next batch — replay without touching the matcher."""
        queries = factor_sharing_queries
        with EstimationService(service_catalog, config=COALESCING) as service:
            first = [
                future.result(timeout=30.0)
                for future in [service.submit(query) for query in queries]
            ]
            second = [
                future.result(timeout=30.0)
                for future in [service.submit(query) for query in queries]
            ]
            stats = service.stats_snapshot()
        # first instance of the shape compiles; every later one replays
        assert [answer.plan_cache_hit for answer in first].count(True) >= (
            len(queries) - 1
        )
        assert all(answer.plan_cache_hit for answer in second)
        assert stats.plan_cache["hits"] >= 2 * len(queries) - 1
        assert stats.plan_cache["compiles"] >= 1.0
        assert stats.plan_cache["hit_rate"] > 0.8

    def test_replayed_answers_match_plan_cache_off(
        self, service_catalog, factor_sharing_queries
    ):
        queries = factor_sharing_queries * 2
        with EstimationService(service_catalog, config=COALESCING) as service:
            cached = [
                future.result(timeout=30.0)
                for future in [service.submit(query) for query in queries]
            ]
        with EstimationService(
            service_catalog, config=COALESCING_NO_PLAN_CACHE
        ) as service:
            cold = [
                future.result(timeout=30.0)
                for future in [service.submit(query) for query in queries]
            ]
        for hit, miss in zip(cached, cold):
            assert hit.selectivity == miss.selectivity
            assert hit.cardinality == miss.cardinality
            assert hit.error == miss.error
        assert not any(answer.plan_cache_hit for answer in cold)


class TestBatchLimits:
    @pytest.mark.parametrize("max_batch", [1, 2])
    def test_max_batch_caps_coalescing(
        self, service_catalog, join_query, max_batch
    ):
        config = ServiceConfig(
            workers=1,
            queue_depth=64,
            batch_window_s=0.05,
            max_batch=max_batch,
        )
        with EstimationService(service_catalog, config=config) as service:
            futures = [service.submit(join_query) for _ in range(4)]
            answers = [future.result(timeout=30.0) for future in futures]
            stats = service.stats_snapshot()
        assert all(answer.batch_size <= max_batch for answer in answers)
        assert stats.service["batch_size"]["max"] <= float(max_batch)
        assert stats.service["batches"] >= 4.0 / max_batch
