"""EstimationService: parity with the direct estimator (including across
a mid-load snapshot swap), admission control, deadlines and lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.catalog import EstimationSession
from repro.estimators import SITEstimator
from repro.engine.expressions import Query
from repro.service import (
    EstimationService,
    Overloaded,
    ServiceConfig,
)
from repro.service.protocol import (
    DeadlineExceeded,
    InvalidRequest,
    ServiceClosed,
)

FAST = ServiceConfig(workers=1, queue_depth=64, batch_window_s=0.001)


def direct_answer(database, snapshot, query: Query):
    """The single-threaded ground truth on one pinned snapshot."""
    estimator = SITEstimator(database, snapshot, engine="bitmask")
    result = estimator.estimate(query)
    cross = database.cross_product_size(query.tables)
    return (
        result.selectivity,
        result.selectivity * cross,
        result.error,
    )


class TestParity:
    def test_served_estimate_is_bit_identical_to_direct(
        self, two_table_db, service_catalog, factor_sharing_queries
    ):
        snapshot = service_catalog.snapshot()
        with EstimationService(service_catalog, config=FAST) as service:
            for query in factor_sharing_queries:
                served = service.estimate(query)
                selectivity, cardinality, error = direct_answer(
                    two_table_db, snapshot, query
                )
                assert served.snapshot_version == snapshot.version
                assert served.selectivity == selectivity
                assert served.cardinality == cardinality
                assert served.error == error

    def test_parity_holds_across_mid_load_refresh(
        self, two_table_db, service_catalog, join_query
    ):
        """The acceptance gate: answers stay bit-identical to a direct
        estimator *on the snapshot they report*, even when the catalog
        is invalidated and refreshed while requests are in flight."""
        catalog = service_catalog
        snapshots = {catalog.version: catalog.snapshot()}
        answers = []
        with EstimationService(catalog, config=FAST) as service:
            answers.append(service.estimate(join_query))

            # put requests in flight, then move the catalog under them
            futures = [service.submit(join_query) for _ in range(8)]
            catalog.notify_table_update("R")
            snapshots[catalog.version] = catalog.snapshot()
            report = catalog.refresh()
            assert report.rebuilt  # the update really dirtied SITs
            snapshots[catalog.version] = catalog.snapshot()
            answers.extend(future.result(timeout=30.0) for future in futures)

            # keep serving until a worker has rolled to the new snapshot
            deadline = time.monotonic() + 30.0
            while True:
                served = service.estimate(join_query)
                answers.append(served)
                if served.snapshot_version == catalog.version:
                    break
                assert time.monotonic() < deadline, "never rolled snapshots"
            stats = service.stats_snapshot().service
            assert stats["snapshot_swaps"] >= 1.0

        seen_versions = {served.snapshot_version for served in answers}
        assert len(seen_versions) >= 2  # old and new snapshots both served
        for served in answers:
            assert served.snapshot_version in snapshots
            selectivity, cardinality, error = direct_answer(
                two_table_db, snapshots[served.snapshot_version], join_query
            )
            assert served.selectivity == selectivity
            assert served.cardinality == cardinality
            assert served.error == error


class TestAdmissionControl:
    def test_overload_sheds_with_typed_response(
        self, service_catalog, join_query, monkeypatch
    ):
        """A full queue answers Overloaded immediately — no blocking, no
        hang — and everything admitted is still served."""
        gate = threading.Event()
        real_estimate = EstimationSession.estimate

        def gated(self, query):
            gate.wait(timeout=30.0)
            return real_estimate(self, query)

        monkeypatch.setattr(EstimationSession, "estimate", gated)
        config = ServiceConfig(
            workers=1, queue_depth=1, batch_window_s=0.0, max_batch=1
        )
        service = EstimationService(service_catalog, config=config)
        try:
            stalled = service.submit(join_query)
            deadline = time.monotonic() + 10.0
            while service.queue_depth > 0:  # worker picked the request up
                assert time.monotonic() < deadline
                time.sleep(0.001)
            queued = service.submit(join_query)  # fills the depth-1 queue
            with pytest.raises(Overloaded):
                service.submit(join_query)
            stats = service.stats_snapshot().service
            assert stats["shed_overload"] == 1.0
            gate.set()
            assert stalled.result(timeout=30.0).selectivity > 0.0
            assert queued.result(timeout=30.0).selectivity > 0.0
        finally:
            gate.set()
            service.close()

    def test_expired_deadline_is_shed_at_dequeue(
        self, service_catalog, join_query
    ):
        with EstimationService(service_catalog, config=FAST) as service:
            future = service.submit(join_query, timeout=0.0)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30.0)
            stats = service.stats_snapshot().service
            assert stats["shed_deadline"] == 1.0

    def test_invalid_requests_are_typed(self, service_catalog):
        with EstimationService(service_catalog, config=FAST) as service:
            with pytest.raises(InvalidRequest):
                service.submit("SELECT * FROM nowhere WHERE")
            with pytest.raises(InvalidRequest):
                service.submit(frozenset())
            with pytest.raises(InvalidRequest):
                service.submit(12345)


class TestLifecycle:
    def test_graceful_drain_serves_everything_admitted(
        self, service_catalog, factor_sharing_queries
    ):
        service = EstimationService(service_catalog, config=FAST)
        futures = [
            service.submit(query)
            for query in factor_sharing_queries * 3
        ]
        assert service.close(drain=True) is True
        for future in futures:
            assert future.result(timeout=1.0).selectivity >= 0.0
        assert service.closed

    def test_submit_after_close_raises_closed(
        self, service_catalog, join_query
    ):
        service = EstimationService(service_catalog, config=FAST)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(join_query)
        assert service.close() is True  # idempotent

    def test_hard_close_flushes_backlog_typed(
        self, service_catalog, join_query, monkeypatch
    ):
        gate = threading.Event()
        real_estimate = EstimationSession.estimate

        def gated(self, query):
            gate.wait(timeout=30.0)
            return real_estimate(self, query)

        monkeypatch.setattr(EstimationSession, "estimate", gated)
        config = ServiceConfig(
            workers=1, queue_depth=8, batch_window_s=0.0, max_batch=1
        )
        service = EstimationService(service_catalog, config=config)
        stalled = service.submit(join_query)
        deadline = time.monotonic() + 10.0
        while service.queue_depth > 0:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        backlogged = service.submit(join_query)
        service.close(drain=False, timeout=0.2)
        with pytest.raises(ServiceClosed):
            backlogged.result(timeout=5.0)
        gate.set()
        stalled.result(timeout=30.0)  # in-flight work still completes


class TestObservability:
    def test_service_namespace_in_stats_snapshot(
        self, service_catalog, factor_sharing_queries
    ):
        with EstimationService(service_catalog, config=FAST) as service:
            for query in factor_sharing_queries:
                service.estimate(query)
            snapshot = service.stats_snapshot()
        stats = snapshot.service
        assert stats["submitted"] == float(len(factor_sharing_queries))
        assert stats["served"] == float(len(factor_sharing_queries))
        assert stats["batches"] >= 1.0
        assert stats["queue_depth"] == 0.0
        assert stats["workers"] == 1.0
        latency = stats["latency_ms"]
        assert latency["count"] == float(len(factor_sharing_queries))
        assert set(latency) >= {"p50", "p95", "p99"}
        # the worker sessions' telemetry rides along in the usual places
        assert snapshot.counters["queries"] >= len(factor_sharing_queries)
        assert snapshot.to_dict()["service"] == stats

    def test_queue_depth_gauge_tracks_backlog(
        self, service_catalog, join_query, monkeypatch
    ):
        gate = threading.Event()
        real_estimate = EstimationSession.estimate

        def gated(self, query):
            gate.wait(timeout=30.0)
            return real_estimate(self, query)

        monkeypatch.setattr(EstimationSession, "estimate", gated)
        config = ServiceConfig(
            workers=1, queue_depth=8, batch_window_s=0.0, max_batch=1
        )
        service = EstimationService(service_catalog, config=config)
        try:
            first = service.submit(join_query)
            deadline = time.monotonic() + 10.0
            while service.queue_depth > 0:
                assert time.monotonic() < deadline
                time.sleep(0.001)
            backlog = [service.submit(join_query) for _ in range(3)]
            stats = service.stats_snapshot().service
            assert stats["queue_depth"] == 3.0
            gate.set()
            for future in [first, *backlog]:
                future.result(timeout=30.0)
        finally:
            gate.set()
            service.close()
