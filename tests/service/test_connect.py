"""The one client construction path: ``connect()`` dispatch for every
target kind; the pre-redesign names stay removed."""

from __future__ import annotations

import pytest

from repro.service import (
    EstimationService,
    InProcessClient,
    ServiceConfig,
    SocketClient,
    connect,
)
from repro.service.server import start_in_thread


@pytest.fixture()
def service(service_catalog):
    svc = EstimationService(service_catalog, config=ServiceConfig(workers=1))
    yield svc
    svc.close()


class TestConnectDispatch:
    def test_live_service_gets_an_in_process_client(self, service, join_query):
        client = connect(service)
        assert isinstance(client, InProcessClient)
        assert client.service is service
        answer = client.estimate(join_query)
        assert 0.0 <= answer.selectivity <= 1.0
        # the client does not own the service: close leaves it serving
        client.close()
        assert service.estimate(join_query).selectivity == answer.selectivity

    def test_statistics_spin_up_a_private_service(
        self, service_catalog, join_query
    ):
        with connect(
            service_catalog, config=ServiceConfig(workers=1)
        ) as client:
            assert isinstance(client, InProcessClient)
            assert client.service.config.workers == 1
            assert client.estimate(join_query).selectivity > 0.0
        # owned: close shut the private service down
        with pytest.raises(Exception):
            client.service.estimate(join_query)

    def test_bare_pool_is_statistics_too(
        self, two_table_pool, two_table_db, join_query
    ):
        with connect(two_table_pool, database=two_table_db) as client:
            assert isinstance(client, InProcessClient)
            assert client.estimate(join_query).selectivity > 0.0

    def test_host_port_string_dials_a_socket(self, service, join_query):
        handle = start_in_thread(service, port=0)
        try:
            host, port = handle.address
            with connect(f"{host}:{port}") as client:
                assert isinstance(client, SocketClient)
                assert client.ping()
                assert client.estimate(join_query).selectivity > 0.0
        finally:
            handle.close()

    def test_host_port_tuple_dials_a_socket(self, service):
        handle = start_in_thread(service, port=0)
        try:
            with connect(handle.address) as client:
                assert isinstance(client, SocketClient)
                assert client.ping()
        finally:
            handle.close()

    def test_server_handle_dials_its_bound_address(self, service):
        handle = start_in_thread(service, port=0)
        try:
            with connect(handle) as client:
                assert isinstance(client, SocketClient)
                assert (client.host, client.port) == handle.address
                assert client.ping()
        finally:
            handle.close()

    def test_existing_client_passes_through(self, service):
        client = connect(service)
        assert connect(client) is client

    def test_existing_client_rejects_reconfiguration(self, service):
        client = connect(service)
        with pytest.raises(TypeError, match="re-configure"):
            connect(client, timeout_s=1.0)

    def test_malformed_address_string(self):
        with pytest.raises(ValueError, match="host:port"):
            connect("localhost")
        with pytest.raises(ValueError, match="host:port"):
            connect("localhost:notaport")

    def test_unknown_target_type(self):
        with pytest.raises(TypeError, match="cannot connect"):
            connect(42)


class TestDeprecatedShims:
    def test_client_names_are_removed(self):
        import repro.service

        assert not hasattr(repro.service, "Client")
        assert not hasattr(repro.service, "TCPClient")
        assert not hasattr(InProcessClient, "in_process")

    def test_connect_itself_is_warning_free(self, service, recwarn):
        connect(service).close()
        assert not [
            w
            for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]
