"""End-to-end load-generator smoke (slow: builds a snowflake catalog and
drives all three regimes)."""

from __future__ import annotations

import json

import pytest

from repro.bench import serve_load

pytestmark = pytest.mark.slow


def test_load_generator_end_to_end(tmp_path):
    output = tmp_path / "BENCH_service.json"
    assert (
        serve_load.main(
            [
                str(output),
                "--scale",
                "0.05",
                "--seed",
                "7",
                "--distinct",
                "3",
                "--requests",
                "60",
                "--clients",
                "4",
                "--workers",
                "1",
            ]
        )
        == 0
    )
    report = json.loads(output.read_text())

    baseline = report["baseline"]
    assert baseline["requests"] == 60
    assert baseline["qps"] > 0

    closed = report["closed_loop"]
    assert closed["requests"] == 60
    assert closed["speedup_vs_baseline"] > 0
    assert closed["deduplicated"] > 0  # the shared-factor point

    open_loop = report["open_loop"]
    assert open_loop["conservation_ok"] is True
    assert open_loop["served"] + open_loop["shed"] == open_loop["offered"]
    assert open_loop["clean_shutdown"] is True
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        assert open_loop[key] >= 0.0


def test_cluster_block_reports_honest_cores(tmp_path):
    output = tmp_path / "BENCH_service.json"
    assert (
        serve_load.main(
            [
                str(output),
                "--scale",
                "0.05",
                "--seed",
                "7",
                "--distinct",
                "3",
                "--requests",
                "40",
                "--clients",
                "4",
                "--cluster",
                "--shards",
                "2",
            ]
        )
        == 0
    )
    report = json.loads(output.read_text())
    cluster = report["cluster"]
    assert cluster["cores"] >= 1
    assert cluster["single_shard"]["shards"] == 1
    assert cluster["sharded"]["shards"] == 2
    assert cluster["sharded"]["requests"] == 40
    assert cluster["speedup_vs_single_shard"] > 0
    # honest reporting: the flag is derived, not asserted — on a 1-core
    # host the speedup is expected to hover near 1x and core_limited
    # tells the reader why
    assert cluster["core_limited"] == (cluster["cores"] < 2)
