"""Service-side advisor wiring: config nesting, feedback collection,
synchronous tuning, and the no-advisor default."""

from __future__ import annotations

import pytest

from repro.advisor import AdvisorConfig, SelfTuningAdvisor
from repro.advisor.loop import ACCEPTED
from repro.service import EstimationService, ServiceConfig

TUNED = ServiceConfig(
    workers=1,
    queue_depth=64,
    batch_window_s=0.001,
    advisor=AdvisorConfig(min_feedback=4, min_interval_s=3600.0),
)


class TestServiceConfigNesting:
    def test_round_trip_with_advisor_block(self):
        config = ServiceConfig(
            workers=2,
            advisor=AdvisorConfig(max_q_error=9.0, space_budget_bytes=512.0),
        )
        payload = config.to_dict()
        assert payload["advisor"]["max_q_error"] == 9.0
        restored = ServiceConfig.from_dict(payload)
        assert restored.advisor == config.advisor

    def test_round_trip_without_advisor_block(self):
        config = ServiceConfig(workers=2)
        payload = config.to_dict()
        assert payload["advisor"] is None
        assert ServiceConfig.from_dict(payload).advisor is None

    def test_advisor_must_be_config_or_none(self):
        with pytest.raises(TypeError, match="advisor"):
            ServiceConfig(advisor={"max_q_error": 9.0})

    def test_unknown_advisor_keys_rejected(self):
        payload = ServiceConfig().to_dict()
        payload["advisor"] = {"nope": 1}
        with pytest.raises(ValueError):
            ServiceConfig.from_dict(payload)


class TestServiceIntegration:
    def test_no_advisor_by_default(self, service_catalog):
        with EstimationService(service_catalog) as service:
            assert service.advisor is None
            assert service.tune() is None

    def test_feedback_flows_from_served_estimates(
        self, service_catalog, factor_sharing_queries
    ):
        with EstimationService(service_catalog, config=TUNED) as service:
            assert isinstance(service.advisor, SelfTuningAdvisor)
            for query in factor_sharing_queries:
                service.estimate(query)
            counters = service.advisor.log.counters()
            assert counters["feedback_appended"] >= len(
                factor_sharing_queries
            )

    def test_synchronous_tune_runs_a_tick(
        self, service_catalog, factor_sharing_queries
    ):
        with EstimationService(service_catalog, config=TUNED) as service:
            for query in factor_sharing_queries:
                service.estimate(query)
            report = service.tune()
            assert report is not None
            assert report.status in (ACCEPTED, "no-solution-found")
            # tuning must not break serving
            served = service.estimate(factor_sharing_queries[0])
            assert served.selectivity >= 0.0

    def test_advisor_metrics_surface_in_service_registry(
        self, service_catalog, factor_sharing_queries
    ):
        with EstimationService(service_catalog, config=TUNED) as service:
            for query in factor_sharing_queries:
                service.estimate(query)
            service.tune()
            snapshot = service.metrics_registry().snapshot()
            assert "advisor" in snapshot
            assert snapshot["advisor"]["ticks"] >= 1.0

    def test_clean_close_with_advisor(self, service_catalog, join_query):
        service = EstimationService(service_catalog, config=TUNED)
        service.estimate(join_query)
        assert service.close() is True
