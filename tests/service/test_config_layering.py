"""Layered configuration: per-layer validation (the bugfix — the old
flat config silently accepted nonsense knobs), from_dict/to_dict round
trips, and the one-release legacy shims."""

from __future__ import annotations

import json

import pytest

from repro.service import ClusterConfig, HealingConfig, ServiceConfig


class TestServiceValidation:
    @pytest.mark.parametrize(
        ("field", "value"),
        [
            ("workers", 0),
            ("queue_depth", 0),
            ("max_batch", 0),
            ("batch_window_s", -0.001),
            ("default_timeout_s", 0.0),
            ("drain_timeout_s", -1.0),
            ("host", ""),
            ("port", -1),
            ("port", 70000),
        ],
    )
    def test_rejects_bad_knob(self, field, value):
        with pytest.raises(ValueError, match=field):
            ServiceConfig(**{field: value})

    def test_zero_batch_window_is_legal(self):
        # 0 disables coalescing; the old validator wrongly conflated it
        # with the negative case
        assert ServiceConfig(batch_window_s=0.0).batch_window_s == 0.0
        assert ServiceConfig(drain_timeout_s=0.0).drain_timeout_s == 0.0

    def test_nested_layers_are_type_checked(self):
        with pytest.raises(TypeError, match="healing"):
            ServiceConfig(healing={"breaker_threshold": 3})
        with pytest.raises(TypeError, match="cluster"):
            ServiceConfig(cluster={"shards": 2})


class TestHealingValidation:
    @pytest.mark.parametrize(
        ("field", "value"),
        [
            ("breaker_threshold", 0),
            ("breaker_window_s", 0.0),
            ("requeue_limit", -1),
            ("max_worker_restarts", -1),
        ],
    )
    def test_rejects_bad_knob(self, field, value):
        with pytest.raises(ValueError, match=field):
            HealingConfig(**{field: value})


class TestClusterValidation:
    @pytest.mark.parametrize(
        ("field", "value"),
        [
            ("shards", 0),
            ("replicas", -1),
            ("hedge_delay_s", -0.5),
            ("hedge_factor", 0.0),
            ("min_hedge_delay_s", -0.001),
            ("ring_points", 0),
            ("shard_workers", 0),
            ("breaker_threshold", 0),
            ("breaker_window_s", 0.0),
            ("startup_timeout_s", 0.0),
        ],
    )
    def test_rejects_bad_knob(self, field, value):
        with pytest.raises(ValueError, match=field):
            ClusterConfig(**{field: value})

    def test_none_hedge_delay_means_derived(self):
        assert ClusterConfig(hedge_delay_s=None).hedge_delay_s is None
        assert ClusterConfig(hedge_delay_s=0.0).hedge_delay_s == 0.0


class TestRoundTrip:
    def test_defaults_round_trip(self):
        config = ServiceConfig()
        assert ServiceConfig.from_dict(config.to_dict()) == config

    def test_full_cluster_deployment_fits_in_one_json_file(self):
        config = ServiceConfig(
            workers=4,
            batch_window_s=0.0,
            healing=HealingConfig(breaker_threshold=5, requeue_limit=0),
            cluster=ClusterConfig(
                shards=4, replicas=2, hedge_delay_s=0.25, ring_points=128
            ),
        )
        # through actual JSON, not just dicts: the serve --config path
        restored = ServiceConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert restored == config
        assert restored.cluster.replicas == 2
        assert restored.healing.breaker_threshold == 5

    def test_null_cluster_round_trips_to_none(self):
        data = ServiceConfig().to_dict()
        assert data["cluster"] is None
        assert ServiceConfig.from_dict(data).cluster is None

    def test_unknown_keys_are_rejected_per_layer(self):
        with pytest.raises(ValueError, match="unknown ServiceConfig"):
            ServiceConfig.from_dict({"wrokers": 2})
        with pytest.raises(ValueError, match="unknown HealingConfig"):
            ServiceConfig.from_dict({"healing": {"threshold": 3}})
        with pytest.raises(ValueError, match="unknown ClusterConfig"):
            ServiceConfig.from_dict({"cluster": {"shard": 2}})

    def test_nested_validation_fires_through_from_dict(self):
        with pytest.raises(ValueError, match="shards"):
            ServiceConfig.from_dict({"cluster": {"shards": 0}})


class TestLegacyShims:
    def test_flat_kwargs_fold_into_healing(self):
        with pytest.deprecated_call(match="deprecated"):
            config = ServiceConfig(breaker_threshold=7, requeue_limit=1)
        assert config.healing.breaker_threshold == 7
        assert config.healing.requeue_limit == 1
        # untouched healing knobs keep their defaults
        assert config.healing.max_worker_restarts == 8

    def test_flat_kwargs_conflict_with_nested(self):
        with pytest.raises(TypeError, match="not both"), pytest.warns(
            DeprecationWarning
        ):
            ServiceConfig(
                breaker_threshold=7, healing=HealingConfig()
            )

    def test_flat_attribute_reads_warn_but_work(self):
        config = ServiceConfig(healing=HealingConfig(breaker_threshold=9))
        with pytest.deprecated_call(match="healing.breaker_threshold"):
            assert config.breaker_threshold == 9
        with pytest.deprecated_call():
            assert config.breaker_window_s == 30.0
        with pytest.deprecated_call():
            assert config.requeue_limit == 2
        with pytest.deprecated_call():
            assert config.max_worker_restarts == 8

    def test_flat_dict_keys_fold_into_healing(self):
        with pytest.deprecated_call(match="nest them under 'healing'"):
            config = ServiceConfig.from_dict({"breaker_threshold": 4})
        assert config.healing.breaker_threshold == 4

    def test_flat_dict_keys_conflict_with_nested(self):
        with pytest.raises(ValueError, match="both"), pytest.warns(
            DeprecationWarning
        ):
            ServiceConfig.from_dict(
                {"breaker_threshold": 4, "healing": {"breaker_threshold": 4}}
            )

    def test_modern_spelling_is_warning_free(self, recwarn):
        config = ServiceConfig(
            healing=HealingConfig(breaker_threshold=5),
            cluster=ClusterConfig(shards=2),
        )
        ServiceConfig.from_dict(config.to_dict())
        assert not [
            w
            for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]
