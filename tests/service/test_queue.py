"""AdmissionQueue: shed-on-full, coalescing batch pops, close semantics."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.queue import AdmissionQueue


class TestAdmission:
    def test_offer_admits_until_depth_then_sheds(self):
        queue: AdmissionQueue[int] = AdmissionQueue(3)
        assert all(queue.offer(i) for i in range(3))
        assert queue.offer(99) is False  # shed, not blocked
        assert len(queue) == 3

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)

    def test_offer_after_close_raises(self):
        queue: AdmissionQueue[int] = AdmissionQueue(2)
        queue.close()
        with pytest.raises(RuntimeError):
            queue.offer(1)


class TestTakeBatch:
    def test_batch_respects_max_batch(self):
        queue: AdmissionQueue[int] = AdmissionQueue(16)
        for i in range(10):
            queue.offer(i)
        batch = queue.take_batch(max_batch=4, window_s=0.0)
        assert batch == [0, 1, 2, 3]
        assert len(queue) == 6

    def test_window_coalesces_stragglers(self):
        queue: AdmissionQueue[int] = AdmissionQueue(16)
        queue.offer(0)

        def straggler():
            time.sleep(0.02)
            queue.offer(1)

        thread = threading.Thread(target=straggler)
        thread.start()
        batch = queue.take_batch(max_batch=8, window_s=0.5)
        thread.join()
        assert batch == [0, 1]

    def test_take_batch_blocks_until_item(self):
        queue: AdmissionQueue[int] = AdmissionQueue(4)
        result: list[list[int]] = []

        def consumer():
            result.append(queue.take_batch(max_batch=4, window_s=0.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.02)
        assert thread.is_alive()  # still waiting
        queue.offer(7)
        thread.join(timeout=5.0)
        assert result == [[7]]

    def test_close_wakes_blocked_consumer_with_empty_batch(self):
        queue: AdmissionQueue[int] = AdmissionQueue(4)
        result: list[list[int]] = []

        def consumer():
            result.append(queue.take_batch(max_batch=4, window_s=0.5))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.01)
        queue.close()
        thread.join(timeout=5.0)
        assert result == [[]]

    def test_closed_queue_still_drains_backlog(self):
        queue: AdmissionQueue[int] = AdmissionQueue(4)
        queue.offer(1)
        queue.offer(2)
        queue.close()
        assert queue.take_batch(max_batch=4, window_s=0.0) == [1, 2]
        assert queue.take_batch(max_batch=4, window_s=0.0) == []


class TestLifecycle:
    def test_drain_empties_queue(self):
        queue: AdmissionQueue[int] = AdmissionQueue(4)
        queue.offer(1)
        queue.offer(2)
        assert queue.drain() == [1, 2]
        assert len(queue) == 0

    def test_wait_empty(self):
        queue: AdmissionQueue[int] = AdmissionQueue(4)
        assert queue.wait_empty(timeout=0.1) is True
        queue.offer(1)
        assert queue.wait_empty(timeout=0.05) is False

        def consume():
            time.sleep(0.02)
            queue.take_batch(max_batch=4, window_s=0.0)

        thread = threading.Thread(target=consume)
        thread.start()
        assert queue.wait_empty(timeout=5.0) is True
        thread.join()
