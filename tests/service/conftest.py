"""Fixtures for the serving-layer tests: a catalog over the two-table
database plus a family of factor-sharing queries."""

from __future__ import annotations

import pytest

from repro.catalog import StatisticsCatalog
from repro.core.predicates import FilterPredicate
from repro.engine.expressions import Query
from repro.stats.builder import SITBuilder


@pytest.fixture()
def service_catalog(two_table_db, two_table_pool) -> StatisticsCatalog:
    """A fresh refresh-capable catalog per test (tests mutate it)."""
    return StatisticsCatalog.from_pool(
        two_table_pool,
        database=two_table_db,
        builder=SITBuilder(two_table_db),
    )


@pytest.fixture()
def join_query(two_table_attrs, two_table_join) -> Query:
    return Query.of(
        two_table_join, FilterPredicate(two_table_attrs["Ra"], 10.0, 40.0)
    )


@pytest.fixture()
def factor_sharing_queries(two_table_attrs, two_table_join) -> list[Query]:
    """K queries sharing the join factor, each with a different filter —
    the shared-factor workload in miniature."""
    attribute = two_table_attrs["Ra"]
    return [
        Query.of(two_table_join, FilterPredicate(attribute, low, low + 25.0))
        for low in (0.0, 10.0, 20.0, 30.0, 40.0, 50.0)
    ]
