"""The JSON-lines TCP front-end: round trips, typed failures over the
wire, pipelining, stats."""

from __future__ import annotations

import socket

import pytest

from repro.estimators import SITEstimator
from repro.service import EstimationService, ServiceConfig, connect
from repro.service.protocol import (
    InvalidRequest,
    decode_line,
    encode_line,
)
from repro.service.server import start_in_thread
from repro.sql import parse_query

SQL = "SELECT * FROM R, S WHERE R.x = S.y AND R.a BETWEEN 10 AND 40"


@pytest.fixture()
def server(service_catalog):
    service = EstimationService(
        service_catalog,
        config=ServiceConfig(workers=1, queue_depth=64, batch_window_s=0.05),
    )
    handle = start_in_thread(service, port=0)  # ephemeral port
    try:
        yield handle
    finally:
        handle.close()


@pytest.fixture()
def client(server):
    host, port = server.address
    with connect(f"{host}:{port}") as tcp:
        yield tcp


class TestRoundTrips:
    def test_ping(self, client):
        assert client.ping() is True

    def test_estimate_matches_direct_estimator(
        self, two_table_db, service_catalog, client
    ):
        snapshot = service_catalog.snapshot()
        served = client.estimate(SQL)
        query = parse_query(SQL, two_table_db.schema)
        direct = SITEstimator(
            two_table_db, snapshot, engine="bitmask"
        ).estimate(query)
        assert served.snapshot_version == snapshot.version
        assert served.selectivity == direct.selectivity
        assert served.cardinality == direct.selectivity * (
            two_table_db.cross_product_size(query.tables)
        )

    def test_stats_op_exposes_service_namespace(self, client):
        client.estimate(SQL)
        stats = client.stats()
        assert stats["service"]["served"] >= 1.0
        assert "latency_ms" in stats["service"]
        assert set(stats) >= {"service", "counters", "caches", "catalog"}


class TestWireFailures:
    def test_unparsable_sql_is_invalid(self, client):
        with pytest.raises(InvalidRequest):
            client.estimate("SELECT * FROM nowhere WHERE")

    def test_empty_sql_is_invalid(self, client):
        with pytest.raises(InvalidRequest):
            client.estimate("   ")

    def test_unknown_op_is_invalid_without_killing_connection(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(encode_line({"id": "1", "op": "teleport"}))
            response = decode_line(reader.readline())
            assert response == {
                "id": "1",
                "ok": False,
                "status": "invalid",
                "detail": "unknown op 'teleport'",
            }
            # the connection survives protocol errors
            sock.sendall(encode_line({"id": "2", "op": "ping"}))
            assert decode_line(reader.readline())["pong"] is True

    def test_garbage_line_answers_invalid(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            response = decode_line(reader.readline())
            assert response["ok"] is False
            assert response["status"] == "invalid"


class TestPipelining:
    def test_burst_on_one_connection_is_pipelined(self, server):
        """N requests written back-to-back all get answered; responses
        correlate on id (order may differ — that is the point)."""
        host, port = server.address
        n = 6
        with socket.create_connection((host, port), timeout=30.0) as sock:
            reader = sock.makefile("rb")
            burst = b"".join(
                encode_line({"id": str(index), "sql": SQL})
                for index in range(n)
            )
            sock.sendall(burst)
            responses = [decode_line(reader.readline()) for _ in range(n)]
        assert {response["id"] for response in responses} == {
            str(index) for index in range(n)
        }
        assert all(response["ok"] for response in responses)
        # identical pipelined requests coalesce into shared batches
        assert any(
            response["batch_size"] > 1 for response in responses
        )
