"""Wire codec and typed-failure round trips."""

from __future__ import annotations

import pytest

from repro.service.protocol import (
    ERRORS_BY_STATUS,
    STATUS_CLOSED,
    STATUS_DEADLINE,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUSES,
    DeadlineExceeded,
    InvalidRequest,
    Overloaded,
    ServedEstimate,
    ServiceClosed,
    ServiceError,
    decode_line,
    encode_line,
    error_from_status,
    failure_to_wire,
    result_from_wire,
)


def sample_estimate(**overrides) -> ServedEstimate:
    base = dict(
        selectivity=0.125,
        cardinality=12500.0,
        error=0.03,
        snapshot_version=3,
        latency_ms=1.75,
        batch_size=8,
        deduplicated=True,
    )
    base.update(overrides)
    return ServedEstimate(**base)


class TestCodec:
    def test_encode_decode_round_trip(self):
        payload = {"id": "7", "op": "estimate", "sql": "SELECT 1"}
        line = encode_line(payload)
        assert line.endswith(b"\n")
        assert decode_line(line) == payload

    def test_decode_rejects_garbage(self):
        with pytest.raises(InvalidRequest):
            decode_line(b"not json\n")
        with pytest.raises(InvalidRequest):
            decode_line(b"\n")
        with pytest.raises(InvalidRequest):
            decode_line(b"[1, 2, 3]\n")

    def test_decode_accepts_str(self):
        assert decode_line('{"op": "ping"}') == {"op": "ping"}


class TestServedEstimate:
    def test_wire_round_trip_is_lossless(self):
        estimate = sample_estimate()
        wire = estimate.to_wire("42")
        assert wire["id"] == "42"
        assert wire["ok"] is True
        assert wire["status"] == STATUS_OK
        assert ServedEstimate.from_wire(wire) == estimate

    def test_result_from_wire_ok(self):
        estimate = sample_estimate()
        assert result_from_wire(estimate.to_wire()) == estimate

    def test_optional_fields_default(self):
        wire = sample_estimate().to_wire()
        del wire["batch_size"], wire["deduplicated"]
        decoded = ServedEstimate.from_wire(wire)
        assert decoded.batch_size == 1
        assert decoded.deduplicated is False


class TestFailures:
    def test_status_vocabulary_is_pinned(self):
        assert set(STATUSES) == {
            STATUS_OK,
            STATUS_OVERLOADED,
            STATUS_DEADLINE,
            STATUS_INVALID,
            STATUS_CLOSED,
        }
        assert set(ERRORS_BY_STATUS) == set(STATUSES) - {STATUS_OK}

    @pytest.mark.parametrize(
        "exc_type",
        [Overloaded, DeadlineExceeded, InvalidRequest, ServiceClosed],
    )
    def test_typed_failure_round_trip(self, exc_type):
        original = exc_type("something went wrong")
        wire = failure_to_wire(original, request_id="9")
        assert wire == {
            "ok": False,
            "status": exc_type.status,
            "detail": "something went wrong",
            "id": "9",
        }
        with pytest.raises(exc_type, match="something went wrong"):
            result_from_wire(wire)

    def test_unknown_status_degrades_to_service_error(self):
        exc = error_from_status("martian", "??")
        assert type(exc) is ServiceError
        with pytest.raises(ServiceError):
            result_from_wire({"ok": False, "status": "martian", "detail": "??"})
