"""Unit tests for the vectorized SPJ executor (ground truth engine)."""

import math

import numpy as np
import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.database import Database, Table
from repro.engine.executor import Executor, equi_join_pairs
from repro.engine.schema import Schema, TableSchema


class TestEquiJoinPairs:
    def test_simple_match(self):
        left = np.array([1.0, 2.0, 3.0])
        right = np.array([2.0, 2.0, 4.0])
        li, ri = equi_join_pairs(left, right)
        pairs = sorted(zip(li.tolist(), ri.tolist()))
        assert pairs == [(1, 0), (1, 1)]

    def test_no_matches(self):
        li, ri = equi_join_pairs(np.array([1.0]), np.array([2.0]))
        assert li.size == 0 and ri.size == 0

    def test_nan_never_matches(self):
        left = np.array([np.nan, 1.0])
        right = np.array([np.nan, 1.0])
        li, ri = equi_join_pairs(left, right)
        assert list(zip(li.tolist(), ri.tolist())) == [(1, 1)]

    def test_empty_inputs(self):
        li, ri = equi_join_pairs(np.array([]), np.array([1.0]))
        assert li.size == 0

    def test_cross_match_counts(self):
        left = np.full(3, 7.0)
        right = np.full(4, 7.0)
        li, ri = equi_join_pairs(left, right)
        assert li.size == 12

    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        left = rng.integers(0, 10, 40).astype(float)
        right = rng.integers(0, 10, 30).astype(float)
        li, ri = equi_join_pairs(left, right)
        expected = {
            (i, j)
            for i in range(40)
            for j in range(30)
            if left[i] == right[j]
        }
        assert set(zip(li.tolist(), ri.tolist())) == expected


@pytest.fixture(scope="module")
def simple_db() -> Database:
    schema = Schema()
    schema.add_table(TableSchema("R", ("x", "a")))
    schema.add_table(TableSchema("S", ("y", "b")))
    schema.add_table(TableSchema("T", ("z",)))
    db = Database(schema)
    db.add_table(
        Table(
            schema.table("R"),
            {
                "x": np.array([0.0, 0.0, 1.0, 2.0, np.nan]),
                "a": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
            },
        )
    )
    db.add_table(
        Table(
            schema.table("S"),
            {
                "y": np.array([0.0, 1.0, 1.0, 3.0]),
                "b": np.array([1.0, 2.0, 3.0, 4.0]),
            },
        )
    )
    db.add_table(Table(schema.table("T"), {"z": np.array([5.0, 6.0])}))
    return db


RX = Attribute("R", "x")
RA = Attribute("R", "a")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
TZ = Attribute("T", "z")


class TestCardinality:
    def test_empty_predicates(self, simple_db):
        executor = Executor(simple_db)
        assert executor.cardinality(frozenset()) == 1
        assert (
            executor.cardinality(frozenset(), frozenset(("R",))) == 5
        )

    def test_single_filter(self, simple_db):
        executor = Executor(simple_db)
        predicate = FilterPredicate(RA, 15, 45)
        assert executor.cardinality(frozenset((predicate,))) == 3

    def test_filter_excludes_nan(self, simple_db):
        executor = Executor(simple_db)
        predicate = FilterPredicate(RX, -math.inf, math.inf)
        assert executor.cardinality(frozenset((predicate,))) == 4

    def test_join_cardinality(self, simple_db):
        executor = Executor(simple_db)
        join = JoinPredicate(RX, SY)
        # x values 0,0 match y=0 (one row) -> 2 pairs; x=1 matches y=1,1 -> 2
        assert executor.cardinality(frozenset((join,))) == 4

    def test_join_plus_filters(self, simple_db):
        executor = Executor(simple_db)
        join = JoinPredicate(RX, SY)
        filt = FilterPredicate(SB, 2, 3)
        assert executor.cardinality(frozenset((join, filt))) == 2

    def test_cross_component_multiplies(self, simple_db):
        executor = Executor(simple_db)
        join = JoinPredicate(RX, SY)
        filt = FilterPredicate(TZ, 5, 5)
        assert executor.cardinality(frozenset((join, filt))) == 4 * 1

    def test_unreferenced_tables_multiply(self, simple_db):
        executor = Executor(simple_db)
        join = JoinPredicate(RX, SY)
        count = executor.cardinality(
            frozenset((join,)), frozenset(("R", "S", "T"))
        )
        assert count == 4 * 2

    def test_table_mismatch_raises(self, simple_db):
        executor = Executor(simple_db)
        join = JoinPredicate(RX, SY)
        with pytest.raises(ValueError):
            executor.cardinality(frozenset((join,)), frozenset(("R",)))

    def test_memoization(self, simple_db):
        executor = Executor(simple_db)
        join = frozenset((JoinPredicate(RX, SY),))
        executor.cardinality(join)
        misses = executor.cache_misses
        executor.cardinality(join)
        assert executor.cache_misses == misses


class TestSelectivity:
    def test_definition_1(self, simple_db):
        executor = Executor(simple_db)
        join = JoinPredicate(RX, SY)
        selectivity = executor.selectivity(frozenset((join,)))
        assert selectivity == pytest.approx(4 / (5 * 4))

    def test_empty_predicates_are_one(self, simple_db):
        assert Executor(simple_db).selectivity(frozenset()) == 1.0

    def test_conditional_matches_ratio(self, simple_db):
        executor = Executor(simple_db)
        join = frozenset((JoinPredicate(RX, SY),))
        filt = frozenset((FilterPredicate(SB, 2, 3),))
        conditional = executor.conditional_selectivity(filt, join)
        assert conditional == pytest.approx(2 / 4)

    def test_conditional_on_empty_relation(self, simple_db):
        executor = Executor(simple_db)
        impossible = frozenset((FilterPredicate(RA, 1000, 2000),))
        anything = frozenset((FilterPredicate(RX, 0, 0),))
        assert executor.conditional_selectivity(anything, impossible) == 1.0

    def test_atomic_decomposition_property_holds_exactly(self, simple_db):
        """Property 1: Sel(P,Q) = Sel(P|Q) * Sel(Q), with no assumptions."""
        executor = Executor(simple_db)
        p = frozenset((FilterPredicate(SB, 2, 3),))
        q = frozenset((JoinPredicate(RX, SY),))
        left = executor.selectivity(p | q)
        right = executor.conditional_selectivity(p, q) * executor.selectivity(q)
        assert left == pytest.approx(right)


class TestExecute:
    def test_join_result_columns(self, simple_db):
        executor = Executor(simple_db)
        join = JoinPredicate(RX, SY)
        result = executor.execute(frozenset((join,)))
        assert result.row_count == 4
        values = sorted(result.column(RA).tolist())
        assert values == [10.0, 20.0, 30.0, 30.0]

    def test_cross_component_execution(self, simple_db):
        executor = Executor(simple_db)
        predicates = frozenset(
            (FilterPredicate(RA, 10, 20), FilterPredicate(TZ, 5, 6))
        )
        result = executor.execute(predicates)
        assert result.row_count == 4  # 2 R rows x 2 T rows

    def test_three_way_join_chain(self, simple_db):
        schema = simple_db.schema
        executor = Executor(simple_db)
        # R.x = S.y and S.b = T.z has no matches (b in 1..4, z in 5..6)
        predicates = frozenset(
            (JoinPredicate(RX, SY), JoinPredicate(SB, TZ))
        )
        assert executor.cardinality(predicates) == 0
