"""Tests for the canonical SPJ query representation."""

import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.expressions import Query

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")

JOIN = JoinPredicate(RX, SY)
FILTER = FilterPredicate(RA, 0, 10)


class TestQuery:
    def test_tables_derived_from_predicates(self):
        query = Query.of(JOIN, FILTER)
        assert query.tables == frozenset(("R", "S"))

    def test_extra_tables_preserved(self):
        query = Query(frozenset({FILTER}), tables=frozenset(("R", "T")))
        assert query.tables == frozenset(("R", "T"))

    def test_join_filter_partitions(self):
        query = Query.of(JOIN, FILTER)
        assert query.joins == frozenset({JOIN})
        assert query.filters == frozenset({FILTER})
        assert query.join_count == 1
        assert query.filter_count == 1

    def test_subquery(self):
        query = Query.of(JOIN, FILTER)
        sub = query.subquery(frozenset({FILTER}))
        assert sub.predicates == frozenset({FILTER})
        assert sub.tables == frozenset(("R",))

    def test_subquery_must_be_subset(self):
        query = Query.of(FILTER)
        with pytest.raises(ValueError):
            query.subquery(frozenset({JOIN}))

    def test_string_form_is_deterministic(self):
        first = Query.of(JOIN, FILTER)
        second = Query.of(FILTER, JOIN)
        assert str(first) == str(second)

    def test_equality_and_hash(self):
        assert Query.of(JOIN, FILTER) == Query.of(FILTER, JOIN)
        assert hash(Query.of(JOIN)) == hash(Query.of(JOIN))

    def test_empty_query(self):
        query = Query(frozenset())
        assert query.join_count == 0
        assert query.tables == frozenset()
