"""Additional executor edge cases: cross products, empty results,
materialization consistency."""

import numpy as np
import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.database import Database, Table
from repro.engine.executor import Executor
from repro.engine.schema import Schema, TableSchema


@pytest.fixture(scope="module")
def db():
    schema = Schema()
    schema.add_table(TableSchema("A", ("k", "v")))
    schema.add_table(TableSchema("B", ("k", "w")))
    schema.add_table(TableSchema("C", ("u",)))
    database = Database(schema)
    database.add_table(
        Table(
            schema.table("A"),
            {"k": np.array([1.0, 2.0, 2.0]), "v": np.array([10.0, 20.0, 30.0])},
        )
    )
    database.add_table(
        Table(
            schema.table("B"),
            {"k": np.array([2.0, 3.0]), "w": np.array([5.0, 6.0])},
        )
    )
    database.add_table(Table(schema.table("C"), {"u": np.array([7.0, 8.0, 9.0])}))
    return database


AK = Attribute("A", "k")
AV = Attribute("A", "v")
BK = Attribute("B", "k")
CU = Attribute("C", "u")


class TestCrossProducts:
    def test_execute_cross_component_row_count(self, db):
        executor = Executor(db)
        predicates = frozenset(
            (FilterPredicate(AV, 15, 35), FilterPredicate(CU, 7, 8))
        )
        result = executor.execute(predicates)
        assert result.row_count == 2 * 2
        # Every (A-row, C-row) combination appears exactly once.
        pairs = set(
            zip(result.indices["A"].tolist(), result.indices["C"].tolist())
        )
        assert len(pairs) == 4

    def test_cross_component_column_values(self, db):
        executor = Executor(db)
        predicates = frozenset(
            (FilterPredicate(AV, 15, 35), FilterPredicate(CU, 7, 8))
        )
        result = executor.execute(predicates)
        values = sorted(result.column(CU).tolist())
        assert values == [7.0, 7.0, 8.0, 8.0]


class TestEmptyResults:
    def test_empty_filter_zero_everywhere(self, db):
        executor = Executor(db)
        impossible = frozenset((FilterPredicate(AV, 1000, 2000),))
        assert executor.cardinality(impossible) == 0
        assert executor.selectivity(impossible) == 0.0
        assert executor.execute(impossible).row_count == 0

    def test_empty_join_short_circuits(self, db):
        executor = Executor(db)
        predicates = frozenset(
            (
                JoinPredicate(AK, BK),
                FilterPredicate(AV, 1000, 2000),
                FilterPredicate(CU, 7, 9),
            )
        )
        assert executor.cardinality(predicates) == 0


class TestConsistency:
    def test_execute_row_count_matches_cardinality(self, db):
        executor = Executor(db)
        cases = [
            frozenset((JoinPredicate(AK, BK),)),
            frozenset((JoinPredicate(AK, BK), FilterPredicate(AV, 15, 35))),
            frozenset((FilterPredicate(AV, 0, 100), FilterPredicate(CU, 8, 9))),
        ]
        for predicates in cases:
            assert (
                executor.execute(predicates).row_count
                == executor.cardinality(predicates)
            )

    def test_execute_rejects_foreign_tables(self, db):
        executor = Executor(db)
        with pytest.raises(ValueError):
            executor.execute(
                frozenset((JoinPredicate(AK, BK),)), tables=frozenset(("A",))
            )

    def test_selectivity_with_extra_tables_scales_denominator(self, db):
        executor = Executor(db)
        join = frozenset((JoinPredicate(AK, BK),))
        base = executor.selectivity(join)
        widened = executor.selectivity(join, frozenset(("A", "B", "C")))
        assert widened == pytest.approx(base)  # |C| cancels exactly
