"""Tests for schema objects and the database catalog."""

import numpy as np
import pytest

from repro.core.predicates import Attribute
from repro.engine.database import Database, Table
from repro.engine.schema import ForeignKey, Schema, TableSchema


class TestTableSchema:
    def test_attributes(self):
        table = TableSchema("R", ("a", "b"), primary_key="a")
        assert table.attribute("a") == Attribute("R", "a")
        assert table.attributes == (Attribute("R", "a"), Attribute("R", "b"))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("R", ("a", "a"))

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("R", ("a",), primary_key="z")

    def test_unknown_column_lookup(self):
        with pytest.raises(KeyError):
            TableSchema("R", ("a",)).attribute("b")


class TestSchema:
    def test_duplicate_table_rejected(self):
        schema = Schema()
        schema.add_table(TableSchema("R", ("a",)))
        with pytest.raises(ValueError):
            schema.add_table(TableSchema("R", ("b",)))

    def test_foreign_key_validation(self):
        schema = Schema()
        schema.add_table(TableSchema("R", ("x",)))
        schema.add_table(TableSchema("S", ("y",)))
        schema.add_foreign_key(ForeignKey("R", "x", "S", "y"))
        assert schema.join_edges() == [(Attribute("R", "x"), Attribute("S", "y"))]
        with pytest.raises(ValueError):
            schema.add_foreign_key(ForeignKey("R", "z", "S", "y"))
        with pytest.raises(ValueError):
            schema.add_foreign_key(ForeignKey("R", "x", "Q", "y"))

    def test_unknown_table_lookup(self):
        with pytest.raises(KeyError):
            Schema().table("missing")


class TestTable:
    def schema(self):
        return TableSchema("R", ("a", "b"))

    def test_column_mismatch(self):
        with pytest.raises(ValueError):
            Table(self.schema(), {"a": np.array([1.0])})

    def test_ragged_columns(self):
        with pytest.raises(ValueError):
            Table(
                self.schema(),
                {"a": np.array([1.0]), "b": np.array([1.0, 2.0])},
            )

    def test_normalizes_to_float(self):
        table = Table(
            self.schema(),
            {"a": np.array([1, 2]), "b": np.array([3, 4])},
        )
        assert table.column("a").dtype == np.float64
        assert len(table) == 2

    def test_unknown_column(self):
        table = Table(
            self.schema(), {"a": np.array([1.0]), "b": np.array([2.0])}
        )
        with pytest.raises(KeyError):
            table.column("z")


class TestDatabase:
    def make(self) -> Database:
        schema = Schema()
        schema.add_table(TableSchema("R", ("a",)))
        schema.add_table(TableSchema("S", ("b",)))
        db = Database(schema)
        db.add_table(Table(schema.table("R"), {"a": np.arange(10.0)}))
        db.add_table(Table(schema.table("S"), {"b": np.arange(5.0)}))
        return db

    def test_catalog_lookups(self):
        db = self.make()
        assert db.row_count("R") == 10
        assert db.cross_product_size(("R", "S")) == 50
        assert db.table_names == frozenset(("R", "S"))

    def test_column_by_attribute(self):
        db = self.make()
        assert db.column(Attribute("S", "b")).tolist() == [0, 1, 2, 3, 4]

    def test_unknown_table_rejected(self):
        db = self.make()
        orphan = TableSchema("Z", ("q",))
        with pytest.raises(ValueError):
            db.add_table(Table(orphan, {"q": np.array([1.0])}))
        with pytest.raises(KeyError):
            db.table("Z")
