"""Edge-case tests for bench reporting helpers."""

from repro.bench.harness import QueryMetrics, TechniqueReport
from repro.bench.reporting import render_summary, render_table
from repro.engine.expressions import Query


def metrics(error: float, calls: int = 3) -> QueryMetrics:
    return QueryMetrics(
        query=Query(frozenset()),
        mean_absolute_error=error,
        full_query_error=error,
        vm_calls=calls,
        analysis_seconds=0.010,
        estimation_seconds=0.002,
    )


class TestTechniqueReport:
    def test_empty_report_defaults(self):
        report = TechniqueReport("x")
        assert report.mean_absolute_error == 0.0
        assert report.mean_vm_calls == 0.0
        assert report.mean_analysis_ms == 0.0
        assert report.mean_estimation_ms == 0.0

    def test_means(self):
        report = TechniqueReport("x", [metrics(10.0), metrics(30.0)])
        assert report.mean_absolute_error == 20.0
        assert report.mean_vm_calls == 3.0
        assert report.mean_analysis_ms == 10.0
        assert report.mean_estimation_ms == 2.0


class TestRenderTable:
    def test_empty_rows(self):
        table = render_table("Title", ["a"], [])
        assert "Title" in table
        assert "a" in table

    def test_wide_cells_expand_columns(self):
        table = render_table("T", ["h"], [["very-long-cell-content"]])
        assert "very-long-cell-content" in table

    def test_right_alignment(self):
        table = render_table("T", ["col"], [["1"], ["22"]])
        lines = table.splitlines()
        assert lines[-1].endswith("22")
        assert lines[-2].endswith(" 1")


class TestRenderSummary:
    def test_contains_all_metrics(self):
        report = TechniqueReport("GS-X", [metrics(5.0)])
        text = render_summary(report)
        assert "GS-X" in text
        assert "5.0" in text
        assert "ms" in text
