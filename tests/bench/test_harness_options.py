"""Tests for harness evaluation options."""

import pytest

from repro.bench.harness import Harness
from repro.estimators import make_gs_diff
from repro.core.predicates import FilterPredicate
from repro.engine.expressions import Query
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool


@pytest.fixture(scope="module")
def setting(two_table_db_module):
    db = two_table_db_module
    from repro.core.predicates import Attribute, JoinPredicate

    join = JoinPredicate(Attribute("R", "x"), Attribute("S", "y"))
    queries = [
        Query.of(join, FilterPredicate(Attribute("R", "a"), 0, 20)),
        Query.of(join, FilterPredicate(Attribute("S", "b"), 10, 60)),
    ]
    pool = build_workload_pool(SITBuilder(db), queries, max_joins=1)
    return db, queries, pool


@pytest.fixture(scope="module")
def two_table_db_module():
    import numpy as np

    from repro.engine.database import Database, Table
    from repro.engine.schema import ForeignKey, Schema, TableSchema

    rng = np.random.default_rng(0)
    schema = Schema()
    schema.add_table(TableSchema("R", ("x", "a")))
    schema.add_table(TableSchema("S", ("y", "b"), primary_key="y"))
    schema.add_foreign_key(ForeignKey("R", "x", "S", "y"))
    db = Database(schema)
    weights = 1.0 / (np.arange(1, 51) ** 1.2)
    weights /= weights.sum()
    r_x = rng.choice(50, size=1000, p=weights).astype(float)
    db.add_table(
        Table(
            schema.table("R"),
            {"x": r_x, "a": (r_x * 2 + rng.integers(0, 5, 1000)).astype(float)},
        )
    )
    db.add_table(
        Table(
            schema.table("S"),
            {
                "y": np.arange(50.0),
                "b": rng.integers(0, 100, 50).astype(float),
            },
        )
    )
    return db


class TestEvaluateOptions:
    def test_without_gvm(self, setting):
        db, queries, pool = setting
        harness = Harness(db)
        evaluation = harness.evaluate(
            queries, pool, {"GS-Diff": make_gs_diff}, include_gvm=False
        )
        assert set(evaluation.reports) == {"GS-Diff"}

    def test_subquery_cap_respected(self, setting):
        db, queries, pool = setting
        harness = Harness(db)
        evaluation = harness.evaluate(
            queries,
            pool,
            {"GS-Diff": make_gs_diff},
            include_gvm=False,
            max_subqueries=3,
        )
        for metrics in evaluation.report("GS-Diff").per_query:
            assert len(metrics.estimates) <= 3

    def test_full_universe_when_uncapped(self, setting):
        db, queries, pool = setting
        harness = Harness(db)
        evaluation = harness.evaluate(
            queries,
            pool,
            {"GS-Diff": make_gs_diff},
            include_gvm=False,
            max_subqueries=None,
        )
        # join + filter -> 3 connected sub-queries: {j}, {f}, {j, f}.
        for metrics in evaluation.report("GS-Diff").per_query:
            assert len(metrics.estimates) == 3

    def test_truth_shared_across_techniques(self, setting):
        db, queries, pool = setting
        harness = Harness(db)
        first = harness.evaluate(
            queries, pool, {"GS-Diff": make_gs_diff}, include_gvm=False
        )
        misses = harness.executor.cache_misses
        second = harness.evaluate(
            queries, pool, {"GS-Diff": make_gs_diff}, include_gvm=False
        )
        # Ground truth is memoized: the second evaluation adds no misses.
        assert harness.executor.cache_misses == misses
        assert (
            first.report("GS-Diff").mean_absolute_error
            == second.report("GS-Diff").mean_absolute_error
        )
