"""Tests for the experiment harness and reporting."""

import pytest

from repro.bench.config import BenchConfig
from repro.bench.harness import Harness
from repro.bench.reporting import (
    figure5_rows,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure8,
    render_summary,
    render_table,
)
from repro.estimators import make_gs_diff, make_gs_nind, make_nosit
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool
from repro.workload.queries import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def evaluation(tiny_snowflake_module):
    db = tiny_snowflake_module
    generator = WorkloadGenerator(
        db, WorkloadConfig(join_count=3, filter_count=2, seed=2)
    )
    queries = generator.generate(3)
    pool = build_workload_pool(SITBuilder(db), queries, max_joins=2)
    harness = Harness(db)
    return harness.evaluate(
        queries,
        pool,
        {"noSit": make_nosit, "GS-nInd": make_gs_nind, "GS-Diff": make_gs_diff},
        max_subqueries=15,
    )


@pytest.fixture(scope="module")
def tiny_snowflake_module():
    from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

    return generate_snowflake(SnowflakeConfig(scale=0.05, seed=11))


class TestHarness:
    def test_reports_for_all_techniques(self, evaluation):
        assert set(evaluation.reports) == {"noSit", "GS-nInd", "GS-Diff", "GVM"}

    def test_per_query_counts(self, evaluation):
        for report in evaluation.reports.values():
            assert len(report.per_query) == 3

    def test_errors_non_negative(self, evaluation):
        for report in evaluation.reports.values():
            assert report.mean_absolute_error >= 0.0
            for query_metrics in report.per_query:
                assert query_metrics.mean_absolute_error >= 0.0

    def test_gs_not_worse_than_nosit(self, evaluation):
        nosit = evaluation.report("noSit").mean_absolute_error
        gs = evaluation.report("GS-Diff").mean_absolute_error
        assert gs <= nosit * 1.05 + 1e-9

    def test_vm_calls_positive(self, evaluation):
        for report in evaluation.reports.values():
            assert report.mean_vm_calls > 0

    def test_truth_cached(self, tiny_snowflake_module, evaluation):
        assert evaluation.true_cardinalities

    def test_estimates_recorded_per_subquery(self, evaluation):
        for report in evaluation.reports.values():
            for query_metrics in report.per_query:
                assert query_metrics.estimates
                assert query_metrics.query.predicates in query_metrics.estimates

    def test_stats_surfaced_for_getselectivity_techniques(self, evaluation):
        for name, report in evaluation.reports.items():
            for query_metrics in report.per_query:
                if name == "GVM":
                    assert query_metrics.snapshot is None
                else:
                    snapshot = query_metrics.snapshot
                    assert snapshot.caches["memo_entries"] > 0
                    assert snapshot.counters["matcher_calls"] == (
                        snapshot.caches["match_cache_hits"]
                        + snapshot.caches["match_cache_misses"]
                    )

    def test_session_snapshots_surfaced(self, evaluation):
        snapshots = evaluation.session_snapshots
        assert set(snapshots) == {
            name for name in evaluation.reports if name != "GVM"
        }
        for snapshot in snapshots.values():
            assert snapshot.catalog["match_cache_hit_rate"] >= 0.0
            assert snapshot.meta["queries"] == len(
                next(iter(evaluation.reports.values())).per_query
            )


class TestReporting:
    def test_render_table_alignment(self):
        table = render_table("T", ["a", "bb"], [["1", "2"], ["33", "444"]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "444" in table

    def test_figure5(self, evaluation):
        pairs = figure5_rows(evaluation, "GVM", "GS-nInd")
        assert len(pairs) == 3
        rendered = render_figure5(evaluation)
        assert "points under x=y" in rendered

    def test_figure6(self, evaluation):
        rendered = render_figure6({3: evaluation})
        assert "GVM" in rendered and "GS-nInd" in rendered

    def test_figure7(self, evaluation):
        rendered = render_figure7(
            {"J2": evaluation}, ["noSit", "GS-nInd", "GS-Diff"], 3
        )
        assert "J2" in rendered
        rendered_missing = render_figure7({"J2": evaluation}, ["GS-Opt"], 3)
        assert "-" in rendered_missing

    def test_figure8(self, evaluation):
        rendered = render_figure8({"J2": evaluation}, "GS-Diff", 3)
        assert "decomposition analysis" in rendered

    def test_summary(self, evaluation):
        assert "GS-Diff" in render_summary(evaluation.report("GS-Diff"))


class TestBenchConfig:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_SCALE", "REPRO_QUERIES", "REPRO_SUBQUERIES", "REPRO_SEED"):
            monkeypatch.delenv(name, raising=False)
        config = BenchConfig.from_env()
        assert config.scale == 0.25
        assert config.queries_per_workload == 12

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_QUERIES", "7")
        config = BenchConfig.from_env()
        assert config.scale == 0.5
        assert config.queries_per_workload == 7
