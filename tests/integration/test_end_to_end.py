"""End-to-end workload tests: the paper's experimental shapes in miniature."""

import pytest

from repro.bench.harness import Harness
from repro.estimators import (
    make_gs_diff,
    make_gs_nind,
    make_gs_opt,
    make_nosit,
)
from repro.optimizer.explorer import explore, subplan_predicate_sets
from repro.optimizer.integration import MemoCoupledEstimator
from repro.core.errors import DiffError
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake


@pytest.fixture(scope="module")
def setting():
    db = generate_snowflake(SnowflakeConfig(scale=0.1, seed=11))
    generator = WorkloadGenerator(
        db, WorkloadConfig(join_count=3, filter_count=3, seed=3)
    )
    queries = generator.generate(4)
    pool = build_workload_pool(SITBuilder(db), queries, max_joins=3)
    return dict(db=db, queries=queries, pool=pool)


@pytest.fixture(scope="module")
def evaluation(setting):
    harness = Harness(setting["db"])
    return harness.evaluate(
        setting["queries"],
        setting["pool"],
        {
            "noSit": make_nosit,
            "GS-nInd": make_gs_nind,
            "GS-Diff": make_gs_diff,
            "GS-Opt": make_gs_opt,
        },
        max_subqueries=20,
    )


class TestFigure7Shape:
    def test_sits_reduce_error(self, evaluation):
        nosit = evaluation.report("noSit").mean_absolute_error
        gs_diff = evaluation.report("GS-Diff").mean_absolute_error
        assert gs_diff < nosit

    def test_opt_is_best(self, evaluation):
        opt = evaluation.report("GS-Opt").mean_absolute_error
        for name in ("noSit", "GS-nInd", "GS-Diff", "GVM"):
            assert opt <= evaluation.report(name).mean_absolute_error * 1.05

    def test_diff_not_worse_than_nind(self, evaluation):
        diff = evaluation.report("GS-Diff").mean_absolute_error
        nind = evaluation.report("GS-nInd").mean_absolute_error
        assert diff <= nind * 1.10 + 1e-9

    def test_pool_sweep_monotone_overall(self, setting):
        """More SITs should not make estimates substantially worse."""
        harness = Harness(setting["db"])
        errors = {}
        for limit in (0, 1, 3):
            pool = setting["pool"].restrict_joins(limit)
            evaluation = harness.evaluate(
                setting["queries"],
                pool,
                {"GS-Diff": make_gs_diff},
                include_gvm=False,
                max_subqueries=20,
            )
            errors[limit] = evaluation.report("GS-Diff").mean_absolute_error
        assert errors[3] < errors[0]


class TestFigure6Shape:
    def test_gvm_needs_more_view_matching_calls_on_all_subplans(self, setting):
        """With the full sub-plan universe (what an optimizer requests),
        GVM re-runs per sub-plan while the DP answers from its memo."""
        harness = Harness(setting["db"])
        evaluation = harness.evaluate(
            setting["queries"],
            setting["pool"],
            {"GS-nInd": make_gs_nind},
            max_subqueries=None,
        )
        gs = evaluation.report("GS-nInd").mean_vm_calls
        gvm = evaluation.report("GVM").mean_vm_calls
        assert gvm > gs


class TestMemoIntegration:
    def test_memo_coupled_close_to_full_dp(self, setting):
        db, pool = setting["db"], setting["pool"]
        query = setting["queries"][0]
        coupled = MemoCoupledEstimator(db, pool, DiffError(pool))
        full = make_gs_diff(db, pool)
        coupled_value = coupled.cardinality(query)
        full_value = full.cardinality(query)
        # Same order of magnitude: the memo restriction may lose a little.
        assert coupled_value == pytest.approx(full_value, rel=1.0) or (
            coupled_value > 0 and full_value > 0
        )

    def test_memo_subplans_subset_of_dp_memo(self, setting):
        query = setting["queries"][0]
        exploration = explore(query)
        estimator = make_gs_diff(setting["db"], setting["pool"])
        estimator.estimate(query)
        cached = estimator.algorithm.cached_results()
        for predicates in subplan_predicate_sets(exploration):
            # Every optimizer sub-plan is answerable from the DP memo for
            # free (Section 4's key observation).
            assert predicates in cached or not predicates
