"""End-to-end reproduction of the paper's Figures 1 and 2 narrative.

On the skewed mini TPC-H instance:

* a traditional optimizer (noSit) severely underestimates;
* ``SIT(total_price | lineitem ⋈ orders)`` fixes the first skew source;
* ``SIT(nation | orders ⋈ customer)`` fixes the second;
* getSelectivity with BOTH SITs combines the corrections (the Figure 2
  "intersection" decomposition that view matching cannot reach);
* GVM, restricted to single-plan-compatible SITs, cannot combine them.
"""

import pytest

from repro.estimators import make_gs_diff, make_nosit
from repro.core.gvm import GreedyViewMatching
from repro.core.predicates import Attribute
from repro.engine.executor import Executor
from repro.stats.builder import SITBuilder
from repro.stats.pool import SITPool
from repro.workload.tpch import generate_tpch, motivating_query


@pytest.fixture(scope="module")
def setting():
    db = generate_tpch()
    query = motivating_query(db)
    executor = Executor(db)
    true = executor.cardinality(query.predicates)
    joins = sorted(query.joins, key=str)
    join_lo = next(j for j in joins if "lineitem" in str(j))
    join_oc = next(j for j in joins if "customer" in str(j))
    builder = SITBuilder(db)
    base = []
    for table in db.schema.tables.values():
        for attribute in table.attributes:
            base.append(builder.build_base(attribute))
    sit_lo = builder.build(
        Attribute("orders", "total_price"), frozenset({join_lo})
    )
    sit_oc = builder.build(
        Attribute("customer", "nation"), frozenset({join_oc})
    )
    return dict(
        db=db, query=query, true=true, base=base, sit_lo=sit_lo, sit_oc=sit_oc
    )


def gs_error(setting, extra_sits):
    pool = SITPool(list(setting["base"]) + list(extra_sits))
    estimator = make_gs_diff(setting["db"], pool)
    return abs(estimator.cardinality(setting["query"]) - setting["true"])


class TestMotivatingExample:
    def test_sits_capture_the_skews(self, setting):
        # total_price over L⋈O is strongly reweighted; nation over O⋈C
        # moderately (busy customers are USA).
        assert setting["sit_lo"].diff > 0.5
        assert setting["sit_oc"].diff > 0.1

    def test_nosit_severely_underestimates(self, setting):
        pool = SITPool(list(setting["base"]))
        estimate = make_nosit(setting["db"], pool).cardinality(setting["query"])
        assert estimate < setting["true"] / 3

    def test_each_sit_alone_helps(self, setting):
        no_sits = gs_error(setting, [])
        with_lo = gs_error(setting, [setting["sit_lo"]])
        with_oc = gs_error(setting, [setting["sit_oc"]])
        assert with_lo < no_sits
        assert with_oc < no_sits

    def test_both_sits_beat_each_alone(self, setting):
        with_lo = gs_error(setting, [setting["sit_lo"]])
        with_oc = gs_error(setting, [setting["sit_oc"]])
        both = gs_error(setting, [setting["sit_lo"], setting["sit_oc"]])
        assert both < with_lo
        assert both < with_oc

    def test_both_sits_within_ten_percent(self, setting):
        both = gs_error(setting, [setting["sit_lo"], setting["sit_oc"]])
        assert both < 0.1 * setting["true"]

    def test_gvm_cannot_combine_the_sits(self, setting):
        """The two SITs are mutually exclusive for view matching: GVM's
        estimate with both available equals (at best) its estimate with
        one of them."""
        pool = SITPool(
            list(setting["base"]) + [setting["sit_lo"], setting["sit_oc"]]
        )
        gvm = GreedyViewMatching(pool)
        size = setting["db"].cross_product_size(setting["query"].tables)
        gvm_error = abs(
            gvm.estimate(setting["query"]).selectivity * size - setting["true"]
        )
        both = gs_error(setting, [setting["sit_lo"], setting["sit_oc"]])
        assert both < gvm_error / 2

    def test_gvm_uses_at_most_one_of_the_conflicting_sits(self, setting):
        pool = SITPool(
            list(setting["base"]) + [setting["sit_lo"], setting["sit_oc"]]
        )
        gvm = GreedyViewMatching(pool)
        assignment = gvm.estimate(setting["query"]).assignment
        conditioned = [s for s in assignment.values() if not s.is_base]
        assert len(conditioned) <= 1
