"""One end-to-end journey through every layer of the library.

SQL text -> canonical query -> SIT pool (advisor-selected) -> DP
estimation -> optimizer exploration -> costed plan -> physical execution
-> feedback.  If this test passes, every public seam composes.
"""

import pytest

from repro.core.errors import DiffError
from repro.estimators import make_gs_diff
from repro.engine.executor import Executor
from repro.optimizer.cost import CostModel
from repro.optimizer.execution import execute_plan
from repro.optimizer.explorer import explore
from repro.optimizer.integration import MemoCoupledEstimator
from repro.sql.binder import parse_query
from repro.stats.advisor import AdvisorConfig, SITAdvisor
from repro.stats.builder import SITBuilder
from repro.stats.feedback import FeedbackEstimator
from repro.stats.io import dumps_pool, loads_pool
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

SQL = (
    "SELECT * FROM sales, customer "
    "WHERE sales.customer_id = customer.customer_id "
    "AND customer.income BETWEEN 10 AND 80 "
    "AND sales.price <= 60"
)


@pytest.fixture(scope="module")
def pipeline():
    database = generate_snowflake(SnowflakeConfig(scale=0.1, seed=21))
    query = parse_query(SQL, database.schema)
    builder = SITBuilder(database)
    advisor = SITAdvisor(builder, AdvisorConfig(max_sits=6, max_joins=1))
    pool = advisor.build_pool([query])
    executor = Executor(database)
    return database, query, pool, executor


class TestFullPipeline:
    def test_sql_parses_to_expected_shape(self, pipeline):
        _, query, _, _ = pipeline
        assert query.join_count == 1
        assert query.filter_count == 2

    def test_estimation_close_to_truth(self, pipeline):
        database, query, pool, executor = pipeline
        estimator = make_gs_diff(database, pool)
        true = executor.cardinality(query.predicates)
        assert estimator.cardinality(query) == pytest.approx(true, rel=0.5)

    def test_pool_survives_serialization(self, pipeline):
        database, query, pool, _ = pipeline
        restored = loads_pool(dumps_pool(pool))
        original = make_gs_diff(database, pool).cardinality(query)
        roundtrip = make_gs_diff(database, restored).cardinality(query)
        assert roundtrip == pytest.approx(original)

    def test_plan_executes_to_exact_truth(self, pipeline):
        database, query, pool, executor = pipeline
        estimator = make_gs_diff(database, pool)
        exploration = explore(query)
        model = CostModel(
            database,
            lambda predicates: estimator.algorithm(predicates).selectivity,
        )
        plan = model.best_plan(exploration.memo, exploration.root)
        result = execute_plan(database, plan)
        assert result.row_count == executor.cardinality(query.predicates)

    def test_memo_coupled_agrees_with_dp_on_this_query(self, pipeline):
        database, query, pool, _ = pipeline
        coupled = MemoCoupledEstimator(database, pool, DiffError(pool))
        full = make_gs_diff(database, pool)
        assert coupled.cardinality(query) == pytest.approx(
            full.cardinality(query), rel=0.5
        )

    def test_feedback_makes_the_estimate_exact(self, pipeline):
        database, query, pool, executor = pipeline
        feedback = FeedbackEstimator(make_gs_diff(database, pool))
        feedback.observe(executor, query)
        assert feedback.cardinality(query) == executor.cardinality(
            query.predicates
        )
