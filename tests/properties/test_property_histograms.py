"""Property-based tests for histogram construction and operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.histograms.base import values_and_frequencies
from repro.histograms.equidepth import build_equidepth
from repro.histograms.equiwidth import build_equiwidth
from repro.histograms.maxdiff import build_maxdiff
from repro.histograms.operations import join_histograms, variation_distance
from repro.stats.diff import exact_diff

value_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(0, 300),
    elements=st.one_of(
        st.integers(-50, 50).map(float),
        st.just(float("nan")),
    ),
)

nonempty_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(1, 300),
    elements=st.integers(-50, 50).map(float),
)

BUILDERS = [build_maxdiff, build_equidepth, build_equiwidth]


@pytest.mark.parametrize("builder", BUILDERS)
class TestBuilderProperties:
    @given(values=value_arrays, buckets=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_mass_conservation(self, builder, values, buckets):
        histogram = builder(values, buckets)
        nulls = int(np.isnan(values).sum())
        assert histogram.null_count == nulls
        assert histogram.frequency == pytest.approx(values.size - nulls)
        assert histogram.bucket_count <= buckets

    @given(values=nonempty_arrays, buckets=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_full_domain_range_recovers_everything(self, builder, values, buckets):
        histogram = builder(values, buckets)
        count = histogram.estimate_range_count(values.min(), values.max())
        assert count == pytest.approx(values.size, rel=1e-6)

    @given(
        values=nonempty_arrays,
        buckets=st.integers(1, 40),
        low=st.integers(-60, 60),
        width=st.integers(0, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_estimates_bounded_and_monotone(
        self, builder, values, buckets, low, width
    ):
        histogram = builder(values, buckets)
        narrow = histogram.estimate_range_count(low, low + width)
        wide = histogram.estimate_range_count(low - 5, low + width + 5)
        assert 0.0 <= narrow <= values.size * (1 + 1e-9)
        assert narrow <= wide + 1e-9

    @given(values=nonempty_arrays)
    @settings(max_examples=30, deadline=None)
    def test_exact_when_buckets_exceed_distincts(self, builder, values):
        distinct, counts, _ = values_and_frequencies(values)
        histogram = builder(values, max_buckets=len(distinct) + 1)
        for value, count in zip(distinct, counts):
            assert histogram.estimate_equality_count(value) == pytest.approx(
                count
            )


class TestJoinProperties:
    @given(left=nonempty_arrays, right=nonempty_arrays, buckets=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_join_commutative_in_pair_count(self, left, right, buckets):
        hl = build_maxdiff(left, buckets)
        hr = build_maxdiff(right, buckets)
        forward = join_histograms(hl, hr)
        backward = join_histograms(hr, hl)
        assert forward.pair_count == pytest.approx(
            backward.pair_count, rel=1e-6, abs=1e-9
        )

    @given(values=nonempty_arrays)
    @settings(max_examples=30, deadline=None)
    def test_exact_histograms_give_exact_joins(self, values):
        """With one bucket per distinct value the join estimate is exact."""
        other = values + 0.0
        h = build_maxdiff(values, max_buckets=10_000)
        result = join_histograms(h, h)
        distinct, counts, _ = values_and_frequencies(values)
        true_pairs = float((counts.astype(np.int64) ** 2).sum())
        assert result.pair_count == pytest.approx(true_pairs, rel=1e-6)

    @given(left=nonempty_arrays, right=nonempty_arrays)
    @settings(max_examples=40, deadline=None)
    def test_selectivity_in_unit_interval(self, left, right):
        result = join_histograms(
            build_maxdiff(left, 20), build_maxdiff(right, 20)
        )
        assert 0.0 <= result.selectivity <= 1.0


class TestVariationDistanceProperties:
    @given(values=nonempty_arrays)
    @settings(max_examples=30, deadline=None)
    def test_self_distance_zero(self, values):
        histogram = build_maxdiff(values, 10_000)
        assert variation_distance(histogram, histogram) == pytest.approx(
            0.0, abs=1e-9
        )

    @given(left=nonempty_arrays, right=nonempty_arrays)
    @settings(max_examples=40, deadline=None)
    def test_bounds_and_symmetry(self, left, right):
        hl = build_maxdiff(left, 30)
        hr = build_maxdiff(right, 30)
        forward = variation_distance(hl, hr)
        assert -1e-9 <= forward <= 1.0 + 1e-9
        assert forward == pytest.approx(variation_distance(hr, hl), abs=1e-9)

    @given(left=nonempty_arrays, right=nonempty_arrays)
    @settings(max_examples=30, deadline=None)
    def test_exact_histograms_match_exact_diff(self, left, right):
        hl = build_maxdiff(left, 10_000)
        hr = build_maxdiff(right, 10_000)
        assert variation_distance(hl, hr) == pytest.approx(
            exact_diff(left, right), abs=1e-6
        )
