"""Property-based tests for the conditional-selectivity core.

These validate the paper's exact identities (Properties 1 and 2, Lemma 2)
against the executor on randomly generated micro-databases, and structural
invariants of the decomposition machinery.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decompose import (
    count_decompositions,
    enumerate_decompositions,
    lemma1_bounds,
    simplify_factor,
    standard_decomposition,
)
from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    connected_components,
)
from repro.engine.database import Database, Table
from repro.engine.executor import Executor
from repro.engine.schema import Schema, TableSchema


# ----------------------------------------------------------------------
# Random micro-databases and predicate sets
# ----------------------------------------------------------------------
@st.composite
def micro_database(draw):
    """Three tiny tables R(x,a), S(y,b), T(z,c) with values in 0..5."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    schema = Schema()
    schema.add_table(TableSchema("R", ("x", "a")))
    schema.add_table(TableSchema("S", ("y", "b")))
    schema.add_table(TableSchema("T", ("z", "c")))
    db = Database(schema)
    for name, columns in (("R", ("x", "a")), ("S", ("y", "b")), ("T", ("z", "c"))):
        rows = int(rng.integers(1, 12))
        data = {}
        for column in columns:
            values = rng.integers(0, 6, rows).astype(float)
            nulls = rng.random(rows) < 0.1
            values[nulls] = np.nan
            data[column] = values
        db.add_table(Table(schema.table(name), data))
    return db


PREDICATE_CHOICES = [
    JoinPredicate(Attribute("R", "x"), Attribute("S", "y")),
    JoinPredicate(Attribute("S", "b"), Attribute("T", "z")),
    FilterPredicate(Attribute("R", "a"), 1, 4),
    FilterPredicate(Attribute("S", "b"), 0, 2),
    FilterPredicate(Attribute("T", "c"), 2, 5),
]

predicate_sets = st.sets(
    st.sampled_from(PREDICATE_CHOICES), min_size=1, max_size=5
).map(frozenset)


class TestExactIdentities:
    @given(db=micro_database(), predicates=predicate_sets, split=st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_property1_atomic_decomposition(self, db, predicates, split):
        """Sel(P,Q) = Sel(P|Q) * Sel(Q) holds exactly, always."""
        executor = Executor(db)
        items = sorted(predicates, key=str)
        cut = split % (len(items) + 1)
        p = frozenset(items[:cut])
        q = frozenset(items[cut:])
        tables = frozenset(("R", "S", "T"))
        left = executor.selectivity(p | q, tables)
        q_sel = executor.selectivity(q, tables)
        right = executor.conditional_selectivity(p, q, tables) * q_sel
        if q_sel > 0:
            assert left == pytest.approx(right, rel=1e-12, abs=1e-15)
        else:
            assert left == 0.0

    @given(db=micro_database(), predicates=predicate_sets)
    @settings(max_examples=60, deadline=None)
    def test_property2_separable_decomposition(self, db, predicates):
        """Sel(P) over components multiplies exactly."""
        executor = Executor(db)
        product = 1.0
        for component in connected_components(predicates):
            product *= executor.selectivity(component)
        assert executor.selectivity(predicates) == pytest.approx(
            product, rel=1e-12, abs=1e-15
        )

    @given(db=micro_database(), predicates=predicate_sets)
    @settings(max_examples=40, deadline=None)
    def test_selectivity_in_unit_interval(self, db, predicates):
        executor = Executor(db)
        assert 0.0 <= executor.selectivity(predicates) <= 1.0

    @given(db=micro_database(), predicates=predicate_sets)
    @settings(max_examples=40, deadline=None)
    def test_adding_predicates_never_increases_cardinality(self, db, predicates):
        executor = Executor(db)
        items = sorted(predicates, key=str)
        tables = frozenset(("R", "S", "T"))
        previous = executor.cardinality(frozenset(), tables)
        for stop in range(1, len(items) + 1):
            current = executor.cardinality(frozenset(items[:stop]), tables)
            assert current <= previous
            previous = current


class TestDecompositionStructure:
    @given(predicates=predicate_sets)
    @settings(max_examples=30, deadline=None)
    def test_standard_decomposition_partitions(self, predicates):
        components = standard_decomposition(predicates)
        union = frozenset().union(*components) if components else frozenset()
        assert union == predicates
        total = sum(len(component) for component in components)
        assert total == len(predicates)

    @given(predicates=predicate_sets)
    @settings(max_examples=30, deadline=None)
    def test_standard_decomposition_components_non_separable(self, predicates):
        for component in standard_decomposition(predicates):
            assert len(connected_components(component)) == 1

    @given(predicates=st.sets(st.sampled_from(PREDICATE_CHOICES), min_size=1, max_size=4).map(frozenset))
    @settings(max_examples=20, deadline=None)
    def test_enumeration_count_matches_recurrence(self, predicates):
        enumerated = sum(1 for _ in enumerate_decompositions(predicates))
        assert enumerated == count_decompositions(len(predicates))

    @given(predicates=st.sets(st.sampled_from(PREDICATE_CHOICES), min_size=1, max_size=4).map(frozenset))
    @settings(max_examples=20, deadline=None)
    def test_simplified_factors_non_separable_and_partition(self, predicates):
        for decomposition in enumerate_decompositions(
            predicates, simplify_separable=True
        ):
            covered = set()
            for factor in decomposition.factors:
                assert len(connected_components(factor.p | factor.q)) == 1
                covered |= factor.p
            assert covered == set(predicates)

    @given(n=st.integers(1, 9))
    def test_lemma1_bounds_hold(self, n):
        lower, upper = lemma1_bounds(n)
        assert lower <= count_decompositions(n) <= upper

    @given(predicates=predicate_sets, split=st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_simplify_factor_covers_p(self, predicates, split):
        items = sorted(predicates, key=str)
        cut = split % (len(items) + 1)
        p = frozenset(items[:cut])
        q = frozenset(items[cut:])
        if not p:
            return
        factors = simplify_factor(p, q)
        covered = frozenset().union(*(f.p for f in factors))
        assert covered == p
        for factor in factors:
            assert factor.q <= q
