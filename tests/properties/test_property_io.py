"""Property-based round-trip tests for the v2 catalog-document format.

``save → load → save`` must be the identity on the serialized form (the
writer is canonical: expressions, table versions and source versions are
sorted), and the loaded objects must preserve everything the paper's
estimator reads: histograms bucket-for-bucket, ``diff_H``, generating
expressions with ±inf filter bounds, and the catalog's provenance
metadata — including Chao1-scaled SITs built from samples.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.histograms.base import Bucket, Histogram
from repro.stats.io import (
    CatalogDocument,
    dumps_document,
    loads_document,
)
from repro.stats.sampling import SamplingSITBuilder
from repro.stats.sit import SIT

TABLES = ("R", "S", "T")
COLUMNS = ("a", "b", "c")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def attributes(draw, exclude_table=None):
    table = draw(
        st.sampled_from([t for t in TABLES if t != exclude_table])
    )
    return Attribute(table, draw(st.sampled_from(COLUMNS)))


BOUNDS = st.one_of(
    st.integers(-1000, 1000).map(float),
    st.sampled_from([math.inf, -math.inf]),
)


@st.composite
def filter_predicates(draw):
    first, second = draw(BOUNDS), draw(BOUNDS)
    low, high = min(first, second), max(first, second)
    return FilterPredicate(draw(attributes()), low, high)


@st.composite
def join_predicates(draw):
    left = draw(attributes())
    right = draw(attributes(exclude_table=left.table))
    return JoinPredicate(left, right)


@st.composite
def expressions(draw):
    joins = draw(st.lists(join_predicates(), max_size=2))
    filters = draw(st.lists(filter_predicates(), max_size=2))
    return frozenset(joins + filters)


@st.composite
def histograms(draw):
    count = draw(st.integers(0, 6))
    edges = sorted(
        draw(
            st.lists(
                st.integers(0, 10_000),
                min_size=2 * count,
                max_size=2 * count,
                unique=True,
            )
        )
    )
    buckets = []
    for i in range(count):
        frequency = float(draw(st.integers(0, 10_000)))
        distinct = float(draw(st.integers(0, int(frequency) or 1)))
        buckets.append(
            Bucket(
                float(edges[2 * i]), float(edges[2 * i + 1]), frequency, distinct
            )
        )
    null_count = float(draw(st.integers(0, 100)))
    return Histogram(buckets, null_count=null_count)


@st.composite
def sits(draw):
    return SIT(
        draw(attributes()),
        draw(expressions()),
        draw(histograms()),
        diff=draw(
            st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
        ),
    )


@st.composite
def sit_metas(draw):
    return {
        "built_at": draw(
            st.floats(0.0, 2e9, allow_nan=False, allow_infinity=False)
        ),
        "build_seconds": draw(
            st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)
        ),
        "build_method": draw(st.sampled_from(["full", "sampled"])),
        "source_versions": draw(
            st.dictionaries(
                st.sampled_from(TABLES), st.integers(0, 50), max_size=3
            )
        ),
    }


@st.composite
def documents(draw):
    sit_list = draw(st.lists(sits(), max_size=4))
    metas = [draw(sit_metas()) for _ in sit_list]
    return CatalogDocument(
        sits=sit_list,
        sit_meta=metas,
        table_versions=draw(
            st.dictionaries(
                st.sampled_from(TABLES), st.integers(0, 50), max_size=3
            )
        ),
        catalog_version=draw(st.integers(0, 1000)),
    )


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
class TestDocumentRoundTrip:
    @settings(max_examples=75, deadline=None)
    @given(documents())
    def test_serialized_form_is_a_fixed_point(self, document):
        """save → load → save returns byte-identical JSON."""
        first = dumps_document(document)
        second = dumps_document(loads_document(first))
        assert first == second

    @settings(max_examples=75, deadline=None)
    @given(documents())
    def test_everything_the_estimator_reads_survives(self, document):
        restored = loads_document(dumps_document(document))
        assert restored.catalog_version == document.catalog_version
        assert restored.table_versions == document.table_versions
        assert len(restored.sits) == len(document.sits)
        for original, loaded in zip(document.sits, restored.sits):
            assert loaded.attribute == original.attribute
            assert loaded.expression == original.expression
            assert loaded.diff == original.diff
            assert loaded.histogram.buckets == original.histogram.buckets
            assert (
                loaded.histogram.null_count == original.histogram.null_count
            )
        for original, loaded in zip(document.sit_meta, restored.sit_meta):
            assert loaded == original

    @settings(max_examples=50, deadline=None)
    @given(sits(), sit_metas())
    def test_metadata_order_is_canonical(self, sit, meta):
        """Source-version key order never changes the serialized form."""
        reordered = {
            **meta,
            "source_versions": dict(
                reversed(list(meta["source_versions"].items()))
            ),
        }
        assert dumps_document(
            CatalogDocument(sits=[sit], sit_meta=[meta])
        ) == dumps_document(
            CatalogDocument(sits=[sit], sit_meta=[reordered])
        )


class TestSampledSITRoundTrip:
    def test_chao1_scaled_sit_survives(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        """A SIT built from a sample (Chao1-scaled totals) round-trips
        exactly, build method included."""
        builder = SamplingSITBuilder(
            two_table_db, sample_fraction=0.3, min_sample_rows=50
        )
        sit = builder.build(
            two_table_attrs["Sb"], frozenset({two_table_join})
        )
        meta = {"build_method": "sampled", "source_versions": {"R": 1, "S": 2}}
        restored = loads_document(
            dumps_document(CatalogDocument(sits=[sit], sit_meta=[meta]))
        )
        loaded = restored.sits[0]
        assert loaded.histogram.total == sit.histogram.total
        assert loaded.histogram.buckets == sit.histogram.buckets
        assert loaded.diff == sit.diff
        assert restored.sit_meta[0]["build_method"] == "sampled"
        assert restored.sit_meta[0]["source_versions"] == {"R": 1, "S": 2}
