"""Property-based tests for predicate canonicalization and set algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    attributes_of,
    connected_components,
    tables_of,
)

TABLES = ("R", "S", "T", "U")
COLUMNS = ("a", "b", "c")

attributes = st.builds(
    Attribute, st.sampled_from(TABLES), st.sampled_from(COLUMNS)
)


@st.composite
def filter_predicates(draw):
    attribute = draw(attributes)
    low = draw(st.integers(-50, 50))
    width = draw(st.integers(0, 40))
    return FilterPredicate(attribute, low, low + width)


@st.composite
def join_predicates(draw):
    left = draw(attributes)
    right = draw(
        attributes.filter(lambda a: a.table != left.table)  # noqa: B023
    )
    return JoinPredicate(left, right)


predicates = st.one_of(filter_predicates(), join_predicates())
predicate_sets = st.sets(predicates, min_size=0, max_size=6).map(frozenset)


class TestCanonicalization:
    @given(join=join_predicates())
    def test_join_operand_order_canonical(self, join):
        assert join.left < join.right

    @given(join=join_predicates())
    def test_join_swap_invariance(self, join):
        swapped = JoinPredicate(join.right, join.left)
        assert swapped == join
        assert hash(swapped) == hash(join)

    @given(predicate=predicates)
    def test_hash_stable(self, predicate):
        assert hash(predicate) == hash(predicate)

    @given(predicate=predicates)
    def test_tables_match_attributes(self, predicate):
        assert {a.table for a in predicate.attributes} == set(predicate.tables)


class TestSetAlgebra:
    @given(ps=predicate_sets)
    def test_tables_of_is_union(self, ps):
        expected = set()
        for predicate in ps:
            expected |= set(predicate.tables)
        assert tables_of(ps) == frozenset(expected)

    @given(ps=predicate_sets)
    def test_attributes_of_is_union(self, ps):
        expected = set()
        for predicate in ps:
            expected |= set(predicate.attributes)
        assert attributes_of(ps) == frozenset(expected)

    @given(ps=predicate_sets)
    @settings(max_examples=60)
    def test_components_partition(self, ps):
        components = connected_components(ps)
        union = set()
        total = 0
        for component in components:
            assert component  # non-empty
            union |= set(component)
            total += len(component)
        assert union == set(ps)
        assert total == len(ps)

    @given(ps=predicate_sets)
    @settings(max_examples=60)
    def test_components_table_disjoint(self, ps):
        components = connected_components(ps)
        for i, first in enumerate(components):
            for second in components[i + 1 :]:
                assert not (tables_of(first) & tables_of(second))

    @given(ps=predicate_sets)
    @settings(max_examples=60)
    def test_components_are_connected(self, ps):
        for component in connected_components(ps):
            assert len(connected_components(component)) == 1

    @given(ps=predicate_sets)
    @settings(max_examples=40)
    def test_components_order_insensitive(self, ps):
        forward = connected_components(sorted(ps, key=str))
        backward = connected_components(sorted(ps, key=str, reverse=True))
        assert forward == backward
