"""Property-based tests over the full estimation pipeline.

Random micro-databases, random predicate sets and random SIT pools drive
the invariants the framework guarantees:

* estimates are valid selectivities in [0, 1];
* errors are non-negative and monotone in pool richness (more statistics
  never increase the *ranked* error of the chosen decomposition);
* the DP is deterministic and its memo is self-consistent;
* GVM and getSelectivity agree with exact evaluation when the predicate
  set is fully covered by exact statistics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DiffError, NIndError
from repro.core.get_selectivity import GetSelectivity
from repro.core.gvm import GreedyViewMatching
from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    attributes_of,
)
from repro.engine.database import Database, Table
from repro.engine.executor import Executor
from repro.engine.schema import Schema, TableSchema
from repro.stats.builder import SITBuilder
from repro.stats.pool import SITPool, connected_join_subsets


@st.composite
def database_and_predicates(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    schema = Schema()
    schema.add_table(TableSchema("R", ("x", "a")))
    schema.add_table(TableSchema("S", ("y", "b")))
    schema.add_table(TableSchema("T", ("z", "c")))
    db = Database(schema)
    for name, columns in (("R", ("x", "a")), ("S", ("y", "b")), ("T", ("z", "c"))):
        rows = int(rng.integers(5, 60))
        data = {
            column: rng.integers(0, 8, rows).astype(float) for column in columns
        }
        db.add_table(Table(schema.table(name), data))

    choices = [
        JoinPredicate(Attribute("R", "x"), Attribute("S", "y")),
        JoinPredicate(Attribute("S", "b"), Attribute("T", "z")),
        FilterPredicate(Attribute("R", "a"), 1, 5),
        FilterPredicate(Attribute("S", "b"), 0, 3),
        FilterPredicate(Attribute("T", "c"), 2, 7),
    ]
    predicates = frozenset(
        draw(st.sets(st.sampled_from(choices), min_size=1, max_size=5))
    )
    sit_join_budget = draw(st.integers(0, 2))
    return db, predicates, sit_join_budget


def build_pool(db, predicates, join_budget):
    builder = SITBuilder(db)
    pool = SITPool()
    attributes = sorted(attributes_of(predicates))
    for attribute in attributes:
        pool.add(builder.build_base(attribute))
    joins = frozenset(p for p in predicates if p.is_join)
    for expression in connected_join_subsets(joins, join_budget):
        from repro.core.predicates import tables_of

        expression_tables = tables_of(expression)
        matching = [a for a in attributes if a.table in expression_tables]
        for sit in builder.build_many(expression, matching):
            pool.add(sit)
    return pool


class TestEstimationInvariants:
    @given(setting=database_and_predicates())
    @settings(max_examples=30, deadline=None)
    def test_selectivity_in_unit_interval(self, setting):
        db, predicates, budget = setting
        pool = build_pool(db, predicates, budget)
        for error_function in (NIndError(), DiffError(pool)):
            algorithm = GetSelectivity(pool, error_function)
            result = algorithm(predicates)
            assert 0.0 <= result.selectivity <= 1.0 + 1e-9
            assert result.error >= 0.0
            assert result.coverage >= 0.0

    @given(setting=database_and_predicates())
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, setting):
        db, predicates, budget = setting
        pool = build_pool(db, predicates, budget)
        first = GetSelectivity(pool, NIndError())(predicates)
        second = GetSelectivity(pool, NIndError())(predicates)
        assert first.selectivity == second.selectivity
        assert first.error == second.error

    @given(setting=database_and_predicates())
    @settings(max_examples=25, deadline=None)
    def test_memo_self_consistent(self, setting):
        """Re-querying any memoized subset returns the identical result."""
        db, predicates, budget = setting
        pool = build_pool(db, predicates, budget)
        algorithm = GetSelectivity(pool, NIndError())
        algorithm(predicates)
        for subset, result in list(algorithm.cached_results().items()):
            assert algorithm(subset) is result

    @given(setting=database_and_predicates())
    @settings(max_examples=25, deadline=None)
    def test_richer_pools_never_increase_ranked_error(self, setting):
        db, predicates, _ = setting
        poor = build_pool(db, predicates, 0)
        rich = build_pool(db, predicates, 2)
        poor_error = GetSelectivity(poor, NIndError())(predicates).error
        rich_error = GetSelectivity(rich, NIndError())(predicates).error
        assert rich_error <= poor_error + 1e-9

    @given(setting=database_and_predicates())
    @settings(max_examples=25, deadline=None)
    def test_gvm_selectivity_valid(self, setting):
        db, predicates, budget = setting
        pool = build_pool(db, predicates, budget)
        from repro.engine.expressions import Query

        gvm = GreedyViewMatching(pool)
        selectivity = gvm.estimate(Query(predicates)).selectivity
        assert 0.0 <= selectivity <= 1.0 + 1e-9

    @given(setting=database_and_predicates())
    @settings(max_examples=20, deadline=None)
    def test_single_filter_estimates_are_exact(self, setting):
        """With exact (small-domain) histograms, a one-filter query is
        estimated exactly by every technique."""
        db, predicates, budget = setting
        filters = [p for p in predicates if not p.is_join]
        if not filters:
            return
        predicate = filters[0]
        single = frozenset({predicate})
        pool = build_pool(db, single, 0)
        truth = Executor(db).selectivity(single)
        result = GetSelectivity(pool, NIndError())(single)
        assert result.selectivity == pytest.approx(truth, abs=1e-9)
