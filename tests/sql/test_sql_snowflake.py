"""SQL front-end exercised against the full snowflake schema."""

import pytest

from repro.engine.executor import Executor
from repro.sql.binder import BindingError, parse_query
from repro.workload.snowflake import snowflake_schema


@pytest.fixture(scope="module")
def schema():
    return snowflake_schema()


class TestSnowflakeSQL:
    def test_three_way_join(self, schema):
        query = parse_query(
            "SELECT * FROM sales, customer, nation "
            "WHERE sales.customer_id = customer.customer_id "
            "AND customer.nation_id = nation.nation_id "
            "AND nation.population >= 100",
            schema,
        )
        assert query.join_count == 2
        assert query.filter_count == 1
        assert query.tables == frozenset(("sales", "customer", "nation"))

    def test_unqualified_columns_resolve_across_tables(self, schema):
        query = parse_query(
            "SELECT price FROM sales, product "
            "WHERE sales.product_id = product.product_id "
            "AND list_price <= 50 AND quantity >= 2",
            schema,
        )
        filters = {p.attribute.table for p in query.filters}
        assert filters == {"product", "sales"}

    def test_ambiguity_on_shared_column_names(self, schema):
        # customer_id exists in both sales and customer.
        with pytest.raises(BindingError):
            parse_query(
                "SELECT * FROM sales, customer WHERE customer_id = 3", schema
            )

    def test_full_snowflake_seven_joins(self, schema):
        query = parse_query(
            "SELECT * FROM sales, customer, product, store, promotion, "
            "nation, category, region "
            "WHERE sales.customer_id = customer.customer_id "
            "AND sales.product_id = product.product_id "
            "AND sales.store_id = store.store_id "
            "AND sales.promotion_id = promotion.promotion_id "
            "AND customer.nation_id = nation.nation_id "
            "AND product.category_id = category.category_id "
            "AND nation.region_id = region.region_id",
            schema,
        )
        assert query.join_count == 7
        assert len(query.tables) == 8

    def test_executes_against_generated_data(self, tiny_snowflake):
        query = parse_query(
            "SELECT * FROM sales, store "
            "WHERE sales.store_id = store.store_id AND store.staff >= 5",
            tiny_snowflake.schema,
        )
        assert Executor(tiny_snowflake).cardinality(query.predicates) >= 0
