"""Unit tests for SQL name resolution and end-to-end SQL estimation."""

import math

import pytest

from repro.estimators import make_gs_diff
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.executor import Executor
from repro.sql.binder import BindingError, bind, parse_query
from repro.sql.parser import parse_select


@pytest.fixture()
def schema(two_table_db):
    return two_table_db.schema


class TestBinding:
    def test_simple_filter(self, schema):
        query = parse_query("SELECT * FROM R WHERE a BETWEEN 0 AND 10", schema)
        (predicate,) = query.predicates
        assert predicate == FilterPredicate(Attribute("R", "a"), 0, 10)

    def test_join(self, schema):
        query = parse_query("SELECT * FROM R, S WHERE R.x = S.y", schema)
        (predicate,) = query.predicates
        assert predicate == JoinPredicate(Attribute("R", "x"), Attribute("S", "y"))

    def test_unqualified_column_resolution(self, schema):
        query = parse_query("SELECT * FROM R, S WHERE b <= 50", schema)
        (predicate,) = query.predicates
        assert predicate.attribute == Attribute("S", "b")

    def test_ambiguous_column_rejected(self, schema):
        # both R and S... R has x, a; S has y, b: no shared names, so use a
        # qualified-but-wrong alias to trigger the other error paths.
        with pytest.raises(BindingError):
            parse_query("SELECT * FROM R WHERE S.b = 1", schema)

    def test_unknown_table(self, schema):
        with pytest.raises(BindingError):
            parse_query("SELECT * FROM missing", schema)

    def test_unknown_column(self, schema):
        with pytest.raises(BindingError):
            parse_query("SELECT * FROM R WHERE nope = 1", schema)

    def test_alias_binding(self, schema):
        query = parse_query(
            "SELECT * FROM R AS r1, S s1 WHERE r1.x = s1.y AND r1.a < 5",
            schema,
        )
        assert query.join_count == 1
        assert query.filter_count == 1

    def test_self_join_rejected(self, schema):
        with pytest.raises(BindingError):
            parse_query("SELECT * FROM R r1, R r2 WHERE r1.x = r2.x", schema)

    def test_duplicate_alias_rejected(self, schema):
        with pytest.raises(BindingError):
            parse_query("SELECT * FROM R a, S a", schema)

    def test_tables_without_predicates_kept(self, schema):
        query = parse_query("SELECT * FROM R, S", schema)
        assert query.tables == frozenset(("R", "S"))

    def test_projection_resolved(self, schema):
        bound = bind(parse_select("SELECT a, S.b FROM R, S"), schema)
        assert bound.projection == (
            Attribute("R", "a"),
            Attribute("S", "b"),
        )


class TestRangeNormalization:
    def resolve(self, schema, condition):
        query = parse_query(f"SELECT * FROM R WHERE {condition}", schema)
        (predicate,) = query.predicates
        return predicate

    def test_equality(self, schema):
        predicate = self.resolve(schema, "a = 4")
        assert (predicate.low, predicate.high) == (4, 4)

    def test_less_than_is_exclusive(self, schema):
        predicate = self.resolve(schema, "a < 4")
        assert predicate.high < 4
        assert predicate.high == pytest.approx(4)

    def test_greater_equal(self, schema):
        predicate = self.resolve(schema, "a >= 4")
        assert predicate.low == 4
        assert predicate.high == math.inf

    def test_conjoined_ranges_merged(self, schema):
        predicate = self.resolve(schema, "a >= 2 AND a <= 9")
        assert (predicate.low, predicate.high) == (2, 9)

    def test_contradictory_ranges_kept_unsatisfiable(self, schema):
        query = parse_query(
            "SELECT * FROM R WHERE a <= 2 AND a >= 9", schema
        )
        assert len(query.predicates) == 2

    def test_single_empty_range_rejected(self, schema):
        with pytest.raises(BindingError):
            parse_query("SELECT * FROM R WHERE a BETWEEN 9 AND 2", schema)


class TestEndToEndSQL:
    def test_sql_matches_manual_query(
        self, two_table_db, two_table_pool, two_table_join, two_table_attrs
    ):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        sql = "SELECT * FROM R, S WHERE R.x = S.y AND R.a BETWEEN 0 AND 20"
        from repro.engine.expressions import Query

        manual = Query.of(
            two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
        )
        assert estimator.cardinality_sql(sql) == pytest.approx(
            estimator.cardinality(manual)
        )

    def test_sql_estimation_close_to_truth(self, two_table_db, two_table_pool):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        sql = "SELECT * FROM R, S WHERE R.x = S.y AND R.a <= 20"
        query = parse_query(sql, two_table_db.schema)
        true = Executor(two_table_db).cardinality(query.predicates)
        assert estimator.cardinality_sql(sql) == pytest.approx(true, rel=0.25)

    def test_unsatisfiable_sql_estimates_near_zero(
        self, two_table_db, two_table_pool
    ):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        sql = "SELECT * FROM R WHERE a <= 2 AND a >= 90"
        query = parse_query(sql, two_table_db.schema)
        assert Executor(two_table_db).cardinality(query.predicates) == 0
        assert estimator.cardinality_sql(sql) < 1.0
