"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql.lexer import SQLSyntaxError, TokenType, tokenize


def types(source):
    return [t.type for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("orders o_id _x a1")
        assert all(t.type is TokenType.IDENTIFIER for t in tokens[:-1])

    def test_qualified_name(self):
        assert types("a.b") == [
            TokenType.IDENTIFIER,
            TokenType.DOT,
            TokenType.IDENTIFIER,
            TokenType.END,
        ]

    def test_numbers(self):
        assert texts("1 2.5 1e3 3.2E-2 -7") == ["1", "2.5", "1e3", "3.2E-2", "-7"]
        assert all(
            t.type is TokenType.NUMBER for t in tokenize("1 2.5 1e3")[:-1]
        )

    def test_operators(self):
        assert texts("= < <= > >= <>") == ["=", "<", "<=", ">", ">=", "<>"]
        assert all(
            t.type is TokenType.OPERATOR for t in tokenize("= < <=")[:-1]
        )

    def test_punctuation(self):
        assert types("(*, )") == [
            TokenType.LPAREN,
            TokenType.STAR,
            TokenType.COMMA,
            TokenType.RPAREN,
            TokenType.END,
        ]

    def test_positions(self):
        tokens = tokenize("a  =  5")
        assert [t.position for t in tokens[:-1]] == [0, 3, 6]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.END

    def test_unknown_character(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("a ; b")
        assert excinfo.value.position == 2

    def test_bad_operator(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a =< b")

    def test_whitespace_insensitive(self):
        assert texts("a=5") == texts("a  =   5")
