"""Unit tests for the SQL parser."""

import pytest

from repro.sql.lexer import SQLSyntaxError
from repro.sql.parser import (
    BetweenPredicate,
    Comparison,
    JoinComparison,
    parse_select,
)


class TestProjection:
    def test_star(self):
        statement = parse_select("SELECT * FROM r")
        assert statement.projection is None

    def test_column_list(self):
        statement = parse_select("SELECT r.a, b FROM r")
        assert len(statement.projection) == 2
        assert statement.projection[0].table == "r"
        assert statement.projection[1].table is None


class TestTables:
    def test_multiple_tables(self):
        statement = parse_select("SELECT * FROM r, s, t")
        assert [t.name for t in statement.tables] == ["r", "s", "t"]

    def test_alias_with_as(self):
        statement = parse_select("SELECT * FROM orders AS o")
        assert statement.tables[0].binding == "o"

    def test_alias_without_as(self):
        statement = parse_select("SELECT * FROM orders o")
        assert statement.tables[0].alias == "o"

    def test_missing_from(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT *")


class TestPredicates:
    def test_no_where(self):
        assert parse_select("SELECT * FROM r").predicates == ()

    def test_comparison(self):
        (pred,) = parse_select("SELECT * FROM r WHERE a < 5").predicates
        assert isinstance(pred, Comparison)
        assert pred.operator == "<"
        assert pred.value == 5.0

    def test_literal_on_left_is_mirrored(self):
        (pred,) = parse_select("SELECT * FROM r WHERE 5 < a").predicates
        assert isinstance(pred, Comparison)
        assert pred.operator == ">"
        assert pred.column.column == "a"

    def test_between(self):
        (pred,) = parse_select(
            "SELECT * FROM r WHERE a BETWEEN 1 AND 10"
        ).predicates
        assert isinstance(pred, BetweenPredicate)
        assert (pred.low, pred.high) == (1.0, 10.0)

    def test_join(self):
        (pred,) = parse_select(
            "SELECT * FROM r, s WHERE r.x = s.y"
        ).predicates
        assert isinstance(pred, JoinComparison)

    def test_conjunction(self):
        statement = parse_select(
            "SELECT * FROM r, s WHERE r.x = s.y AND r.a >= 3 AND s.b BETWEEN 0 AND 2"
        )
        assert len(statement.predicates) == 3

    def test_between_binds_tighter_than_and(self):
        statement = parse_select(
            "SELECT * FROM r WHERE a BETWEEN 1 AND 2 AND b = 3"
        )
        assert len(statement.predicates) == 2

    def test_non_equi_join_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM r, s WHERE r.x < s.y")

    def test_inequality_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM r WHERE a <> 5")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM r WHERE a = 1 ORDER")

    def test_float_and_scientific_literals(self):
        (pred,) = parse_select("SELECT * FROM r WHERE a <= 1.5e2").predicates
        assert pred.value == 150.0
