"""The per-snapshot circuit breaker: thresholds, windows, isolation."""

from __future__ import annotations

import pytest

from repro.resilience.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


class TestTripping:
    def test_trips_at_threshold_within_window(self, clock):
        breaker = CircuitBreaker(threshold=3, window_s=30.0, clock=clock)
        assert breaker.record_fault(1) is False
        assert breaker.record_fault(1) is False
        assert breaker.record_fault(1) is True
        assert breaker.is_tripped(1)
        assert breaker.trip_count == 1

    def test_faults_outside_window_age_out(self, clock):
        breaker = CircuitBreaker(threshold=3, window_s=10.0, clock=clock)
        breaker.record_fault(1)
        breaker.record_fault(1)
        clock.advance(11.0)  # both fall out of the window
        assert breaker.record_fault(1) is False
        assert not breaker.is_tripped(1)

    def test_versions_are_isolated_failure_domains(self, clock):
        breaker = CircuitBreaker(threshold=2, window_s=30.0, clock=clock)
        breaker.record_fault(1)
        breaker.record_fault(2)
        assert not breaker.is_tripped(1)
        assert not breaker.is_tripped(2)
        assert breaker.record_fault(2) is True
        assert breaker.is_tripped(2)
        assert not breaker.is_tripped(1)

    def test_tripped_version_stops_counting(self, clock):
        breaker = CircuitBreaker(threshold=2, window_s=30.0, clock=clock)
        breaker.record_fault(1)
        assert breaker.record_fault(1) is True
        # further faults on a tripped version never "re-trip"
        assert breaker.record_fault(1) is False
        assert breaker.trip_count == 1

    def test_threshold_one_trips_immediately(self, clock):
        breaker = CircuitBreaker(threshold=1, window_s=30.0, clock=clock)
        assert breaker.record_fault(7) is True

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestResetAndObservability:
    def test_reset_one_version(self, clock):
        breaker = CircuitBreaker(threshold=1, window_s=30.0, clock=clock)
        breaker.record_fault(1)
        breaker.record_fault(2)
        breaker.reset(1)
        assert not breaker.is_tripped(1)
        assert breaker.is_tripped(2)

    def test_reset_everything(self, clock):
        breaker = CircuitBreaker(threshold=1, window_s=30.0, clock=clock)
        breaker.record_fault(1)
        breaker.reset()
        assert not breaker.is_tripped(1)

    def test_as_dict(self, clock):
        breaker = CircuitBreaker(threshold=1, window_s=30.0, clock=clock)
        assert breaker.as_dict() == {}
        breaker.record_fault(4)
        assert breaker.as_dict() == {
            "breaker_trips": 1.0,
            "breaker_open": 1.0,
        }
