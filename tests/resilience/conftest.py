"""Fixtures for the resilience suite: always disarm the global plan."""

from __future__ import annotations

import pytest

from repro.catalog import StatisticsCatalog
from repro.core.predicates import FilterPredicate
from repro.engine.expressions import Query
from repro.resilience.faults import disarm
from repro.stats.builder import SITBuilder


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """A test that arms the global plan must never leak it."""
    disarm()
    yield
    disarm()


@pytest.fixture()
def join_filter_query(two_table_attrs, two_table_join) -> Query:
    """The workhorse query: R ⋈ S with a filter on the correlated R.a."""
    return Query.of(
        two_table_join, FilterPredicate(two_table_attrs["Ra"], 10.0, 40.0)
    )


@pytest.fixture()
def catalog(two_table_db, two_table_pool) -> StatisticsCatalog:
    """A fresh refresh-capable catalog per test."""
    return StatisticsCatalog.from_pool(
        two_table_pool,
        database=two_table_db,
        builder=SITBuilder(two_table_db),
    )
