"""The graceful-degradation ladder: levels 1-3, strictness, telemetry,
monotonicity, and reporting through explain/snapshot."""

from __future__ import annotations

import pytest

from repro.estimators import SITEstimator
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    POINT_HISTOGRAM_JOIN,
    POINT_SIT_MATCH,
    SITUnavailable,
    armed,
)
from repro.resilience.ladder import (
    LEVEL_BASE_INDEPENDENCE,
    LEVEL_MAGIC,
    LEVEL_NORMAL,
    LEVEL_REPLAN,
    MAGIC_FILTER_SELECTIVITY,
    MAGIC_JOIN_SELECTIVITY,
    magic_selectivity,
)


def estimator_for(db, pool, **kwargs) -> SITEstimator:
    return SITEstimator(db, pool, engine="bitmask", **kwargs)


def storm(point=POINT_SIT_MATCH, **kwargs) -> FaultPlan:
    """Every eligible evaluation at ``point`` faults, forever."""
    return FaultPlan(
        [FaultRule(point=point, probability=1.0, max_fires=None, **kwargs)],
        seed=0,
    )


class TestLevelZero:
    def test_no_faults_means_level_zero(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        result = estimator_for(two_table_db, two_table_pool).estimate(
            join_filter_query
        )
        assert result.degradation_level == LEVEL_NORMAL
        assert result.excluded_sits == ()
        assert not result.degraded


class TestLevelOneReplan:
    def plan(self) -> FaultPlan:
        # take down exactly the conditioned SIT on R.a, once
        return FaultPlan(
            [FaultRule(point=POINT_SIT_MATCH, match="SIT(R.a | ")], seed=0
        )

    def test_replan_excludes_the_failed_sit(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        estimator = estimator_for(two_table_db, two_table_pool)
        with armed(self.plan()):
            result = estimator.estimate(join_filter_query)
        assert result.degradation_level == LEVEL_REPLAN
        assert len(result.excluded_sits) == 1
        assert result.excluded_sits[0].startswith("SIT(R.a | ")
        assert 0.0 <= result.selectivity <= 1.0

    def test_replan_matches_direct_estimate_on_reduced_pool(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        """Level 1 is *exactly* a fresh DP over pool − {failed SIT}."""
        estimator = estimator_for(two_table_db, two_table_pool)
        with armed(self.plan()):
            degraded = estimator.estimate(join_filter_query)
        reduced = two_table_pool.excluding(degraded.excluded_sits)
        direct = estimator_for(two_table_db, reduced).estimate(
            join_filter_query
        )
        assert degraded.selectivity == direct.selectivity

    def test_telemetry_records_the_ladder_walk(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        estimator = estimator_for(two_table_db, two_table_pool)
        with armed(self.plan()):
            estimator.estimate(join_filter_query)
        counts = estimator.resilience.as_dict()
        assert counts["degraded_level1"] == 1.0
        assert counts["faults_sit_unavailable"] == 1.0
        assert counts["replans"] == 1.0

    def test_resilience_namespace_in_stats_snapshot(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        estimator = estimator_for(two_table_db, two_table_pool)
        with armed(self.plan()):
            estimator.estimate(join_filter_query)
        snapshot = estimator.stats_snapshot()
        assert snapshot.namespace("resilience")["degraded_level1"] == 1.0


class TestLowerRungs:
    def test_sit_match_storm_lands_on_a_lower_rung(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        """When every SIT match faults, the estimate still comes back."""
        estimator = estimator_for(two_table_db, two_table_pool)
        with armed(storm()):
            result = estimator.estimate(join_filter_query)
        assert result.degradation_level >= LEVEL_REPLAN
        assert 0.0 <= result.selectivity <= 1.0

    def test_histogram_storm_reaches_magic(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        """Histogram joins failing everywhere leaves only the constants."""
        estimator = estimator_for(two_table_db, two_table_pool)
        with armed(storm(POINT_HISTOGRAM_JOIN, fault="histogram_corrupt")):
            result = estimator.estimate(join_filter_query)
        assert result.degradation_level == LEVEL_MAGIC
        assert result.selectivity == magic_selectivity(
            join_filter_query.predicates
        )

    def test_magic_constants(self, two_table_attrs, two_table_join):
        from repro.core.predicates import FilterPredicate

        f = FilterPredicate(two_table_attrs["Ra"], 0.0, 10.0)
        assert magic_selectivity({f}) == MAGIC_FILTER_SELECTIVITY
        assert magic_selectivity({two_table_join}) == MAGIC_JOIN_SELECTIVITY
        assert magic_selectivity({f, two_table_join}) == pytest.approx(
            MAGIC_FILTER_SELECTIVITY * MAGIC_JOIN_SELECTIVITY
        )


class TestStrictMode:
    def test_strict_estimator_raises_instead_of_degrading(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        estimator = estimator_for(
            two_table_db, two_table_pool, strict=True
        )
        with armed(storm()):
            with pytest.raises(SITUnavailable):
                estimator.estimate(join_filter_query)


class TestMonotonicity:
    def test_degradation_level_monotone_in_failed_sit_set(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        """Failing a superset of SITs never yields a *lower* rung.

        The ladder property from the issue: with fault sets
        ∅ ⊆ {R.a|J} ⊆ {all conditioned} ⊆ {everything}, the resulting
        degradation levels are non-decreasing.
        """
        plans = [
            FaultPlan([], seed=0),
            FaultPlan(
                [FaultRule(point=POINT_SIT_MATCH, match="SIT(R.a | ")],
                seed=0,
            ),
            FaultPlan(
                [
                    FaultRule(
                        point=POINT_SIT_MATCH,
                        match=" | ",  # every conditioned SIT
                        max_fires=None,
                    )
                ],
                seed=0,
            ),
            storm(),
        ]
        levels = []
        for plan in plans:
            estimator = estimator_for(two_table_db, two_table_pool)
            with armed(plan):
                levels.append(
                    estimator.estimate(join_filter_query).degradation_level
                )
        assert levels == sorted(levels)
        assert levels[0] == LEVEL_NORMAL
        assert levels[-1] >= LEVEL_BASE_INDEPENDENCE - 1  # degraded at all
        assert levels[-1] >= levels[1] >= levels[0]


class TestExplainReportsDegradation:
    def test_explain_carries_level_and_exclusions(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        estimator = estimator_for(two_table_db, two_table_pool)
        plan = FaultPlan(
            [FaultRule(point=POINT_SIT_MATCH, match="SIT(R.a | ")], seed=0
        )
        with armed(plan):
            explain = estimator.explain(join_filter_query)
        assert explain.degradation_level == LEVEL_REPLAN
        assert explain.excluded_sits
        rendered = explain.render_text()
        assert "degraded:    level 1 (replan)" in rendered
        payload = explain.to_dict()
        assert payload["degradation_level"] == LEVEL_REPLAN
        assert payload["excluded_sits"] == list(explain.excluded_sits)

    def test_explain_is_silent_at_level_zero(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        estimator = estimator_for(two_table_db, two_table_pool)
        rendered = estimator.explain(join_filter_query).render_text()
        assert "degraded" not in rendered
