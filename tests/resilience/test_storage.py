"""Crash-safe catalog storage: atomic writes, per-SIT checksums, and
torn-write quarantine (the regression tests from the issue)."""

from __future__ import annotations

import json
import os

import pytest

from repro.catalog import StatisticsCatalog
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    POINT_CATALOG_LOAD,
    POINT_CATALOG_SAVE,
    StorageTorn,
    armed,
)
from repro.stats.io import (
    PoolFormatError,
    atomic_write_text,
    load_document,
    load_pool,
    loads_document,
    save_pool,
)


@pytest.fixture()
def pool_path(tmp_path, two_table_pool):
    path = tmp_path / "pool.json"
    save_pool(two_table_pool, path)
    return path


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "file.json"
        atomic_write_text(path, "first")
        assert path.read_text() == "first"
        atomic_write_text(path, "second")
        assert path.read_text() == "second"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "file.json"
        atomic_write_text(path, "content")
        assert os.listdir(tmp_path) == ["file.json"]

    def test_failure_leaves_previous_file_intact(self, tmp_path):
        """An injected save fault must not touch the existing file —
        the atomicity half of crash safety."""
        path = tmp_path / "pool.json"
        atomic_write_text(path, "previous generation")
        plan = FaultPlan(
            [FaultRule(point=POINT_CATALOG_SAVE, fault="storage_torn")],
            seed=0,
        )
        from repro.stats.io import CatalogDocument, save_document

        with armed(plan):
            with pytest.raises(StorageTorn):
                save_document(CatalogDocument(), path)
        assert path.read_text() == "previous generation"
        assert os.listdir(tmp_path) == ["pool.json"]


class TestChecksums:
    def test_records_carry_checksums(self, pool_path):
        payload = json.loads(pool_path.read_text())
        assert payload["sits"]
        assert all("checksum" in entry for entry in payload["sits"])

    def test_flipped_bit_fails_strict_load(self, pool_path, two_table_pool):
        payload = json.loads(pool_path.read_text())
        payload["sits"][0]["diff"] = payload["sits"][0]["diff"] + 1.0
        pool_path.write_text(json.dumps(payload))
        with pytest.raises(PoolFormatError, match="checksum"):
            load_pool(pool_path)

    def test_flipped_bit_quarantines_one_record(
        self, pool_path, two_table_pool
    ):
        payload = json.loads(pool_path.read_text())
        payload["sits"][0]["diff"] = payload["sits"][0]["diff"] + 1.0
        pool_path.write_text(json.dumps(payload))
        document = load_document(pool_path, quarantine=True)
        assert len(document.sits) == len(two_table_pool) - 1
        assert len(document.quarantined) == 1
        assert "checksum" in document.quarantined[0]["reason"]
        assert document.quarantined[0]["index"] == 0

    def test_records_without_checksum_still_load(self, pool_path):
        """Backward compatibility: older v2 files have no checksums."""
        payload = json.loads(pool_path.read_text())
        for entry in payload["sits"]:
            del entry["checksum"]
        pool_path.write_text(json.dumps(payload))
        assert len(load_pool(pool_path)) == len(payload["sits"])


class TestTornWrites:
    """The issue's regression: truncate a save mid-byte; loading must
    quarantine, not crash."""

    def truncate(self, path, fraction: float) -> None:
        data = path.read_bytes()
        path.write_bytes(data[: int(len(data) * fraction)])

    def test_strict_load_raises_typed_error(self, pool_path):
        self.truncate(pool_path, 0.6)
        with pytest.raises(PoolFormatError):
            load_pool(pool_path)

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75, 0.95])
    def test_quarantine_load_salvages_complete_records(
        self, pool_path, two_table_pool, fraction
    ):
        self.truncate(pool_path, fraction)
        document = load_document(pool_path, quarantine=True)
        # never crashes; salvages a prefix of the records and reports
        # the torn tail
        assert 0 <= len(document.sits) < len(two_table_pool)
        assert document.quarantined
        # salvaged SITs are bit-identical to their originals
        originals = {str(s): s for s in two_table_pool}
        for sit in document.sits:
            assert str(sit) in originals

    def test_catalog_load_quarantines_by_default(
        self, pool_path, two_table_db
    ):
        self.truncate(pool_path, 0.6)
        catalog = StatisticsCatalog.load(pool_path, database=two_table_db)
        assert catalog.quarantined
        assert (
            catalog.metrics.counter("catalog.quarantined_sits").value
            == len(catalog.quarantined)
        )
        # the surviving statistics still serve estimates
        assert len(catalog) >= 0

    def test_catalog_load_strict_opt_out(self, pool_path, two_table_db):
        self.truncate(pool_path, 0.6)
        with pytest.raises(PoolFormatError):
            StatisticsCatalog.load(
                pool_path, database=two_table_db, quarantine=False
            )

    def test_empty_file_quarantines_to_empty_document(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        document = loads_document("", quarantine=True)
        assert document.sits == []
        assert document.quarantined


class TestLoadInjection:
    def test_injected_load_fault_is_typed(self, pool_path):
        plan = FaultPlan(
            [FaultRule(point=POINT_CATALOG_LOAD, fault="storage_torn")],
            seed=0,
        )
        with armed(plan):
            with pytest.raises(StorageTorn):
                load_document(pool_path)
        # disarmed again: the same load succeeds
        assert load_document(pool_path).sits
