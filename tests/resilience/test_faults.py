"""The fault-injection layer: determinism, budgets, targeting, arming."""

from __future__ import annotations

import json

import pytest

from repro.resilience.faults import (
    FAULTS_BY_KIND,
    FaultPlan,
    FaultRule,
    HistogramCorrupt,
    INJECTION_POINTS,
    POINT_HISTOGRAM_JOIN,
    POINT_SIT_MATCH,
    POINT_WORKER_BATCH,
    SITUnavailable,
    WorkerCrash,
    active,
    arm,
    armed,
    disarm,
    inject,
)


def one_shot(point=POINT_SIT_MATCH, **kwargs) -> FaultPlan:
    return FaultPlan([FaultRule(point=point, **kwargs)], seed=7)


class TestFaultRule:
    def test_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="injection point"):
            FaultRule(point="reactor_core")

    def test_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultRule(point=POINT_SIT_MATCH, fault="gremlin")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultRule(point=POINT_SIT_MATCH, probability=1.5)

    def test_round_trips_through_dict(self):
        rule = FaultRule(
            point=POINT_WORKER_BATCH,
            fault=WorkerCrash.kind,
            probability=0.25,
            max_fires=None,
            after=3,
            match="version=2",
        )
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFiring:
    def test_certain_rule_fires_once(self):
        plan = one_shot()
        with pytest.raises(SITUnavailable) as excinfo:
            plan.check(POINT_SIT_MATCH, detail="R.a")
        assert excinfo.value.injected is True
        assert excinfo.value.point == POINT_SIT_MATCH
        # max_fires=1 (the default): the second check is a no-op
        plan.check(POINT_SIT_MATCH, detail="R.a")
        assert plan.total_fires == 1
        assert plan.stats() == {"sit_match.sit_unavailable": 1}

    def test_other_points_unaffected(self):
        plan = one_shot()
        plan.check(POINT_HISTOGRAM_JOIN)
        plan.check(POINT_WORKER_BATCH)
        assert plan.total_fires == 0

    def test_after_skips_warmup_evaluations(self):
        plan = one_shot(after=2)
        plan.check(POINT_SIT_MATCH)
        plan.check(POINT_SIT_MATCH)
        with pytest.raises(SITUnavailable):
            plan.check(POINT_SIT_MATCH)

    def test_match_targets_detail_and_sit_names(self):
        plan = FaultPlan(
            [FaultRule(point=POINT_SIT_MATCH, match="SIT(R.a")], seed=0
        )
        plan.check(POINT_SIT_MATCH, detail="S.b", sits=["SIT(S.b)"])
        assert plan.total_fires == 0
        with pytest.raises(SITUnavailable) as excinfo:
            plan.check(
                POINT_SIT_MATCH,
                detail="R.a",
                sits=["SIT(R.a | J)", "SIT(S.b)"],
            )
        # the fault names a SIT the match selected, not an arbitrary one
        assert excinfo.value.sit_name == "SIT(R.a | J)"

    def test_fault_kind_is_configurable(self):
        plan = one_shot(fault=HistogramCorrupt.kind)
        with pytest.raises(HistogramCorrupt):
            plan.check(POINT_SIT_MATCH)


class TestDeterminism:
    def drive(self, plan: FaultPlan) -> list[str | None]:
        outcomes: list[str | None] = []
        for index in range(50):
            fault = plan.evaluate(
                POINT_SIT_MATCH,
                detail=f"call-{index}",
                sits=["SIT(R.a)", "SIT(R.a | J)", "SIT(S.b)"],
            )
            outcomes.append(None if fault is None else fault.sit_name)
        return outcomes

    def test_same_seed_same_call_order_same_faults(self):
        make = lambda: FaultPlan(
            [
                FaultRule(
                    point=POINT_SIT_MATCH, probability=0.3, max_fires=None
                )
            ],
            seed=1234,
        )
        first, second = self.drive(make()), self.drive(make())
        assert first == second
        assert any(name is not None for name in first)

    def test_reset_rewinds_to_identical_sequence(self):
        plan = FaultPlan(
            [
                FaultRule(
                    point=POINT_SIT_MATCH, probability=0.3, max_fires=None
                )
            ],
            seed=99,
        )
        first = self.drive(plan)
        plan.reset()
        assert self.drive(plan) == first

    def test_different_seeds_differ(self):
        plans = [
            FaultPlan(
                [
                    FaultRule(
                        point=POINT_SIT_MATCH,
                        probability=0.5,
                        max_fires=None,
                    )
                ],
                seed=seed,
            )
            for seed in (1, 2)
        ]
        assert self.drive(plans[0]) != self.drive(plans[1])


class TestPlanDocuments:
    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultRule(point=POINT_SIT_MATCH, probability=0.5),
                FaultRule(
                    point=POINT_WORKER_BATCH,
                    fault=WorkerCrash.kind,
                    max_fires=None,
                ),
            ],
            seed=42,
        )
        restored = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert restored.seed == 42
        assert restored.rules == plan.rules

    def test_parse_inline_json(self):
        plan = FaultPlan.parse(
            '{"seed": 3, "rules": [{"point": "worker_batch", '
            '"fault": "worker_crash"}]}'
        )
        assert plan.seed == 3
        assert plan.rules[0].fault == WorkerCrash.kind

    def test_parse_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 5, "rules": []}')
        assert FaultPlan.parse(str(path)).seed == 5

    def test_every_kind_has_a_class(self):
        for kind, cls in FAULTS_BY_KIND.items():
            assert cls.kind == kind
        assert set(INJECTION_POINTS) == {
            "sit_match",
            "histogram_join",
            "snapshot_pin",
            "worker_batch",
            "catalog_save",
            "catalog_load",
            "ingest_apply",
            "refresh_during_storm",
            "swap_under_write",
        }


class TestArming:
    def test_disarmed_by_default(self):
        assert active() is None
        inject(POINT_SIT_MATCH)  # no-op

    def test_arm_disarm(self):
        plan = one_shot()
        arm(plan)
        assert active() is plan
        with pytest.raises(SITUnavailable):
            inject(POINT_SIT_MATCH)
        disarm()
        assert active() is None

    def test_armed_context_restores_previous(self):
        outer, inner = one_shot(), one_shot()
        arm(outer)
        with armed(inner):
            assert active() is inner
        assert active() is outer
        disarm()
