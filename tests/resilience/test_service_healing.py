"""Service self-healing: worker resurrection, requeue bounds, the
per-snapshot circuit breaker with rollback, and fault-path leak audits."""

from __future__ import annotations

import gc
import time
import weakref

import pytest

from repro.resilience.faults import FaultPlan, FaultRule, armed
from repro.service import EstimationService, HealingConfig, ServiceConfig, ServiceError
from repro.service.protocol import ServedEstimate

SQL = "SELECT * FROM R, S WHERE R.x = S.y AND R.a BETWEEN 10 AND 40"


def crash_plan(**kwargs) -> FaultPlan:
    return FaultPlan(
        [FaultRule(point="worker_batch", fault="worker_crash", **kwargs)],
        seed=0,
    )


def wait_until(predicate, timeout=5.0, interval=0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture()
def config() -> ServiceConfig:
    return ServiceConfig(
        workers=1,
        queue_depth=64,
        batch_window_s=0.01,
        healing=HealingConfig(
            breaker_threshold=2,
            breaker_window_s=30.0,
            requeue_limit=3,
            max_worker_restarts=6,
        ),
    )


class TestWorkerResurrection:
    def test_crashed_worker_is_replaced_and_request_served(
        self, catalog, config
    ):
        with armed(crash_plan(max_fires=1)):
            with EstimationService(catalog, config=config) as service:
                answer = service.estimate(SQL, timeout=None)
                assert isinstance(answer, ServedEstimate)
                snapshot = service.stats_snapshot()
        resilience = snapshot.namespace("resilience")
        assert resilience["worker_crashes"] == 1.0
        assert resilience["worker_restarts"] == 1.0
        assert resilience["requeues"] == 1.0
        assert snapshot.namespace("service")["served"] >= 1.0

    def test_requeue_budget_bounds_a_crash_loop(self, catalog):
        config = ServiceConfig(
            workers=1,
            batch_window_s=0.005,
            healing=HealingConfig(
                requeue_limit=1,
                breaker_threshold=100,  # keep the breaker out of this test
                max_worker_restarts=8,
            ),
        )
        with armed(crash_plan(max_fires=None, probability=1.0)):
            with EstimationService(catalog, config=config) as service:
                future = service.submit(SQL)
                with pytest.raises(ServiceError, match="worker crashed"):
                    future.result(timeout=10.0)

    def test_restart_budget_bounds_resurrections(self, catalog):
        config = ServiceConfig(
            workers=1,
            batch_window_s=0.005,
            healing=HealingConfig(
                requeue_limit=0,
                breaker_threshold=100,
                max_worker_restarts=2,
            ),
        )
        with armed(crash_plan(max_fires=None, probability=1.0)):
            service = EstimationService(catalog, config=config)
            try:
                for _ in range(3):
                    future = service.submit(SQL)
                    with pytest.raises(ServiceError):
                        future.result(timeout=10.0)
                snapshot = service.stats_snapshot()
                assert (
                    snapshot.namespace("resilience")["worker_restarts"]
                    <= 2.0
                )
            finally:
                service.close()


class TestCircuitBreaker:
    def test_repeated_faults_trip_and_roll_back(self, catalog, config):
        """Crash every batch on the *new* snapshot version: the breaker
        trips and fresh sessions roll back to the last good one."""
        with EstimationService(catalog, config=config) as service:
            good = service.estimate(SQL, timeout=None)
            good_version = good.snapshot_version
            catalog.notify_table_update("R")
            bad_version = catalog.version
            assert bad_version > good_version
            plan = FaultPlan(
                [
                    FaultRule(
                        point="worker_batch",
                        fault="worker_crash",
                        probability=1.0,
                        max_fires=None,
                        match=f"version={bad_version}",
                    )
                ],
                seed=0,
            )
            with armed(plan):
                answer = service.estimate(SQL, timeout=None)
            # served, and served off the rolled-back snapshot
            assert answer.snapshot_version == good_version
            snapshot = service.stats_snapshot()
        resilience = snapshot.namespace("resilience")
        assert resilience["breaker_trips"] >= 1.0
        assert resilience["snapshot_rollbacks"] >= 1.0
        assert resilience["worker_crashes"] >= config.healing.breaker_threshold

    def test_tripped_version_is_not_repinned(self, catalog, config):
        with EstimationService(catalog, config=config) as service:
            first = service.estimate(SQL, timeout=None)
            catalog.notify_table_update("R")
            bad_version = catalog.version
            plan = FaultPlan(
                [
                    FaultRule(
                        point="worker_batch",
                        fault="worker_crash",
                        probability=1.0,
                        max_fires=None,
                        match=f"version={bad_version}",
                    )
                ],
                seed=0,
            )
            with armed(plan):
                service.estimate(SQL, timeout=None)
                # once rolled back, later requests keep the good snapshot
                # (no thrash back onto the bad version)
                for _ in range(3):
                    answer = service.estimate(SQL, timeout=None)
                    assert answer.snapshot_version == first.snapshot_version


class TestFaultPathLeaks:
    def test_hot_swap_releases_retired_sessions(self, catalog):
        """The hot-swap leak regression: a retired session (and through
        it the pinned pool) must be garbage, not accumulate forever."""
        config = ServiceConfig(workers=1, batch_window_s=0.005)
        service = EstimationService(catalog, config=config)
        try:
            service.estimate(SQL, timeout=None)
            wait_until(lambda: len(service._sessions) == 1)
            retired_ref = weakref.ref(service._sessions[0])
            catalog.notify_table_update("R")
            service.estimate(SQL, timeout=None)  # forces the swap
            wait_until(lambda: retired_ref() is None or gc.collect() is None)
            gc.collect()
            assert retired_ref() is None, "retired session still referenced"
            # telemetry of the retired session survives retirement
            counters = service.stats_snapshot().namespace("counters")
            assert counters["queries"] >= 2.0
            assert len(service._sessions) == 1
        finally:
            service.close()

    def test_crash_releases_the_session(self, catalog, config):
        with armed(crash_plan(max_fires=1)):
            service = EstimationService(catalog, config=config)
            try:
                wait_until(lambda: len(service._sessions) == 1)
                doomed_ref = weakref.ref(service._sessions[0])
                service.estimate(SQL, timeout=None)
                gc.collect()
                assert doomed_ref() is None, "crashed session leaked"
            finally:
                service.close()

    def test_queue_depth_returns_to_zero_after_shed_storm(self, catalog):
        from repro.service import Overloaded

        config = ServiceConfig(
            workers=1, queue_depth=2, batch_window_s=0.005
        )
        service = EstimationService(catalog, config=config)
        try:
            shed = 0
            futures = []
            for _ in range(40):
                try:
                    futures.append(service.submit(SQL))
                except Overloaded:
                    shed += 1
            assert shed > 0  # the storm actually overflowed the queue
            for future in futures:
                future.result(timeout=10.0)
            assert wait_until(lambda: service.queue_depth == 0)
            gauge = service.stats_snapshot().namespace("service")
            assert gauge["queue_depth"] == 0.0
            assert gauge["shed_overload"] == float(shed)
        finally:
            service.close()

    def test_close_drain_flushes_everything_after_faults(self, catalog):
        config = ServiceConfig(
            workers=2,
            batch_window_s=0.005,
            healing=HealingConfig(requeue_limit=1, max_worker_restarts=4),
        )
        with armed(crash_plan(max_fires=2, probability=1.0)):
            service = EstimationService(catalog, config=config)
            futures = [service.submit(SQL) for _ in range(10)]
            assert service.close(drain=True) is True
            for future in futures:
                assert future.done()
                exc = future.exception()
                assert exc is None or isinstance(exc, ServiceError)
            # all sessions retired on shutdown — nothing pinned
            assert service._sessions == []


class TestDegradationOverTheService:
    def test_degraded_estimates_flow_through_the_protocol(self, catalog):
        plan = FaultPlan(
            [
                FaultRule(
                    point="sit_match",
                    match="SIT(R.a | ",
                    max_fires=None,
                    probability=1.0,
                )
            ],
            seed=0,
        )
        config = ServiceConfig(workers=1, batch_window_s=0.005)
        with armed(plan):
            with EstimationService(catalog, config=config) as service:
                answer = service.estimate(SQL, timeout=None)
                snapshot = service.stats_snapshot()
        assert answer.degradation_level >= 1
        assert answer.degraded
        assert any(
            name.startswith("SIT(R.a | ") for name in answer.excluded_sits
        )
        # and the round trip through the wire codec keeps the fields
        wire = answer.to_wire(request_id="1")
        assert wire["degradation_level"] == answer.degradation_level
        restored = ServedEstimate.from_wire(wire)
        assert restored.degradation_level == answer.degradation_level
        assert restored.excluded_sits == answer.excluded_sits
        assert snapshot.namespace("service")["degraded"] >= 1.0
