"""Retry policy: full-jitter backoff shape, budgets, telemetry."""

from __future__ import annotations

import random

import pytest

from repro.resilience.retry import (
    NO_RETRIES,
    RetryPolicy,
    RetryTelemetry,
    call_with_retries,
)


class Flaky:
    """Fails ``failures`` times, then succeeds."""

    def __init__(self, failures: int, exc=ValueError):
        self.failures = failures
        self.calls = 0
        self.exc = exc

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"failure {self.calls}")
        return "ok"


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-1.0)

    def test_full_jitter_bounds(self):
        policy = RetryPolicy(base_backoff_s=0.1, max_backoff_s=1.0)
        rng = random.Random(0)
        for attempt in range(10):
            cap = min(1.0, 0.1 * 2.0 ** attempt)
            for _ in range(50):
                pause = policy.backoff(attempt, rng)
                assert 0.0 <= pause <= cap

    def test_backoff_deterministic_given_seed(self):
        policy = RetryPolicy()
        first = [policy.backoff(a, random.Random(7)) for a in range(5)]
        second = [policy.backoff(a, random.Random(7)) for a in range(5)]
        assert first == second


class TestCallWithRetries:
    def retryable(self, exc):
        return isinstance(exc, ValueError)

    def test_succeeds_after_transient_failures(self):
        sleeps: list[float] = []
        flaky = Flaky(2)
        result = call_with_retries(
            flaky,
            RetryPolicy(max_attempts=4),
            retryable=self.retryable,
            rng=random.Random(0),
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert flaky.calls == 3
        assert len(sleeps) == 2

    def test_budget_exhaustion_reraises_last_failure(self):
        flaky = Flaky(10)
        with pytest.raises(ValueError, match="failure 3"):
            call_with_retries(
                flaky,
                RetryPolicy(max_attempts=3),
                retryable=self.retryable,
                rng=random.Random(0),
                sleep=lambda _: None,
            )
        assert flaky.calls == 3

    def test_non_retryable_propagates_immediately(self):
        flaky = Flaky(1, exc=KeyError)
        with pytest.raises(KeyError):
            call_with_retries(
                flaky,
                RetryPolicy(max_attempts=5),
                retryable=self.retryable,
                sleep=lambda _: None,
            )
        assert flaky.calls == 1

    def test_no_retries_policy_is_one_attempt(self):
        flaky = Flaky(1)
        with pytest.raises(ValueError):
            call_with_retries(
                flaky, NO_RETRIES, retryable=self.retryable
            )
        assert flaky.calls == 1

    def test_telemetry_counts(self):
        telemetry = RetryTelemetry()
        call_with_retries(
            Flaky(2),
            RetryPolicy(max_attempts=4),
            retryable=self.retryable,
            rng=random.Random(0),
            sleep=lambda _: None,
            telemetry=telemetry,
        )
        assert telemetry.attempts == 3
        assert telemetry.retries == 2
        assert telemetry.gave_up == 0
        assert len(telemetry.sleeps) == 2
        assert telemetry.as_dict() == {
            "retry_attempts": 3.0,
            "retries": 2.0,
        }

    def test_telemetry_records_exhaustion(self):
        telemetry = RetryTelemetry()
        with pytest.raises(ValueError):
            call_with_retries(
                Flaky(9),
                RetryPolicy(max_attempts=2),
                retryable=self.retryable,
                sleep=lambda _: None,
                telemetry=telemetry,
            )
        assert telemetry.gave_up == 1
        assert telemetry.as_dict()["retry_exhausted"] == 1.0
