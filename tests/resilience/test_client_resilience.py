"""Client-side resilience: SocketClient transparent reconnect (the
kill-the-server-mid-stream regression), bounded reconnect budgets, and
opt-in full-jitter retry of shed requests on both clients."""

from __future__ import annotations

import random
import socket

import pytest

from repro.resilience.retry import RetryPolicy
from repro.service import (
    EstimationService,
    InProcessClient,
    Overloaded,
    ServiceConfig,
    SocketClient,
    TransportError,
    connect,
)
from repro.service.protocol import ServedEstimate
from repro.service.server import start_in_thread

SQL = "SELECT * FROM R, S WHERE R.x = S.y AND R.a BETWEEN 10 AND 40"


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture()
def config() -> ServiceConfig:
    return ServiceConfig(workers=1, batch_window_s=0.005)


class TestTransparentReconnect:
    def test_server_killed_mid_stream_client_reconnects(
        self, catalog, config
    ):
        """The issue's scenario: kill the server between two requests;
        the client re-dials the restarted server and the estimate
        succeeds — no exception reaches the caller."""
        first_handle = start_in_thread(
            EstimationService(catalog, config=config), port=0
        )
        host, port = first_handle.address
        client = connect(
            (host, port),
            reconnect_attempts=5,
            reconnect_backoff=RetryPolicy(
                max_attempts=5, base_backoff_s=0.01, max_backoff_s=0.05
            ),
            rng=random.Random(0),
        )
        try:
            before = client.estimate(SQL)
            assert isinstance(before, ServedEstimate)
            assert client.reconnects == 0

            # kill the server under the client's open connection ...
            first_handle.close()
            # ... and restart it on the same port (asyncio sets
            # SO_REUSEADDR, so the rebind does not hit TIME_WAIT)
            second_handle = start_in_thread(
                EstimationService(catalog, config=config), port=port
            )
            try:
                after = client.estimate(SQL)
            finally:
                second_handle.close()
            assert after.selectivity == pytest.approx(before.selectivity)
            assert client.reconnects >= 1
        finally:
            client.close()

    def test_dead_server_raises_typed_transport_error(self, catalog, config):
        handle = start_in_thread(
            EstimationService(catalog, config=config), port=0
        )
        host, port = handle.address
        client = connect(
            (host, port), reconnect_attempts=2, sleep=lambda _: None
        )
        try:
            client.estimate(SQL)
            handle.close()
            with pytest.raises(TransportError, match="reconnect attempt"):
                client.estimate(SQL)
        finally:
            client.close()

    def test_connect_failure_is_typed(self):
        with pytest.raises(TransportError, match="cannot connect"):
            connect(f"127.0.0.1:{free_port()}", timeout_s=1.0)

    def test_closed_client_refuses_requests(self, catalog, config):
        handle = start_in_thread(
            EstimationService(catalog, config=config), port=0
        )
        try:
            host, port = handle.address
            client = connect((host, port))
            client.close()
            with pytest.raises(TransportError, match="closed"):
                client.ping()
        finally:
            handle.close()

    def test_reconnect_attempts_validation(self):
        with pytest.raises(ValueError):
            SocketClient("127.0.0.1", 1, reconnect_attempts=-1)

    def test_transport_error_never_on_the_wire(self):
        """The wire failure vocabulary is pinned; ``transport`` is a
        client-side status only."""
        from repro.service.protocol import STATUSES

        assert TransportError.status == "transport"
        assert "transport" not in STATUSES


class SheddingService:
    """Stub service: sheds ``sheds`` estimates, then serves a canned
    answer."""

    def __init__(self, sheds: int):
        self.sheds = sheds
        self.calls = 0

    def estimate(self, query, timeout=None) -> ServedEstimate:
        self.calls += 1
        if self.calls <= self.sheds:
            raise Overloaded("queue full")
        return ServedEstimate(
            selectivity=0.5,
            cardinality=10.0,
            error=0.0,
            snapshot_version=1,
            latency_ms=0.1,
        )

    def close(self, drain: bool = True) -> bool:
        return True


class TestClientRetry:
    def test_shed_requests_retry_with_jitter(self):
        sleeps: list[float] = []
        service = SheddingService(sheds=2)
        client = InProcessClient(
            service,
            retry=RetryPolicy(max_attempts=4, base_backoff_s=0.05),
            rng=random.Random(0),
            sleep=sleeps.append,
        )
        answer = client.estimate(SQL)
        assert answer.selectivity == 0.5
        assert service.calls == 3
        assert len(sleeps) == 2
        assert all(0.0 <= pause <= 0.1 for pause in sleeps)
        assert client.retry_telemetry.retries == 2

    def test_no_retries_is_the_default(self):
        service = SheddingService(sheds=1)
        client = InProcessClient(service)
        with pytest.raises(Overloaded):
            client.estimate(SQL)
        assert service.calls == 1

    def test_retry_budget_exhaustion_surfaces_overloaded(self):
        service = SheddingService(sheds=10)
        client = InProcessClient(
            service,
            retry=RetryPolicy(max_attempts=3),
            rng=random.Random(0),
            sleep=lambda _: None,
        )
        with pytest.raises(Overloaded):
            client.estimate(SQL)
        assert service.calls == 3
        assert client.retry_telemetry.gave_up == 1

    def test_deadline_failures_are_not_retried(self):
        from repro.service.protocol import DeadlineExceeded

        class DeadlineService(SheddingService):
            def estimate(self, query, timeout=None):
                self.calls += 1
                raise DeadlineExceeded("too slow")

        service = DeadlineService(sheds=0)
        client = InProcessClient(
            service, retry=RetryPolicy(max_attempts=5), sleep=lambda _: None
        )
        with pytest.raises(DeadlineExceeded):
            client.estimate(SQL)
        assert service.calls == 1
