"""Parity and overhead properties of the resilience layer.

The contract from the issue: an *armed but never-firing* fault plan is
bit-identical to the no-resilience path (the guards are observation, not
perturbation), a seeded plan makes degradation fully deterministic, and
the disarmed guards are cheap enough for the optimizer inner loop (the
``BENCH_core.json`` gate tracks the <=5% budget; here we pin the shape
of the benchmark that enforces it)."""

from __future__ import annotations

import pytest

from repro.estimators import SITEstimator
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    POINT_SIT_MATCH,
    armed,
)
from repro.service import EstimationService, ServiceConfig

SQL = "SELECT * FROM R, S WHERE R.x = S.y AND R.a BETWEEN 10 AND 40"


def zero_fault_plan() -> FaultPlan:
    """Armed, evaluated, and incapable of firing within any test run."""
    return FaultPlan(
        [FaultRule(point=POINT_SIT_MATCH, after=10**9, max_fires=None)],
        seed=0,
    )


class TestZeroFaultBitIdentity:
    def test_estimator_results_are_bit_identical(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        baseline = SITEstimator(
            two_table_db, two_table_pool
        ).estimate(join_filter_query)
        with armed(zero_fault_plan()):
            under_plan = SITEstimator(
                two_table_db, two_table_pool
            ).estimate(join_filter_query)
        # the whole result object, not an approx: same selectivity bits,
        # same error, same decomposition, level 0, nothing excluded
        assert under_plan == baseline
        assert under_plan.degradation_level == 0
        assert under_plan.excluded_sits == ()

    def test_service_estimates_are_bit_identical(self, catalog):
        config = ServiceConfig(workers=1, batch_window_s=0.005)
        with EstimationService(catalog, config=config) as service:
            baseline = service.estimate(SQL, timeout=None)
            with armed(zero_fault_plan()):
                under_plan = service.estimate(SQL, timeout=None)
        assert under_plan.selectivity == baseline.selectivity
        assert under_plan.cardinality == baseline.cardinality
        assert under_plan.error == baseline.error
        assert under_plan.degradation_level == 0

    def test_zero_fault_plan_reports_zero_fires(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        plan = zero_fault_plan()
        with armed(plan):
            SITEstimator(two_table_db, two_table_pool).estimate(
                join_filter_query
            )
        assert plan.total_fires == 0
        assert plan.stats() == {}


class TestDeterminism:
    def flaky_plan(self, seed: int) -> FaultPlan:
        return FaultPlan(
            [
                FaultRule(
                    point=POINT_SIT_MATCH,
                    probability=0.5,
                    max_fires=None,
                )
            ],
            seed=seed,
        )

    def run_sequence(
        self, db, pool, query, seed: int
    ) -> list[tuple[int, tuple, float]]:
        estimator = SITEstimator(db, pool)
        outcomes = []
        with armed(self.flaky_plan(seed)):
            for _ in range(10):
                result = estimator.estimate(query)
                outcomes.append(
                    (
                        result.degradation_level,
                        result.excluded_sits,
                        result.selectivity,
                    )
                )
        return outcomes

    def test_same_seed_same_degradation_sequence(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        first = self.run_sequence(
            two_table_db, two_table_pool, join_filter_query, seed=3
        )
        second = self.run_sequence(
            two_table_db, two_table_pool, join_filter_query, seed=3
        )
        assert first == second

    def test_different_seeds_may_diverge(
        self, two_table_db, two_table_pool, join_filter_query
    ):
        sequences = {
            tuple(
                self.run_sequence(
                    two_table_db, two_table_pool, join_filter_query, seed=s
                )
            )
            for s in range(6)
        }
        assert len(sequences) > 1  # the seed is load-bearing


class TestOverheadGate:
    def test_bench_reports_parity_and_overhead(self):
        from repro.bench.perf import bench_fault_overhead

        report = bench_fault_overhead(5, 3)
        assert report["zero_fault_bit_identical"] is True
        assert report["disarmed_ms"] > 0.0
        assert report["armed_zero_fault_ms"] > 0.0
        assert isinstance(report["armed_overhead_pct"], float)

    def test_gate_keys_present_in_bench_payload(self):
        """The BENCH_core gates must carry the resilience entries (the
        CI job reads these keys; renaming them silently un-gates)."""
        import inspect

        from repro.bench import perf

        source = inspect.getsource(perf.run)
        assert "n7_fault_guards_armed_overhead_pct" in source
        assert "n7_fault_guards_zero_fault_bit_identical" in source
