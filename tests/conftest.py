"""Shared fixtures: small deterministic databases and SIT pools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.database import Database, Table
from repro.engine.executor import Executor
from repro.engine.schema import ForeignKey, Schema, TableSchema
from repro.stats.builder import SITBuilder
from repro.stats.pool import SITPool
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake
from repro.workload.tpch import TPCHConfig, generate_tpch


@pytest.fixture(scope="session")
def two_table_db() -> Database:
    """R(x, a) joining S(y, b): skewed FK, a correlated with x.

    * ``R.x`` references ``S.y`` (keys 0..49) with Zipf-ish frequencies.
    * ``R.a = 2x + noise`` so filters on ``a`` correlate with the key.
    * ``S.b`` is uniform on [0, 100).
    """
    rng = np.random.default_rng(0)
    schema = Schema()
    schema.add_table(TableSchema("R", ("x", "a")))
    schema.add_table(TableSchema("S", ("y", "b"), primary_key="y"))
    schema.add_foreign_key(ForeignKey("R", "x", "S", "y"))
    db = Database(schema)
    weights = 1.0 / (np.arange(1, 51) ** 1.2)
    weights /= weights.sum()
    r_x = rng.choice(50, size=2000, p=weights).astype(np.float64)
    r_a = (r_x * 2 + rng.integers(0, 5, 2000)).astype(np.float64)
    db.add_table(Table(schema.table("R"), {"x": r_x, "a": r_a}))
    db.add_table(
        Table(
            schema.table("S"),
            {
                "y": np.arange(50, dtype=np.float64),
                "b": rng.integers(0, 100, 50).astype(np.float64),
            },
        )
    )
    return db


@pytest.fixture(scope="session")
def two_table_attrs() -> dict[str, Attribute]:
    return {
        "Rx": Attribute("R", "x"),
        "Ra": Attribute("R", "a"),
        "Sy": Attribute("S", "y"),
        "Sb": Attribute("S", "b"),
    }


@pytest.fixture(scope="session")
def two_table_join(two_table_attrs) -> JoinPredicate:
    return JoinPredicate(two_table_attrs["Rx"], two_table_attrs["Sy"])


@pytest.fixture(scope="session")
def two_table_pool(two_table_db, two_table_attrs, two_table_join) -> SITPool:
    """Base histograms plus SITs on the join expression."""
    builder = SITBuilder(two_table_db)
    pool = SITPool()
    for attribute in two_table_attrs.values():
        pool.add(builder.build_base(attribute))
    for sit in builder.build_many(
        frozenset((two_table_join,)),
        [two_table_attrs["Ra"], two_table_attrs["Sb"]],
    ):
        pool.add(sit)
    return pool


@pytest.fixture(scope="session")
def two_table_executor(two_table_db) -> Executor:
    return Executor(two_table_db)


@pytest.fixture(scope="session")
def tiny_snowflake() -> Database:
    return generate_snowflake(SnowflakeConfig(scale=0.05, seed=11))


@pytest.fixture(scope="session")
def small_snowflake() -> Database:
    return generate_snowflake(SnowflakeConfig(scale=0.15, seed=11))


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    return generate_tpch(TPCHConfig())


def make_filter(attribute: Attribute, low: float, high: float) -> FilterPredicate:
    return FilterPredicate(attribute, low, high)
