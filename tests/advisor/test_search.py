"""Configuration search: measured q-error scoring, budget, determinism."""

from __future__ import annotations

import pytest

from repro.advisor.feedback import FeedbackLog
from repro.advisor.search import (
    ConfigurationSearch,
    MeasuredRecord,
    median,
    q_error,
    sit_space_bytes,
    static_score,
)
from repro.core.predicates import FilterPredicate
from repro.engine.executor import Executor


class TestQError:
    def test_identity_is_one(self):
        assert q_error(100.0, 100.0) == pytest.approx(1.0)

    def test_symmetric(self):
        assert q_error(10.0, 40.0) == q_error(40.0, 10.0)

    def test_zero_guarded(self):
        assert q_error(0.0, 0.0) == pytest.approx(1.0)
        assert q_error(0.0, 10.0) > 1e9


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_is_mean_of_middle_pair(self):
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])


@pytest.fixture()
def measured_records(
    two_table_db, two_table_attrs, two_table_join
) -> list[MeasuredRecord]:
    """Feedback filtering ``S.b`` (reshaped by the skewed join), truth
    from the engine."""
    executor = Executor(two_table_db)
    log = FeedbackLog(capacity=64)
    measured = []
    for low in range(0, 70, 5):
        predicates = frozenset(
            {
                two_table_join,
                FilterPredicate(two_table_attrs["Sb"], float(low), low + 25.0),
            }
        )
        record = log.append(predicates, 0.0)
        measured.append(
            MeasuredRecord(record, executor.cardinality(predicates))
        )
    return measured


@pytest.fixture()
def search_parts(two_table_pool):
    base = [sit for sit in two_table_pool if sit.is_base]
    conditioned = [sit for sit in two_table_pool if not sit.is_base]
    assert conditioned  # the fixture pool carries SITs to choose from
    return base, conditioned


class TestConfigurationSearch:
    def test_static_score_uses_measured_applicability(
        self, measured_records, search_parts
    ):
        _, conditioned = search_parts
        plain = [m.record for m in measured_records]
        for sit in conditioned:
            # every record's join set subsumes the single-join expression
            assert static_score(sit, plain) == pytest.approx(
                sit.diff * len(plain) / (1.0 + sit.join_count)
            )

    def test_evaluate_counts_and_scores(
        self, two_table_db, measured_records, search_parts
    ):
        base, conditioned = search_parts
        search = ConfigurationSearch(
            database=two_table_db,
            base_sits=base,
            candidates=conditioned,
            records=measured_records,
        )
        errors = search.evaluate(frozenset())
        assert len(errors) == len(measured_records)
        assert all(error >= 1.0 for error in errors)
        assert search.evaluations == 1

    def test_conditioned_sits_improve_measured_median(
        self, two_table_db, measured_records, search_parts
    ):
        """The premise of the whole loop: on the correlated workload the
        SIT-bearing configuration beats base-only."""
        base, conditioned = search_parts
        search = ConfigurationSearch(
            database=two_table_db,
            base_sits=base,
            candidates=conditioned,
            records=measured_records,
        )
        base_only = median(search.evaluate(frozenset()))
        full = median(
            search.evaluate(frozenset(str(sit) for sit in conditioned))
        )
        assert full < base_only

    def test_greedy_is_deterministic(
        self, two_table_db, measured_records, search_parts
    ):
        base, conditioned = search_parts

        def run():
            return ConfigurationSearch(
                database=two_table_db,
                base_sits=base,
                candidates=conditioned,
                records=measured_records,
            ).greedy()

        assert run() == run()

    def test_greedy_respects_space_budget(
        self, two_table_db, measured_records, search_parts
    ):
        base, conditioned = search_parts
        spaces = {str(sit): sit_space_bytes(sit) for sit in conditioned}
        budget = min(spaces.values())  # room for at most the smallest
        search = ConfigurationSearch(
            database=two_table_db,
            base_sits=base,
            candidates=conditioned,
            records=measured_records,
            space_budget_bytes=budget,
        )
        chosen, _ = search.greedy()
        assert sum(spaces[name] for name in chosen) <= budget

    def test_greedy_bounded_by_max_moves(
        self, two_table_db, measured_records, search_parts
    ):
        base, conditioned = search_parts
        search = ConfigurationSearch(
            database=two_table_db,
            base_sits=base,
            candidates=conditioned,
            records=measured_records,
            max_moves=2,
        )
        search.greedy()
        assert search.evaluations <= 2

    def test_empty_records_is_a_no_op(
        self, two_table_db, search_parts
    ):
        base, conditioned = search_parts
        search = ConfigurationSearch(
            database=two_table_db,
            base_sits=base,
            candidates=conditioned,
            records=[],
        )
        assert search.greedy() == (frozenset(), float("inf"))
        assert search.evaluations == 0
