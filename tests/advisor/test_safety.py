"""The safety gate: hard constraints, violation ordering, verdicts."""

from __future__ import annotations

import pytest

from repro.advisor.config import AdvisorConfig
from repro.advisor.safety import NO_SOLUTION_FOUND, SafetyGate


def check(config: AdvisorConfig, **overrides):
    numbers = {
        "worst_q_error": 2.0,
        "space_bytes": 100.0,
        "refresh_seconds": 0.5,
        "safety_records": 5,
    }
    numbers.update(overrides)
    return SafetyGate(config).check(**numbers)


BOUNDED = AdvisorConfig(
    max_q_error=10.0, space_budget_bytes=1000.0, refresh_budget_s=2.0
)


class TestSafetyGate:
    def test_accepts_within_all_bounds(self):
        decision = check(BOUNDED)
        assert decision.accepted
        assert decision.reason == "accepted"
        assert decision.verdict == "accepted"
        assert decision.violations == ()

    def test_q_error_violation(self):
        decision = check(BOUNDED, worst_q_error=11.0)
        assert not decision.accepted
        assert decision.reason == "q_error"
        assert decision.verdict == NO_SOLUTION_FOUND

    def test_space_violation(self):
        decision = check(BOUNDED, space_bytes=1001.0)
        assert decision.violations == ("space",)

    def test_refresh_violation(self):
        decision = check(BOUNDED, refresh_seconds=2.5)
        assert decision.violations == ("refresh_cost",)

    def test_empty_safety_split_is_a_rejection(self):
        """A constraint that cannot be checked is not a constraint that
        holds."""
        decision = check(BOUNDED, safety_records=0)
        assert not decision.accepted
        assert "no_safety_records" in decision.violations

    def test_none_budgets_are_unbounded(self):
        config = AdvisorConfig(
            max_q_error=10.0, space_budget_bytes=None, refresh_budget_s=None
        )
        decision = check(config, space_bytes=1e12, refresh_seconds=1e6)
        assert decision.accepted

    def test_all_violations_collected_in_order(self):
        decision = check(
            BOUNDED,
            worst_q_error=99.0,
            space_bytes=1e6,
            refresh_seconds=1e3,
            safety_records=0,
        )
        assert decision.violations == (
            "no_safety_records",
            "q_error",
            "space",
            "refresh_cost",
        )
        assert decision.reason == "no_safety_records"

    def test_impossible_q_error_bound_always_rejects(self):
        """``max_q_error=0`` can never be met (q-error >= 1 by
        construction) — the canonical impossible constraint."""
        config = AdvisorConfig(max_q_error=0.0)
        decision = check(config, worst_q_error=1.0)
        assert not decision.accepted
        assert decision.verdict == NO_SOLUTION_FOUND

    def test_to_dict_round_trips_the_verdict(self):
        payload = check(BOUNDED, worst_q_error=11.0).to_dict()
        assert payload["verdict"] == NO_SOLUTION_FOUND
        assert payload["violations"] == ["q_error"]
        assert payload["max_q_error"] == 10.0
