"""Fixtures for the self-tuning advisor tests: a refresh-capable
catalog over the two-table database plus a feedback workload whose
filters correlate with the skewed join key."""

from __future__ import annotations

import pytest

from repro.catalog import EstimationSession, StatisticsCatalog
from repro.core.predicates import FilterPredicate
from repro.engine.expressions import Query
from repro.stats.builder import SITBuilder


@pytest.fixture()
def advisor_catalog(two_table_db, two_table_pool) -> StatisticsCatalog:
    """A fresh catalog per test (ticks reconfigure it)."""
    return StatisticsCatalog.from_pool(
        two_table_pool,
        database=two_table_db,
        builder=SITBuilder(two_table_db),
    )


@pytest.fixture()
def feedback_queries(two_table_attrs, two_table_join) -> list[Query]:
    """Distinct predicate sets filtering ``S.b`` — the attribute whose
    distribution the skewed join actually reshapes, so conditioned SITs
    measurably beat base-only estimates.  Enough distinct sets that the
    seeded hash split populates both the candidate and safety side."""
    attribute = two_table_attrs["Sb"]
    return [
        Query.of(
            two_table_join, FilterPredicate(attribute, float(low), low + 25.0)
        )
        for low in range(0, 70, 5)
    ]


def drive_feedback(advisor, catalog, queries) -> None:
    """Serve the workload through a session wired to the advisor."""
    session = EstimationSession(catalog)
    session.feedback_sink = advisor.record_result
    for query in queries:
        session.estimate(query)
