"""FeedbackLog: bounded window, deterministic sequence, counters."""

from __future__ import annotations

import pytest

from repro.advisor.feedback import DEFAULT_LOG_CAPACITY, FeedbackLog
from repro.core.predicates import FilterPredicate


def predicate_set(two_table_attrs, low: float):
    return frozenset(
        {FilterPredicate(two_table_attrs["Ra"], low, low + 1.0)}
    )


class TestFeedbackLog:
    def test_append_returns_record_with_derived_fields(self, two_table_attrs):
        log = FeedbackLog()
        predicates = predicate_set(two_table_attrs, 3.0)
        record = log.append(predicates, 42.0, matched_sits=("b", "a"))
        assert record.seq == 0
        assert record.predicates == predicates
        assert record.estimated_cardinality == 42.0
        assert record.matched_sits == ("a", "b")  # sorted
        assert record.tables == frozenset({"R"})

    def test_capacity_bound_drops_oldest(self, two_table_attrs):
        log = FeedbackLog(capacity=3)
        for low in range(5):
            log.append(predicate_set(two_table_attrs, float(low)), 1.0)
        records = log.records()
        assert len(records) == 3
        assert len(log) == 3
        # oldest two were evicted; sequence numbers keep counting
        assert [r.seq for r in records] == [2, 3, 4]
        assert log.counters() == {
            "feedback_records": 3.0,
            "feedback_appended": 5.0,
            "feedback_dropped": 2.0,
        }

    def test_records_is_a_snapshot(self, two_table_attrs):
        log = FeedbackLog(capacity=4)
        log.append(predicate_set(two_table_attrs, 0.0), 1.0)
        snapshot = log.records()
        log.append(predicate_set(two_table_attrs, 1.0), 2.0)
        assert len(snapshot) == 1
        assert isinstance(snapshot, tuple)

    def test_clear_reports_count(self, two_table_attrs):
        log = FeedbackLog(capacity=8)
        for low in range(3):
            log.append(predicate_set(two_table_attrs, float(low)), 1.0)
        assert log.clear() == 3
        assert len(log) == 0
        # appended/dropped history survives a clear
        assert log.counters()["feedback_appended"] == 3.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FeedbackLog(capacity=0)

    def test_default_capacity(self):
        assert FeedbackLog().capacity == DEFAULT_LOG_CAPACITY
