"""The candidate/safety split: deterministic, leak-free, RNG-free."""

from __future__ import annotations

import pytest

from repro.advisor.feedback import FeedbackLog
from repro.advisor.split import (
    CANDIDATE,
    SAFETY,
    assign_split,
    canonical_key,
    split_records,
)
from repro.core.predicates import FilterPredicate


def predicate_set(two_table_attrs, low: float):
    return frozenset(
        {FilterPredicate(two_table_attrs["Ra"], low, low + 1.0)}
    )


class TestAssignSplit:
    def test_deterministic_across_calls(self, two_table_attrs):
        predicates = predicate_set(two_table_attrs, 7.0)
        sides = {assign_split(predicates, 7, 0.3) for _ in range(10)}
        assert len(sides) == 1

    def test_canonical_key_is_order_independent(self, two_table_attrs):
        a = FilterPredicate(two_table_attrs["Ra"], 0.0, 1.0)
        b = FilterPredicate(two_table_attrs["Sb"], 2.0, 3.0)
        assert canonical_key(frozenset({a, b})) == canonical_key(
            frozenset({b, a})
        )

    def test_fraction_roughly_respected(self, two_table_attrs):
        sides = [
            assign_split(predicate_set(two_table_attrs, float(low)), 7, 0.3)
            for low in range(300)
        ]
        safety_share = sides.count(SAFETY) / len(sides)
        assert 0.2 < safety_share < 0.4

    def test_invalid_fraction_rejected(self, two_table_attrs):
        predicates = predicate_set(two_table_attrs, 0.0)
        for fraction in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                assign_split(predicates, 7, fraction)

    def test_only_two_sides(self, two_table_attrs):
        sides = {
            assign_split(predicate_set(two_table_attrs, float(low)), 3, 0.5)
            for low in range(50)
        }
        assert sides <= {SAFETY, CANDIDATE}


class TestSplitRecords:
    def _log(self, two_table_attrs, repeats: int = 2) -> FeedbackLog:
        log = FeedbackLog(capacity=256)
        for _ in range(repeats):
            for low in range(40):
                log.append(
                    predicate_set(two_table_attrs, float(low)), float(low)
                )
        return log

    def test_partition_is_disjoint_and_complete(self, two_table_attrs):
        records = self._log(two_table_attrs).records()
        candidate, safety = split_records(records, 7, 0.3)
        assert len(candidate) + len(safety) == len(records)
        assert {r.seq for r in candidate}.isdisjoint(
            r.seq for r in safety
        )
        # arrival order preserved within each side
        assert [r.seq for r in candidate] == sorted(r.seq for r in candidate)
        assert [r.seq for r in safety] == sorted(r.seq for r in safety)

    def test_leak_free_same_predicates_same_side(self, two_table_attrs):
        """The Seldonian precondition: a query seen by the search must
        never also vouch for safety."""
        records = self._log(two_table_attrs, repeats=3).records()
        candidate, safety = split_records(records, 7, 0.3)
        candidate_keys = {canonical_key(r.predicates) for r in candidate}
        safety_keys = {canonical_key(r.predicates) for r in safety}
        assert candidate_keys.isdisjoint(safety_keys)

    def test_same_seed_same_split(self, two_table_attrs):
        records = self._log(two_table_attrs).records()
        first = split_records(records, 7, 0.3)
        second = split_records(records, 7, 0.3)
        assert [r.seq for r in first[0]] == [r.seq for r in second[0]]
        assert [r.seq for r in first[1]] == [r.seq for r in second[1]]

    def test_different_seed_changes_assignment(self, two_table_attrs):
        records = self._log(two_table_attrs).records()
        splits = {
            tuple(r.seq for r in split_records(records, seed, 0.3)[1])
            for seed in range(8)
        }
        assert len(splits) > 1  # the seed actually drives the hash
