"""AdvisorConfig: validation and dict round-trips."""

from __future__ import annotations

import pytest

from repro.advisor.config import AdvisorConfig


class TestAdvisorConfig:
    def test_defaults_are_valid(self):
        config = AdvisorConfig()
        assert config.max_q_error == 25.0
        assert config.space_budget_bytes is None

    def test_round_trip(self):
        config = AdvisorConfig(
            max_q_error=5.0,
            space_budget_bytes=4096.0,
            refresh_budget_s=1.5,
            min_feedback=3,
            safety_fraction=0.4,
            split_seed=11,
            max_moves=9,
            log_capacity=64,
            min_interval_s=0.0,
            drift_threshold=2.0,
        )
        assert AdvisorConfig.from_dict(config.to_dict()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown AdvisorConfig keys"):
            AdvisorConfig.from_dict({"max_q_error": 5.0, "typo": 1})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_q_error": -1.0},
            {"space_budget_bytes": -1.0},
            {"refresh_budget_s": -1.0},
            {"min_feedback": 0},
            {"safety_fraction": 0.0},
            {"safety_fraction": 1.0},
            {"max_moves": 0},
            {"log_capacity": 0},
            {"min_interval_s": -0.1},
            {"drift_threshold": 0.5},
            {"drift_threshold": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdvisorConfig(**kwargs)

    def test_impossible_bounds_are_still_valid_configs(self):
        """``max_q_error=0`` and a zero space budget are legal — they
        express 'never accept', which the gate reports as
        no-solution-found rather than the config rejecting upfront."""
        AdvisorConfig(max_q_error=0.0)
        AdvisorConfig(space_budget_bytes=0.0)
