"""SelfTuningAdvisor end-to-end: accept, no-solution-found, skip, defer.

The two hard promises under test:

* an impossible constraint **always** yields ``no-solution-found`` and
  never mutates the catalog;
* the whole tick is deterministic — same seed + same feedback log ->
  the identical accepted configuration.
"""

from __future__ import annotations

import pytest

from repro.advisor import (
    AdvisorConfig,
    NO_SOLUTION_FOUND,
    SelfTuningAdvisor,
)
from repro.advisor.loop import ACCEPTED, DEFERRED, HISTORY_LIMIT, SKIPPED
from repro.advisor.search import sit_space_bytes

from .conftest import drive_feedback


def catalog_fingerprint(catalog):
    return (
        catalog.version,
        tuple(sorted(str(sit) for sit in catalog.pool)),
    )


LENIENT = AdvisorConfig(min_feedback=4, min_interval_s=0.0)


class TestAcceptPath:
    def test_tick_accepts_and_reconfigures(
        self, advisor_catalog, feedback_queries
    ):
        advisor = SelfTuningAdvisor(advisor_catalog, config=LENIENT)
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        report = advisor.tick()
        assert report.status == ACCEPTED
        assert report.decision is not None and report.decision.accepted
        assert report.candidate_records > 0
        assert report.safety_records > 0
        assert report.candidate_median_q_error < float("inf")
        # the catalog's conditioned set now IS the accepted configuration
        conditioned = {
            str(sit) for sit in advisor_catalog.pool if not sit.is_base
        }
        assert conditioned == set(report.chosen)
        # base histograms are never touched by the advisor
        assert any(sit.is_base for sit in advisor_catalog.pool)

    def test_accepted_space_constraint_holds_on_the_catalog(
        self, advisor_catalog, feedback_queries
    ):
        budget = 1.0 + min(
            sit_space_bytes(sit)
            for sit in advisor_catalog.pool
            if not sit.is_base
        )
        config = AdvisorConfig(
            min_feedback=4, min_interval_s=0.0, space_budget_bytes=budget
        )
        advisor = SelfTuningAdvisor(advisor_catalog, config=config)
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        report = advisor.tick()
        assert report.status == ACCEPTED
        installed = sum(
            sit_space_bytes(sit)
            for sit in advisor_catalog.pool
            if not sit.is_base
        )
        assert installed <= budget
        assert report.decision.space_bytes <= budget

    def test_second_tick_is_stable(self, advisor_catalog, feedback_queries):
        """Re-tuning on the same traffic proposes the same configuration
        and does not churn the catalog."""
        advisor = SelfTuningAdvisor(advisor_catalog, config=LENIENT)
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        first = advisor.tick()
        assert first.status == ACCEPTED
        fingerprint = catalog_fingerprint(advisor_catalog)
        second = advisor.tick()
        assert second.status == ACCEPTED
        assert second.chosen == first.chosen
        assert not second.applied
        assert catalog_fingerprint(advisor_catalog) == fingerprint


class TestDeterminism:
    def test_same_seed_same_log_same_configuration(
        self, two_table_db, two_table_pool, feedback_queries
    ):
        from repro.catalog import StatisticsCatalog
        from repro.stats.builder import SITBuilder

        reports = []
        for _ in range(2):
            catalog = StatisticsCatalog.from_pool(
                two_table_pool,
                database=two_table_db,
                builder=SITBuilder(two_table_db),
            )
            advisor = SelfTuningAdvisor(catalog, config=LENIENT)
            drive_feedback(advisor, catalog, feedback_queries)
            reports.append(advisor.tick())
        first, second = reports
        assert first.status == second.status == ACCEPTED
        assert first.chosen == second.chosen
        assert first.candidate_median_q_error == pytest.approx(
            second.candidate_median_q_error
        )
        assert first.decision.worst_q_error == pytest.approx(
            second.decision.worst_q_error
        )

    def test_split_seed_feeds_the_tick(
        self, advisor_catalog, feedback_queries
    ):
        advisor = SelfTuningAdvisor(
            advisor_catalog,
            config=AdvisorConfig(
                min_feedback=4, min_interval_s=0.0, split_seed=123
            ),
        )
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        report = advisor.tick()
        # a different seed partitions differently but the tick still
        # completes with a verdict, never an exception
        assert report.status in (ACCEPTED, NO_SOLUTION_FOUND)


class TestNoSolutionFound:
    def test_impossible_q_error_never_mutates_the_catalog(
        self, advisor_catalog, feedback_queries
    ):
        """q-error >= 1 by construction, so ``max_q_error=0`` can never
        be satisfied: every tick must report no-solution-found and the
        catalog must stay bit-identical."""
        config = AdvisorConfig(
            min_feedback=4, min_interval_s=0.0, max_q_error=0.0
        )
        advisor = SelfTuningAdvisor(advisor_catalog, config=config)
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        fingerprint = catalog_fingerprint(advisor_catalog)
        for _ in range(3):
            report = advisor.tick()
            assert report.status == NO_SOLUTION_FOUND
            assert report.reason == "q_error"
            assert not report.applied
            assert report.catalog_version_after == report.catalog_version_before
            assert catalog_fingerprint(advisor_catalog) == fingerprint
        registry = advisor.metrics_registry().snapshot()["advisor"]
        assert registry["no_solution"] == 3.0
        assert registry["rejects_q_error"] == 3.0
        assert registry.get("accepts", 0.0) == 0.0

    def test_rejection_reports_every_violated_constraint(
        self, advisor_catalog, feedback_queries
    ):
        config = AdvisorConfig(
            min_feedback=4,
            min_interval_s=0.0,
            max_q_error=0.0,
            refresh_budget_s=0.0,
        )
        advisor = SelfTuningAdvisor(advisor_catalog, config=config)
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        report = advisor.tick()
        assert report.status == NO_SOLUTION_FOUND
        assert "q_error" in report.decision.violations


class TestWireDegradation:
    def test_missing_executor_skips_and_counts(
        self, advisor_catalog, feedback_queries
    ):
        advisor = SelfTuningAdvisor(advisor_catalog, config=LENIENT)
        advisor.executor = None  # engine becomes unavailable
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        fingerprint = catalog_fingerprint(advisor_catalog)
        report = advisor.tick()
        assert report.status == SKIPPED
        assert "safety evaluation unavailable" in report.reason
        assert not report.applied
        assert catalog_fingerprint(advisor_catalog) == fingerprint
        registry = advisor.metrics_registry().snapshot()["advisor"]
        assert registry["skipped_ticks"] == 1.0

    def test_raising_executor_skips_and_counts(
        self, advisor_catalog, feedback_queries
    ):
        class BrokenExecutor:
            def cardinality(self, predicates):
                raise RuntimeError("engine down")

        advisor = SelfTuningAdvisor(
            advisor_catalog, executor=BrokenExecutor(), config=LENIENT
        )
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        fingerprint = catalog_fingerprint(advisor_catalog)
        report = advisor.tick()
        assert report.status == SKIPPED
        assert catalog_fingerprint(advisor_catalog) == fingerprint


class TestScheduling:
    def test_deferred_below_min_feedback(
        self, advisor_catalog, feedback_queries
    ):
        advisor = SelfTuningAdvisor(
            advisor_catalog,
            config=AdvisorConfig(min_feedback=10_000, min_interval_s=0.0),
        )
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        report = advisor.tick()
        assert report.status == DEFERRED
        assert "min_feedback" in report.reason

    def test_ready_gates_on_feedback_then_interval(
        self, advisor_catalog, feedback_queries
    ):
        advisor = SelfTuningAdvisor(
            advisor_catalog,
            config=AdvisorConfig(min_feedback=4, min_interval_s=60.0),
        )
        assert not advisor.ready()  # no feedback yet
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        assert advisor.ready()  # enough feedback, never ticked
        advisor.tick()
        assert not advisor.ready(now=advisor._last_tick + 1.0)
        assert advisor.ready(now=advisor._last_tick + 61.0)

    def test_drift_triggers_before_the_interval(
        self, advisor_catalog, feedback_queries
    ):
        """A feedback-distribution shift (rolling median moved by the
        configured factor) makes the advisor ready without waiting out
        ``min_interval_s``; a stable distribution still waits."""
        advisor = SelfTuningAdvisor(
            advisor_catalog,
            config=AdvisorConfig(
                min_feedback=4, min_interval_s=60.0, drift_threshold=3.0
            ),
        )
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        advisor.tick()
        soon = advisor._last_tick + 1.0
        assert not advisor.ready(now=soon)
        assert advisor.drift_ratio() == pytest.approx(1.0)

        # the workload's cardinality profile jumps an order of magnitude
        baseline = advisor._drift_baseline
        for index in range(advisor.config.min_feedback):
            advisor.observe(
                frozenset(feedback_queries[0].predicates),
                baseline * 10.0 + index,
            )
        assert advisor.drift_ratio() >= 3.0
        assert advisor.ready(now=soon)
        advisor.tick()
        assert advisor.metrics.counter("advisor.drift_ticks").value == 1
        # re-baselined: the same distribution no longer reads as drift
        assert advisor.drift_ratio() == pytest.approx(1.0)
        assert not advisor.ready(now=advisor._last_tick + 1.0)

    def test_drift_disabled_by_default(
        self, advisor_catalog, feedback_queries
    ):
        advisor = SelfTuningAdvisor(
            advisor_catalog,
            config=AdvisorConfig(min_feedback=4, min_interval_s=60.0),
        )
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        advisor.tick()
        baseline = advisor._drift_baseline
        for _ in range(advisor.config.min_feedback):
            advisor.observe(
                frozenset(feedback_queries[0].predicates), baseline * 100.0
            )
        assert not advisor.ready(now=advisor._last_tick + 1.0)

    def test_history_is_bounded(self, advisor_catalog, feedback_queries):
        advisor = SelfTuningAdvisor(
            advisor_catalog,
            config=AdvisorConfig(min_feedback=10_000, min_interval_s=0.0),
        )
        for _ in range(HISTORY_LIMIT + 7):
            advisor.tick()  # cheap deferred ticks
        assert len(advisor.history) == HISTORY_LIMIT


class TestObservability:
    def test_stats_snapshot_populates_the_advisor_namespace(
        self, advisor_catalog, feedback_queries
    ):
        advisor = SelfTuningAdvisor(advisor_catalog, config=LENIENT)
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        advisor.tick()
        snapshot = advisor.stats_snapshot()
        assert snapshot.advisor["ticks"] == 1.0
        assert snapshot.advisor["proposals"] == 1.0
        assert snapshot.advisor["feedback_appended"] == float(
            len(feedback_queries)
        )
        assert snapshot.advisor["universe_size"] >= 1.0
        assert snapshot.meta["subsystem"] == "advisor"

    def test_status_is_json_ready(self, advisor_catalog, feedback_queries):
        import json

        advisor = SelfTuningAdvisor(advisor_catalog, config=LENIENT)
        drive_feedback(advisor, advisor_catalog, feedback_queries)
        advisor.tick()
        status = advisor.status()
        json.dumps(status)  # no exotic types anywhere
        assert status["ticks"] == 1
        assert status["last_report"]["status"] in (
            ACCEPTED,
            NO_SOLUTION_FOUND,
        )
        assert status["current_conditioned_sits"] == sorted(
            str(sit) for sit in advisor_catalog.pool if not sit.is_base
        )
