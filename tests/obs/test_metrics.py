"""Unit tests for the labeled counter/gauge/histogram registry."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Counter, Gauge, HistogramMetric, MetricsRegistry


class TestInstruments:
    def test_counter_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("counters.matcher_calls")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("counters.x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("timings.analysis_seconds")
        gauge.set(1.5)
        gauge.add(0.5)
        assert gauge.value == 2.0

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("metrics.latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_empty_histogram_view(self):
        histogram = MetricsRegistry().histogram("metrics.latency")
        assert histogram.value_view() == {
            "count": 0,
            "sum": 0.0,
            "min": 0.0,
            "max": 0.0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }


class TestHistogramQuantiles:
    def test_exact_below_reservoir_capacity(self):
        histogram = MetricsRegistry().histogram("metrics.latency")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.quantile(0.5) == pytest.approx(50.5)
        assert histogram.quantile(0.95) == pytest.approx(95.05)
        assert histogram.quantile(0.99) == pytest.approx(99.01)

    def test_value_view_includes_quantile_keys(self):
        histogram = MetricsRegistry().histogram("metrics.latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        view = histogram.value_view()
        assert {"p50", "p95", "p99"} <= set(view)
        assert view["p50"] == pytest.approx(2.5)

    def test_quantile_validates_range(self):
        histogram = MetricsRegistry().histogram("metrics.latency")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        histogram = MetricsRegistry().histogram("metrics.latency")
        assert histogram.quantile(0.5) == 0.0

    def test_reservoir_bounds_memory_and_stays_representative(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        histogram = MetricsRegistry().histogram("metrics.latency")
        for value in range(10 * RESERVOIR_SIZE):
            histogram.observe(float(value))
        assert len(histogram._reservoir) == RESERVOIR_SIZE
        assert histogram.count == 10 * RESERVOIR_SIZE
        # a uniform sample of U[0, N) keeps the median near N/2
        median = histogram.quantile(0.5)
        assert 0.3 * 10 * RESERVOIR_SIZE < median < 0.7 * 10 * RESERVOIR_SIZE

    def test_quantiles_deterministic_for_fixed_sequence(self):
        views = []
        for _ in range(2):
            histogram = MetricsRegistry().histogram("metrics.latency")
            for value in range(2000):
                histogram.observe(float(value % 97))
            views.append(histogram.value_view())
        assert views[0] == views[1]

    def test_merge_combines_reservoirs(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for value in (1.0, 2.0):
            a.histogram("metrics.latency").observe(value)
        for value in (9.0, 10.0):
            b.histogram("metrics.latency").observe(value)
        a.merge(b)
        merged = a.histogram("metrics.latency")
        assert merged.count == 4
        assert merged.quantile(0.0) == 1.0
        assert merged.quantile(1.0) == 10.0
        assert merged.quantile(0.5) == pytest.approx(5.5)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("counters.a") is registry.counter("counters.a")
        assert len(registry) == 1

    def test_labels_address_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("counters.calls", engine="bitmask").inc()
        registry.counter("counters.calls", engine="legacy").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {
            "calls{engine=bitmask}": 1.0,
            "calls{engine=legacy}": 2.0,
        }

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("counters.a")
        with pytest.raises(TypeError):
            registry.gauge("counters.a")

    def test_snapshot_nests_by_dotted_namespace(self):
        registry = MetricsRegistry()
        registry.gauge("timings.analysis_seconds").set(0.5)
        registry.counter("counters.matcher_calls").inc(3)
        registry.counter("bare_name").inc()
        snapshot = registry.snapshot()
        assert snapshot["timings"] == {"analysis_seconds": 0.5}
        assert snapshot["counters"] == {"matcher_calls": 3.0}
        assert snapshot["metrics"] == {"bare_name": 1.0}

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("counters.calls").inc(1)
        a.gauge("caches.memo_entries").set(10)
        a.histogram("metrics.latency").observe(1.0)
        b.counter("counters.calls").inc(2)
        b.gauge("caches.memo_entries").set(20)
        b.histogram("metrics.latency").observe(3.0)
        a.merge(b)
        assert a.counter("counters.calls").value == 3.0
        assert a.gauge("caches.memo_entries").value == 20.0
        merged = a.histogram("metrics.latency")
        assert merged.count == 2 and merged.min == 1.0 and merged.max == 3.0

    def test_iter_and_kinds(self):
        registry = MetricsRegistry()
        registry.counter("counters.a")
        registry.gauge("timings.b")
        registry.histogram("metrics.c")
        kinds = {type(instrument) for instrument in registry}
        assert kinds == {Counter, Gauge, HistogramMetric}

    def test_to_json_is_valid(self):
        registry = MetricsRegistry()
        registry.counter("counters.a", table="R").inc()
        payload = json.loads(registry.to_json())
        assert payload == {"counters": {"a{table=R}": 1.0}}
