"""Workload-level roll-up of per-query ``StatsSnapshot``s."""

from __future__ import annotations

import pytest

from repro.bench.harness import Harness, QueryMetrics, TechniqueReport
from repro.estimators import make_gs_nind
from repro.engine.expressions import Query
from repro.obs.snapshot import StatsSnapshot
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool
from repro.workload.queries import WorkloadConfig, WorkloadGenerator


def _metrics(snapshot: StatsSnapshot | None) -> QueryMetrics:
    return QueryMetrics(
        query=Query(frozenset()),
        mean_absolute_error=0.0,
        full_query_error=0.0,
        vm_calls=0,
        analysis_seconds=0.0,
        estimation_seconds=0.0,
        snapshot=snapshot,
    )


class TestAggregateMetrics:
    def test_counters_sum_and_sizes_keep_last(self):
        report = TechniqueReport("GS-nInd")
        report.per_query.append(
            _metrics(
                StatsSnapshot(
                    timings={"analysis_seconds": 0.5},
                    counters={"matcher_calls": 3, "universe_size": 5},
                    caches={"memo_entries": 10, "match_cache_hits": 2},
                )
            )
        )
        report.per_query.append(
            _metrics(
                StatsSnapshot(
                    timings={"analysis_seconds": 0.25},
                    counters={"matcher_calls": 4, "universe_size": 7},
                    caches={"memo_entries": 20, "match_cache_hits": 1},
                )
            )
        )
        registry = report.aggregate_metrics()
        assert registry.gauge("timings.analysis_seconds").value == 0.75
        assert registry.counter("counters.matcher_calls").value == 7.0
        # a size, not an event count: keeps the last query's value
        assert registry.gauge("counters.universe_size").value == 7.0
        assert registry.gauge("caches.memo_entries").value == 20.0
        # hit/miss counts accumulate
        assert registry.counter("caches.match_cache_hits").value == 3.0

    def test_snapshotless_queries_are_skipped(self):
        report = TechniqueReport("GVM")
        report.per_query.append(_metrics(None))
        assert len(report.aggregate_metrics()) == 0

    def test_aggregate_snapshot_meta(self):
        report = TechniqueReport("GS-Diff")
        report.per_query.append(
            _metrics(StatsSnapshot(counters={"matcher_calls": 1}))
        )
        snapshot = report.aggregate_snapshot()
        assert snapshot.meta == {"technique": "GS-Diff", "queries": 1}
        assert snapshot.counters["matcher_calls"] == 1.0


class TestHarnessSnapshots:
    @pytest.fixture(scope="class")
    def tiny_evaluation(self, tiny_snowflake):
        generator = WorkloadGenerator(
            tiny_snowflake, WorkloadConfig(join_count=2, filter_count=1, seed=3)
        )
        queries = generator.generate(2)
        pool = build_workload_pool(SITBuilder(tiny_snowflake), queries, max_joins=1)
        harness = Harness(tiny_snowflake)
        return harness.evaluate(
            queries,
            pool,
            {"GS-nInd": make_gs_nind},
            max_subqueries=8,
            tracing=True,
        )

    def test_per_query_snapshots_attached(self, tiny_evaluation):
        report = tiny_evaluation.report("GS-nInd")
        for metrics in report.per_query:
            assert metrics.snapshot is not None
            assert metrics.snapshot.meta["tracing"] is True
            assert metrics.snapshot.caches["memo_entries"] > 0

    def test_tracing_stages_visible_in_rollup(self, tiny_evaluation):
        snapshot = tiny_evaluation.report("GS-nInd").aggregate_snapshot()
        assert snapshot.timings["dp_enumeration_seconds"] > 0.0
        assert snapshot.counters["matcher_calls"] > 0

    def test_gvm_has_no_snapshot(self, tiny_evaluation):
        for metrics in tiny_evaluation.report("GVM").per_query:
            assert metrics.snapshot is None
