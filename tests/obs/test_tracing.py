"""Tracing integration: disabled-by-default contract, bit-identical
results, and per-stage population when enabled."""

from __future__ import annotations

import pytest

from repro.core.errors import NIndError
from repro.estimators import make_gs_diff
from repro.core.get_selectivity import GetSelectivity
from repro.obs.trace import Trace
from repro.optimizer.integration import MemoCoupledEstimator


@pytest.fixture
def predicates(two_table_join, two_table_attrs):
    from repro.core.predicates import FilterPredicate

    return frozenset(
        {
            two_table_join,
            FilterPredicate(two_table_attrs["Ra"], 10.0, 60.0),
            FilterPredicate(two_table_attrs["Sb"], 20.0, 80.0),
        }
    )


class TestDisabledByDefault:
    def test_trace_is_none_everywhere(self, two_table_db, two_table_pool):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        assert estimator.trace is None
        assert estimator.algorithm.trace is None
        assert estimator.algorithm.matcher.trace is None

    @pytest.mark.parametrize("engine", ["bitmask", "legacy"])
    def test_results_bit_identical_with_and_without_tracing(
        self, two_table_pool, predicates, engine
    ):
        plain = GetSelectivity.create(
            two_table_pool, NIndError(), engine=engine
        )
        traced = GetSelectivity.create(
            two_table_pool, NIndError(), engine=engine
        )
        traced.enable_tracing()
        untraced_result = plain(predicates)
        traced_result = traced(predicates)
        assert traced_result.selectivity == untraced_result.selectivity
        assert traced_result.error == untraced_result.error
        assert traced_result.decomposition == untraced_result.decomposition

    def test_tracing_adds_no_memo_keys(self, two_table_pool, predicates):
        plain = GetSelectivity.create(two_table_pool, NIndError())
        traced = GetSelectivity.create(two_table_pool, NIndError())
        traced.enable_tracing()
        plain(predicates)
        traced(predicates)
        assert set(plain._memo) == set(traced._memo)
        assert set(plain._estimate_cache) == set(traced._estimate_cache)

    def test_disabled_snapshot_has_no_stage_timings(
        self, two_table_pool, predicates
    ):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        algorithm(predicates)
        snapshot = algorithm.stats_snapshot()
        assert snapshot.meta["tracing"] is False
        assert "dp_enumeration_seconds" not in snapshot.timings


class TestEnabledTrace:
    @pytest.mark.parametrize("engine", ["bitmask", "legacy"])
    def test_stages_populated(self, two_table_pool, predicates, engine):
        algorithm = GetSelectivity.create(
            two_table_pool, NIndError(), engine=engine
        )
        trace = algorithm.enable_tracing()
        algorithm(predicates)
        assert trace.timings["dp_enumeration"] > 0.0
        assert trace.calls["factor_matching"] >= 1
        assert trace.calls["histogram_join"] >= 1
        assert trace.calls["error_scoring"] >= 1

    def test_candidate_funnel_counters(self, two_table_pool, predicates):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        trace = algorithm.enable_tracing()
        algorithm(predicates)
        considered = trace.counters["sit_candidates_considered"]
        matched = trace.counters["sit_candidates_matched"]
        assert considered >= matched >= 1

    def test_memo_hit_counters(self, two_table_pool, predicates):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        trace = algorithm.enable_tracing()
        algorithm(predicates)
        algorithm(predicates)  # answered wholly from the memo
        assert trace.counters["memo_hits"] >= 1

    def test_stage_timings_enter_snapshot(self, two_table_pool, predicates):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        algorithm.enable_tracing()
        algorithm(predicates)
        snapshot = algorithm.stats_snapshot()
        assert snapshot.meta["tracing"] is True
        assert snapshot.timings["dp_enumeration_seconds"] > 0.0
        assert snapshot.counters["factor_matching_calls"] >= 1

    def test_disable_tracing_detaches_everywhere(
        self, two_table_db, two_table_pool
    ):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        trace = estimator.enable_tracing()
        assert isinstance(trace, Trace)
        assert estimator.algorithm.matcher.trace is trace
        estimator.disable_tracing()
        assert estimator.trace is None
        assert estimator.algorithm.matcher.trace is None

    def test_external_trace_can_be_shared(self, two_table_pool, predicates):
        shared = Trace()
        a = GetSelectivity.create(two_table_pool, NIndError())
        b = GetSelectivity.create(two_table_pool, NIndError())
        a.enable_tracing(shared)
        b.enable_tracing(shared)
        a(predicates)
        b(predicates)
        assert shared.calls["dp_enumeration"] >= 2

    def test_reset_clears_trace_accumulators(self, two_table_pool, predicates):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        trace = algorithm.enable_tracing()
        algorithm(predicates)
        algorithm.reset()
        assert not trace.timings and not trace.counters


class TestEstimatorTracing:
    def test_parse_bind_stage(self, tiny_snowflake):
        from repro.stats.builder import SITBuilder
        from repro.stats.pool import build_workload_pool
        from repro.sql import parse_query

        sql = (
            "SELECT * FROM sales, customer "
            "WHERE sales.customer_id = customer.customer_id"
        )
        query = parse_query(sql, tiny_snowflake.schema)
        pool = build_workload_pool(SITBuilder(tiny_snowflake), [query], max_joins=1)
        estimator = make_gs_diff(tiny_snowflake, pool)
        trace = estimator.enable_tracing()
        estimator.cardinality_sql(sql)
        assert trace.calls["parse_bind"] == 1
        assert trace.timings["parse_bind"] > 0.0


class TestMemoCoupledTracing:
    def test_stages_and_counters(self, two_table_db, two_table_pool, predicates):
        from repro.engine.expressions import Query

        query = Query(predicates)
        estimator = MemoCoupledEstimator(
            two_table_db, two_table_pool, NIndError()
        )
        trace = estimator.enable_tracing()
        selectivity = estimator.selectivity(query)
        assert 0.0 <= selectivity <= 1.0
        assert trace.calls["factor_matching"] >= 1
        snapshot = estimator.stats_snapshot()
        assert snapshot.counters["entries_scored"] >= 1
        assert snapshot.meta["estimator"] == "MemoCoupled"
