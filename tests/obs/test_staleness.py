"""StalenessTracker: exact pending-write accounting under a fake clock."""

from __future__ import annotations

import pytest

from repro.obs import StalenessTracker


@pytest.fixture()
def clocked():
    now = [100.0]
    tracker = StalenessTracker(clock=lambda: now[0])
    return now, tracker


class TestPendingWrites:
    def test_untracked_table_is_fresh(self, clocked):
        _, tracker = clocked
        assert tracker.staleness_s("R") == 0.0
        assert tracker.max_staleness_s() == 0.0
        assert tracker.quiesced()

    def test_staleness_is_age_of_oldest_pending_write(self, clocked):
        now, tracker = clocked
        tracker.note_write("R")  # at 100
        now[0] = 104.0
        tracker.note_write("R")  # at 104
        now[0] = 110.0
        assert tracker.staleness_s("R") == pytest.approx(10.0)
        assert tracker.max_staleness_s() == pytest.approx(10.0)
        assert not tracker.quiesced()

    def test_note_applied_clears_through_not_beyond(self, clocked):
        now, tracker = clocked
        first = tracker.note_write("R")
        now[0] = 105.0
        tracker.note_write("R")
        # the epoch only covered the first write
        tracker.note_applied("R", through=first)
        now[0] = 106.0
        assert tracker.staleness_s("R") == pytest.approx(1.0)
        tracker.note_applied("R", through=105.0)
        assert tracker.staleness_s("R") == 0.0
        assert tracker.quiesced()

    def test_retract_removes_the_shed_write(self, clocked):
        now, tracker = clocked
        when = tracker.note_write("R")
        tracker.retract_write("R", when)
        now[0] = 200.0
        assert tracker.staleness_s("R") == 0.0
        assert tracker.status()["tables"]["R"]["writes"] == 0

    def test_retract_unknown_is_a_no_op(self, clocked):
        _, tracker = clocked
        tracker.retract_write("R", 1.0)
        tracker.note_write("R", when=5.0)
        tracker.retract_write("R", 4.0)
        assert tracker.status()["tables"]["R"]["writes"] == 1

    def test_staleness_for_is_the_worst_over_tables(self, clocked):
        now, tracker = clocked
        tracker.note_write("R", when=90.0)
        tracker.note_write("S", when=99.0)
        assert tracker.staleness_for(["R", "S"]) == pytest.approx(10.0)
        assert tracker.staleness_for(["S"]) == pytest.approx(1.0)
        assert tracker.staleness_for(["T"]) == 0.0


class TestDrift:
    def test_quantiles_over_the_rolling_window(self, clocked):
        _, tracker = clocked
        assert tracker.drift_quantile(0.95) == 1.0  # unprobed
        for value in (1.0, 2.0, 4.0, 8.0):
            tracker.record_drift(value)
        assert tracker.drift_probes == 4
        assert tracker.drift_quantile(0.5) == pytest.approx(4.0)
        assert tracker.drift_quantile(0.95) == pytest.approx(8.0)

    def test_drift_is_clamped_to_q_error_domain(self, clocked):
        _, tracker = clocked
        tracker.record_drift(0.25)  # a ratio below 1 is still "no worse"
        assert tracker.drift_quantile(0.5) == 1.0

    def test_window_is_bounded(self):
        tracker = StalenessTracker(drift_window=4)
        for value in (100.0, 1.0, 1.0, 1.0, 1.0):
            tracker.record_drift(value)
        assert tracker.drift_quantile(0.95) == 1.0  # the spike rolled out
        assert tracker.drift_probes == 5

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="drift_window"):
            StalenessTracker(drift_window=0)


class TestSurfacing:
    def test_metrics_shape(self, clocked):
        now, tracker = clocked
        tracker.note_write("R", when=95.0)
        tracker.note_write("S", when=100.0)
        tracker.note_applied("S", through=100.0)
        tracker.record_drift(3.0)
        metrics = tracker.metrics()
        assert metrics["tables_tracked"] == 2.0
        assert metrics["tables_pending"] == 1.0
        assert metrics["staleness_s.R"] == pytest.approx(5.0)
        assert metrics["staleness_s.S"] == 0.0
        assert metrics["staleness_s_max"] == pytest.approx(5.0)
        assert metrics["drift_q_error_p95"] == pytest.approx(3.0)

    def test_status_is_json_ready(self, clocked):
        import json

        _, tracker = clocked
        tracker.note_write("R")
        tracker.note_applied("R", through=100.0)
        status = tracker.status()
        json.dumps(status)
        assert status["tables"]["R"] == {
            "writes": 1,
            "applied_epochs": 1,
            "staleness_s": 0.0,
        }
