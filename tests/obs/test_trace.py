"""Unit tests for the per-stage tracing primitives."""

from __future__ import annotations

import json
import time

from repro.obs.trace import STAGES, Span, Trace


class TestSpan:
    def test_span_records_into_trace(self):
        trace = Trace()
        with trace.span("dp_enumeration"):
            time.sleep(0.001)
        assert trace.timings["dp_enumeration"] > 0.0
        assert trace.calls["dp_enumeration"] == 1

    def test_span_is_reusable_context_object(self):
        trace = Trace()
        span = trace.span("factor_matching")
        assert isinstance(span, Span)
        with span:
            pass
        assert span.seconds >= 0.0
        assert trace.calls["factor_matching"] == 1

    def test_nested_spans_accumulate_additively(self):
        trace = Trace()
        with trace.span("dp_enumeration"):
            with trace.span("dp_enumeration"):
                pass
        assert trace.calls["dp_enumeration"] == 2


class TestTrace:
    def test_add_time_accumulates(self):
        trace = Trace()
        trace.add_time("histogram_join", 0.25)
        trace.add_time("histogram_join", 0.75, calls=3)
        assert trace.timings["histogram_join"] == 1.0
        assert trace.calls["histogram_join"] == 4

    def test_count(self):
        trace = Trace()
        trace.count("masks_explored")
        trace.count("masks_explored", 4)
        assert trace.counters["masks_explored"] == 5

    def test_merge(self):
        a, b = Trace(), Trace()
        a.add_time("dp_enumeration", 1.0)
        a.count("memo_hits", 2)
        b.add_time("dp_enumeration", 0.5, calls=2)
        b.add_time("error_scoring", 0.25)
        b.count("memo_hits", 3)
        a.merge(b)
        assert a.timings["dp_enumeration"] == 1.5
        assert a.calls["dp_enumeration"] == 3
        assert a.timings["error_scoring"] == 0.25
        assert a.counters["memo_hits"] == 5

    def test_clear(self):
        trace = Trace()
        trace.add_time("dp_enumeration", 1.0)
        trace.count("memo_hits")
        trace.clear()
        assert not trace.timings and not trace.calls and not trace.counters

    def test_stages_canonical_order_first(self):
        trace = Trace()
        trace.add_time("custom_stage", 0.1)
        trace.add_time("error_scoring", 0.2)
        trace.add_time("parse_bind", 0.3)
        names = [stage for stage, _, _ in trace.stages()]
        assert names == ["parse_bind", "error_scoring", "custom_stage"]

    def test_canonical_stage_list(self):
        assert STAGES == (
            "parse_bind",
            "dp_enumeration",
            "factor_matching",
            "histogram_join",
            "error_scoring",
        )

    def test_snapshot_and_json_roundtrip(self):
        trace = Trace()
        trace.add_time("dp_enumeration", 0.5, calls=2)
        trace.count("masks_pruned", 7)
        snapshot = trace.snapshot()
        assert snapshot["timings"] == {"dp_enumeration": 0.5}
        assert snapshot["calls"] == {"dp_enumeration": 2}
        assert snapshot["counters"] == {"masks_pruned": 7}
        assert json.loads(trace.to_json()) == snapshot
