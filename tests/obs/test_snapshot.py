"""Unit tests for the unified ``StatsSnapshot`` schema."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import NAMESPACES, StatsSnapshot, deprecated


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.gauge("timings.analysis_seconds").set(0.25)
    registry.counter("counters.matcher_calls").inc(7)
    registry.gauge("caches.memo_entries").set(12)
    registry.counter("caches.match_cache_hits").inc(3)
    return registry


class TestStatsSnapshot:
    def test_namespaces(self):
        assert NAMESPACES == (
            "timings",
            "counters",
            "caches",
            "catalog",
            "service",
            "resilience",
            "plan_cache",
            "cluster",
            "advisor",
            "ingest",
        )

    def test_from_registry_groups_namespaces(self):
        snapshot = StatsSnapshot.from_registry(
            _sample_registry(), meta={"engine": "bitmask"}
        )
        assert snapshot.timings == {"analysis_seconds": 0.25}
        assert snapshot.counters == {"matcher_calls": 7.0}
        assert snapshot.caches == {
            "memo_entries": 12.0,
            "match_cache_hits": 3.0,
        }
        assert snapshot.meta["engine"] == "bitmask"

    def test_unknown_namespace_folds_into_counters(self):
        registry = _sample_registry()
        registry.counter("custom.thing").inc(2)
        snapshot = StatsSnapshot.from_registry(registry)
        assert snapshot.counters["custom.thing"] == 2.0

    def test_immutable(self):
        snapshot = StatsSnapshot(timings={"analysis_seconds": 1.0})
        with pytest.raises(TypeError):
            snapshot.timings["analysis_seconds"] = 2.0  # type: ignore[index]

    def test_namespace_accessor(self):
        snapshot = StatsSnapshot(counters={"matcher_calls": 1.0})
        assert snapshot.namespace("counters") == {"matcher_calls": 1.0}
        with pytest.raises(KeyError):
            snapshot.namespace("meta")

    def test_flat_with_explicit_keys_is_exact(self):
        snapshot = StatsSnapshot.from_registry(_sample_registry())
        flat = snapshot.flat(
            {
                "matcher_calls": "counters.matcher_calls",
                "memo_entries": "caches.memo_entries",
                "analysis_seconds": "timings.analysis_seconds",
            }
        )
        assert flat == {
            "matcher_calls": 7.0,
            "memo_entries": 12.0,
            "analysis_seconds": 0.25,
        }

    def test_flat_without_keys_flattens_everything_numeric(self):
        snapshot = StatsSnapshot.from_registry(_sample_registry())
        flat = snapshot.flat()
        assert flat["matcher_calls"] == 7.0
        assert flat["memo_entries"] == 12.0
        assert flat["analysis_seconds"] == 0.25

    def test_flat_collision_keeps_namespaced_form(self):
        snapshot = StatsSnapshot(
            timings={"x": 1.0}, counters={"x": 2.0}
        )
        flat = snapshot.flat()
        assert flat["x"] == 1.0
        assert flat["counters.x"] == 2.0

    def test_to_dict_and_json(self):
        snapshot = StatsSnapshot(
            timings={"analysis_seconds": 0.5}, meta={"engine": "legacy"}
        )
        payload = json.loads(snapshot.to_json())
        assert payload["timings"] == {"analysis_seconds": 0.5}
        assert payload["meta"] == {"engine": "legacy"}
        assert set(snapshot.to_dict()) == {
            "timings",
            "counters",
            "caches",
            "catalog",
            "service",
            "resilience",
            "plan_cache",
            "cluster",
            "advisor",
            "ingest",
            "meta",
        }

    def test_service_namespace_round_trips(self):
        registry = _sample_registry()
        registry.gauge("service.queue_depth").set(3)
        registry.counter("service.served").inc(10)
        snapshot = StatsSnapshot.from_registry(registry)
        assert snapshot.service == {"queue_depth": 3.0, "served": 10.0}
        assert snapshot.namespace("service")["served"] == 10.0
        assert snapshot.to_dict()["service"]["queue_depth"] == 3.0


class TestDeprecatedHelper:
    def test_emits_deprecation_warning(self):
        with pytest.deprecated_call(match="old thing"):
            _caller_of_deprecated()


def _caller_of_deprecated() -> None:
    deprecated("old thing is deprecated")
