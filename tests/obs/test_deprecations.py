"""Removed deprecation surfaces stay removed; replacements work.

Each release's shims get exactly one release of ``DeprecationWarning``
grace before removal.  These tests pin the *removals* (the old
spellings raise ``ImportError``/``TypeError``/``AttributeError``) and
exercise the replacement surfaces side by side, so a regression that
silently resurrects an old shim fails loudly.  Pinned here:

* PR2-era: flat ``stats`` dicts, the ``legacy=`` engine kwarg and the
  pool query quartet;
* the ``repro.core.estimator`` module (``CardinalityEstimator`` →
  :class:`repro.estimators.SITEstimator`);
* the pre-``connect()`` client names (``Client``, ``TCPClient``).
"""

from __future__ import annotations

import pytest

from repro.core.errors import NIndError
from repro.core.get_selectivity import GetSelectivity, LegacyGetSelectivity
from repro.estimators import SITEstimator
from repro.optimizer.integration import MemoCoupledEstimator


@pytest.fixture
def predicates(two_table_join, two_table_attrs):
    from repro.core.predicates import FilterPredicate

    return frozenset(
        {two_table_join, FilterPredicate(two_table_attrs["Ra"], 10.0, 60.0)}
    )


class TestEngineFactory:
    def test_create_bitmask_default(self, two_table_pool):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        assert type(algorithm) is GetSelectivity
        assert algorithm.engine == "bitmask"

    def test_create_legacy(self, two_table_pool):
        algorithm = GetSelectivity.create(
            two_table_pool, NIndError(), engine="legacy"
        )
        assert type(algorithm) is LegacyGetSelectivity
        assert algorithm.engine == "legacy"

    def test_create_rejects_unknown_engine(self, two_table_pool):
        with pytest.raises(ValueError, match="engine"):
            GetSelectivity.create(two_table_pool, NIndError(), engine="quantum")

    def test_legacy_kwarg_is_removed(self, two_table_pool):
        with pytest.raises(TypeError, match="legacy"):
            GetSelectivity(two_table_pool, NIndError(), legacy=True)

    def test_estimator_legacy_kwarg_is_removed(
        self, two_table_db, two_table_pool
    ):
        with pytest.raises(TypeError, match="legacy"):
            SITEstimator(
                two_table_db, two_table_pool, NIndError(), legacy=True
            )

    def test_plain_construction_does_not_warn(self, two_table_pool, recwarn):
        GetSelectivity(two_table_pool, NIndError())
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_estimator_engine_kwarg_is_silent(
        self, two_table_db, two_table_pool, recwarn
    ):
        estimator = SITEstimator(
            two_table_db, two_table_pool, NIndError(), engine="legacy"
        )
        assert estimator.engine == "legacy"
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestFlatStatsRemoved:
    def test_get_selectivity_has_no_stats(self, two_table_pool, predicates):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        algorithm(predicates)
        assert not hasattr(algorithm, "stats")
        snapshot = algorithm.stats_snapshot()
        assert "match_cache_entries" in snapshot.caches
        assert "matcher_calls" in snapshot.counters

    def test_estimator_has_no_stats(
        self, two_table_db, two_table_pool, predicates
    ):
        estimator = SITEstimator(two_table_db, two_table_pool, NIndError())
        estimator.algorithm(predicates)
        assert not hasattr(estimator, "stats")
        snapshot = estimator.stats_snapshot()
        assert snapshot.meta["estimator"] == estimator.name

    def test_memo_coupled_has_no_stats(self, two_table_db, two_table_pool):
        estimator = MemoCoupledEstimator(
            two_table_db, two_table_pool, NIndError()
        )
        assert not hasattr(estimator, "stats")
        snapshot = estimator.stats_snapshot()
        assert snapshot.meta["estimator"] == "MemoCoupled"

    def test_flat_remains_as_generic_utility(self, two_table_pool, predicates):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        algorithm(predicates)
        flat = algorithm.stats_snapshot().flat()
        assert flat["matcher_calls"] >= 1.0


class TestPoolQueryShimsRemoved:
    def test_quartet_is_gone(self, two_table_pool):
        for name in (
            "for_attribute",
            "base",
            "with_expression_member",
            "expressions_for_attribute",
        ):
            assert not hasattr(two_table_pool, name)

    def test_find_conjunctive_criteria(
        self, two_table_pool, two_table_attrs, two_table_join
    ):
        attribute = two_table_attrs["Ra"]
        conditioned = two_table_pool.find(
            attribute, expression_superset=frozenset({two_table_join})
        )
        assert {sit.attribute for sit in conditioned} == {attribute}
        base_only = two_table_pool.find(attribute, base_only=True)
        assert all(sit.is_base for sit in base_only)
        assert two_table_pool.find(
            attribute, expression_superset=frozenset()
        ) == base_only

    def test_find_member(self, two_table_pool, two_table_join):
        members = two_table_pool.find(expression_member=two_table_join)
        assert members, "the fixture pool has SITs conditioned on the join"
        assert all(two_table_join in sit.expression for sit in members)

    def test_new_surface_is_silent(
        self, two_table_pool, two_table_attrs, recwarn
    ):
        attribute = two_table_attrs["Ra"]
        two_table_pool.find(attribute)
        two_table_pool.find_base(attribute)
        two_table_pool.find_expressions(attribute)
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestEstimatorShimRemoved:
    """``repro.core.estimator`` had its one release of grace and is gone."""

    def test_module_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.core.estimator  # noqa: F401

    def test_core_package_no_longer_exports_the_old_name(self):
        import repro
        import repro.core

        assert not hasattr(repro.core, "CardinalityEstimator")
        assert not hasattr(repro, "CardinalityEstimator")

    def test_factories_live_on_in_estimators(self, two_table_db, two_table_pool):
        from repro.estimators import make_gs_diff

        estimator = make_gs_diff(two_table_db, two_table_pool)
        assert isinstance(estimator, SITEstimator)


class TestClientShimsRemoved:
    """``Client``/``TCPClient`` had their release of grace and are gone;
    ``connect()`` is the only construction path."""

    def test_names_are_gone(self):
        import repro
        import repro.service
        import repro.service.client

        for module in (repro, repro.service, repro.service.client):
            assert not hasattr(module, "Client")
            assert not hasattr(module, "TCPClient")

    def test_import_raises(self):
        with pytest.raises(ImportError):
            from repro.service import Client  # noqa: F401
        with pytest.raises(ImportError):
            from repro.service import TCPClient  # noqa: F401

    def test_connect_replaces_in_process(self, two_table_pool, two_table_db):
        from repro.service import InProcessClient, connect

        assert not hasattr(InProcessClient, "in_process")
        with connect(two_table_pool, database=two_table_db) as client:
            assert isinstance(client, InProcessClient)
