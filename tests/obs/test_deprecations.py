"""Every pre-unification API keeps working for one release — behind a
``DeprecationWarning`` — and agrees with its replacement."""

from __future__ import annotations

import pytest

from repro.core.errors import NIndError
from repro.core.estimator import CardinalityEstimator
from repro.core.get_selectivity import (
    LEGACY_STATS_KEYS,
    GetSelectivity,
    LegacyGetSelectivity,
)
from repro.optimizer.integration import (
    MEMO_LEGACY_STATS_KEYS,
    MemoCoupledEstimator,
)


@pytest.fixture
def predicates(two_table_join, two_table_attrs):
    from repro.core.predicates import FilterPredicate

    return frozenset(
        {two_table_join, FilterPredicate(two_table_attrs["Ra"], 10.0, 60.0)}
    )


class TestEngineFactory:
    def test_create_bitmask_default(self, two_table_pool):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        assert type(algorithm) is GetSelectivity
        assert algorithm.engine == "bitmask"

    def test_create_legacy(self, two_table_pool):
        algorithm = GetSelectivity.create(
            two_table_pool, NIndError(), engine="legacy"
        )
        assert type(algorithm) is LegacyGetSelectivity
        assert algorithm.engine == "legacy"

    def test_create_rejects_unknown_engine(self, two_table_pool):
        with pytest.raises(ValueError, match="engine"):
            GetSelectivity.create(two_table_pool, NIndError(), engine="quantum")

    def test_legacy_kwarg_warns_and_dispatches(self, two_table_pool):
        with pytest.deprecated_call(match="legacy"):
            algorithm = GetSelectivity(two_table_pool, NIndError(), legacy=True)
        assert type(algorithm) is LegacyGetSelectivity
        with pytest.deprecated_call(match="legacy"):
            algorithm = GetSelectivity(two_table_pool, NIndError(), legacy=False)
        assert type(algorithm) is GetSelectivity

    def test_plain_construction_does_not_warn(
        self, two_table_pool, recwarn
    ):
        GetSelectivity(two_table_pool, NIndError())
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_estimator_legacy_kwarg(self, two_table_db, two_table_pool):
        with pytest.deprecated_call(match="legacy"):
            estimator = CardinalityEstimator(
                two_table_db, two_table_pool, NIndError(), legacy=True
            )
        assert estimator.engine == "legacy"

    def test_estimator_engine_kwarg_is_silent(
        self, two_table_db, two_table_pool, recwarn
    ):
        estimator = CardinalityEstimator(
            two_table_db, two_table_pool, NIndError(), engine="legacy"
        )
        assert estimator.engine == "legacy"
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestFlatStats:
    def test_get_selectivity_stats_warns_and_matches_snapshot(
        self, two_table_pool, predicates
    ):
        algorithm = GetSelectivity.create(two_table_pool, NIndError())
        algorithm(predicates)
        with pytest.deprecated_call(match="stats_snapshot"):
            flat = algorithm.stats()
        assert flat == algorithm.stats_snapshot().flat(LEGACY_STATS_KEYS)
        assert set(flat) == set(LEGACY_STATS_KEYS)

    def test_estimator_stats_warns(self, two_table_db, two_table_pool, predicates):
        estimator = CardinalityEstimator(
            two_table_db, two_table_pool, NIndError()
        )
        estimator.algorithm(predicates)
        with pytest.deprecated_call(match="stats_snapshot"):
            flat = estimator.stats()
        assert set(flat) == set(LEGACY_STATS_KEYS)

    def test_memo_coupled_stats_warns(self, two_table_db, two_table_pool):
        estimator = MemoCoupledEstimator(
            two_table_db, two_table_pool, NIndError()
        )
        with pytest.deprecated_call(match="stats_snapshot"):
            flat = estimator.stats()
        assert set(flat) == set(MEMO_LEGACY_STATS_KEYS)


class TestPoolQueryShims:
    def test_for_attribute(self, two_table_pool, two_table_attrs):
        attribute = two_table_attrs["Ra"]
        with pytest.deprecated_call(match="find"):
            old = two_table_pool.for_attribute(attribute)
        assert old == two_table_pool.find(attribute)

    def test_base(self, two_table_pool, two_table_attrs):
        attribute = two_table_attrs["Ra"]
        with pytest.deprecated_call(match="find_base"):
            old = two_table_pool.base(attribute)
        assert old is two_table_pool.find_base(attribute)
        assert old is not None and old.is_base

    def test_with_expression_member(self, two_table_pool, two_table_join):
        with pytest.deprecated_call(match="expression_member"):
            old = two_table_pool.with_expression_member(two_table_join)
        assert old == two_table_pool.find(expression_member=two_table_join)
        assert old, "the fixture pool has SITs conditioned on the join"

    def test_expressions_for_attribute(self, two_table_pool, two_table_attrs):
        attribute = two_table_attrs["Ra"]
        with pytest.deprecated_call(match="find_expressions"):
            old = two_table_pool.expressions_for_attribute(attribute)
        assert old == two_table_pool.find_expressions(attribute)

    def test_find_conjunctive_criteria(
        self, two_table_pool, two_table_attrs, two_table_join
    ):
        attribute = two_table_attrs["Ra"]
        conditioned = two_table_pool.find(
            attribute, expression_superset=frozenset({two_table_join})
        )
        assert {sit.attribute for sit in conditioned} == {attribute}
        base_only = two_table_pool.find(attribute, base_only=True)
        assert all(sit.is_base for sit in base_only)
        assert two_table_pool.find(
            attribute, expression_superset=frozenset()
        ) == base_only

    def test_new_surface_is_silent(
        self, two_table_pool, two_table_attrs, recwarn
    ):
        attribute = two_table_attrs["Ra"]
        two_table_pool.find(attribute)
        two_table_pool.find_base(attribute)
        two_table_pool.find_expressions(attribute)
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
