"""``EXPLAIN ESTIMATE`` tests: golden files, parity and structure.

The golden files under ``tests/obs/golden/`` pin the text tree and JSON
payload of a fixed snowflake query.  Regenerate them (after an intended
rendering change) with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_explain.py
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.core.errors import DiffError, NIndError
from repro.estimators import SITEstimator, make_gs_diff
from repro.obs.explain import (
    AttributeExplanation,
    ExplainResult,
    build_explain,
)
from repro.sql import parse_query
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: the fixed snowflake query the golden files pin
GOLDEN_SQL = (
    "SELECT * FROM sales, customer, nation "
    "WHERE sales.customer_id = customer.customer_id "
    "AND customer.nation_id = nation.nation_id "
    "AND customer.age BETWEEN 20 AND 40"
)


@pytest.fixture(scope="module")
def golden_setup(tiny_snowflake):
    query = parse_query(GOLDEN_SQL, tiny_snowflake.schema)
    pool = build_workload_pool(
        SITBuilder(tiny_snowflake), [query], max_joins=2
    )
    return tiny_snowflake, pool, query


def _approx_equal(left, right, rel=1e-9):
    """Structural equality with approximate floats (golden JSON check)."""
    if isinstance(left, float) or isinstance(right, float):
        return left == pytest.approx(right, rel=rel)
    if isinstance(left, dict) and isinstance(right, dict):
        return set(left) == set(right) and all(
            _approx_equal(left[k], right[k], rel) for k in left
        )
    if isinstance(left, list) and isinstance(right, list):
        return len(left) == len(right) and all(
            _approx_equal(a, b, rel) for a, b in zip(left, right)
        )
    return left == right


def _check_golden(path: pathlib.Path, actual: str) -> None:
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual + "\n")
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with REGEN_GOLDEN=1"
    )
    expected = path.read_text().rstrip("\n")
    if path.suffix == ".json":
        assert _approx_equal(json.loads(actual), json.loads(expected))
    else:
        assert actual == expected


class TestGoldenExplain:
    def test_text_tree_matches_golden(self, golden_setup):
        database, pool, query = golden_setup
        estimator = make_gs_diff(database, pool)
        result = estimator.explain(query)
        _check_golden(
            GOLDEN_DIR / "explain_snowflake.txt", result.render_text()
        )

    def test_json_matches_golden(self, golden_setup):
        database, pool, query = golden_setup
        estimator = make_gs_diff(database, pool)
        result = estimator.explain(query)
        _check_golden(
            GOLDEN_DIR / "explain_snowflake.json",
            result.to_json(include_stats=False),
        )


class TestExplainParity:
    @pytest.mark.parametrize("engine", ["bitmask", "legacy"])
    def test_explain_equals_estimate_exactly(self, golden_setup, engine):
        database, pool, query = golden_setup
        estimator = SITEstimator(
            database, pool, DiffError(pool), engine=engine
        )
        expected = estimator.estimate(query).selectivity
        result = estimator.explain(query)
        assert result.selectivity == expected  # exact, not approx
        assert result.engine == engine

    def test_engines_agree_factor_by_factor(self, golden_setup):
        database, pool, query = golden_setup
        results = {}
        for engine in ("bitmask", "legacy"):
            estimator = SITEstimator(
                database, pool, NIndError(), engine=engine
            )
            results[engine] = estimator.explain(query)
        bitmask, legacy = results["bitmask"], results["legacy"]
        assert bitmask.selectivity == pytest.approx(legacy.selectivity)
        assert [f.factor for f in bitmask.factors] == [
            f.factor for f in legacy.factors
        ]

    def test_explain_accepts_sql_text(self, golden_setup):
        database, pool, query = golden_setup
        estimator = make_gs_diff(database, pool)
        from_sql = estimator.explain(GOLDEN_SQL)
        from_query = estimator.explain(query)
        assert from_sql.selectivity == from_query.selectivity


class TestExplainStructure:
    def test_factor_product_reconstructs_selectivity(self, golden_setup):
        database, pool, query = golden_setup
        result = make_gs_diff(database, pool).explain(query)
        product = 1.0
        for factor in result.factors:
            product *= factor.selectivity
        assert product == pytest.approx(result.selectivity)

    def test_cardinality_is_selectivity_times_cross_product(self, golden_setup):
        database, pool, query = golden_setup
        result = make_gs_diff(database, pool).explain(query)
        assert result.cardinality == pytest.approx(
            result.selectivity * database.cross_product_size(query.tables)
        )

    def test_attributes_document_their_sits(self, golden_setup):
        database, pool, query = golden_setup
        result = make_gs_diff(database, pool).explain(query)
        attributes = [a for f in result.factors for a in f.attributes]
        assert attributes, "every factor explains at least one attribute"
        for attribute in attributes:
            assert attribute.sit.startswith("SIT(")
            if attribute.is_base:
                assert attribute.covered == ()

    def test_independence_fallback_flag(self):
        fallback = AttributeExplanation(
            attribute="R.a",
            weight=1.0,
            sit="SIT(R.a)",
            is_base=True,
            diff=0.0,
            conditioning=("R.x=S.y",),
            covered=(),
            assumed=("R.x=S.y",),
        )
        assert fallback.independence_fallback
        exact = AttributeExplanation(
            attribute="R.a",
            weight=1.0,
            sit="SIT(R.a | R.x=S.y)",
            is_base=False,
            diff=0.1,
            conditioning=("R.x=S.y",),
            covered=("R.x=S.y",),
            assumed=(),
        )
        assert not exact.independence_fallback

    def test_stats_snapshot_attached(self, golden_setup):
        database, pool, query = golden_setup
        estimator = make_gs_diff(database, pool)
        result = build_explain(estimator, query)
        assert result.stats.caches["memo_entries"] > 0
        assert result.stats.meta["estimator"] == "GS-Diff"

    def test_str_is_text_tree(self, golden_setup):
        database, pool, query = golden_setup
        result = make_gs_diff(database, pool).explain(query)
        assert str(result) == result.render_text()
        assert isinstance(result, ExplainResult)

    def test_render_text_with_stats_appends_namespaces(self, golden_setup):
        database, pool, query = golden_setup
        result = make_gs_diff(database, pool).explain(query)
        rendered = result.render_text(include_stats=True)
        assert "stats:" in rendered
        assert "caches.memo_entries" in rendered
