"""Plan-cache parity suite: cached replay vs the cold full DP.

The compiled-plan cache (:mod:`repro.core.plancache`) promises that a
template *hit* is bit-identical to running the full ``getSelectivity``
DP from scratch.  This suite holds it to that across 400 (shape,
constants) workload pairs — snowflake and TPC-H schemas, nInd and Diff
error functions — by generating template queries with the workload
generator, re-instantiating each template with fresh random constants,
and asserting exact (``==``, no tolerance) equality of selectivity,
error, coverage, decomposition and matches against an estimator that
has the cache disabled.

It also pins the resilience contract: degraded (ladder level > 0)
results are never compiled or served from the cache, and ``strict=True``
raises through the cache path without poisoning it.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import DiffError, NIndError
from repro.estimators import SITEstimator
from repro.core.plancache import shape_fingerprint
from repro.core.predicates import FilterPredicate
from repro.resilience.faults import (
    POINT_SIT_MATCH,
    EstimationFault,
    FaultPlan,
    FaultRule,
    armed,
)
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool
from repro.workload.queries import WorkloadConfig, WorkloadGenerator

#: templates per (database, error function) and constant instantiations
#: per template — 10 x 10 x 2 error functions x 2 databases = 400 pairs
TEMPLATES = 10
VARIANTS = 10

ERROR_FACTORIES = {
    "nInd": lambda pool: NIndError(),
    "Diff": lambda pool: DiffError(pool),
}


def build_setup(database, seed: int):
    generator = WorkloadGenerator(
        database,
        WorkloadConfig(join_count=2, filter_count=2, seed=seed),
    )
    templates = generator.generate(TEMPLATES)
    pool = build_workload_pool(SITBuilder(database), templates, max_joins=2)
    return templates, pool


@pytest.fixture(scope="module")
def snowflake_setup(tiny_snowflake):
    templates, pool = build_setup(tiny_snowflake, seed=13)
    return tiny_snowflake, templates, pool


@pytest.fixture(scope="module")
def tpch_setup(tpch_db):
    templates, pool = build_setup(tpch_db, seed=17)
    return tpch_db, templates, pool


# ----------------------------------------------------------------------
def constant_variants(
    rng: random.Random, predicates: frozenset, count: int
) -> list[frozenset]:
    """``count`` re-instantiations of one template with fresh constants.

    ``FilterPredicate.__str__`` leads with the constants, so a large
    enough perturbation permutes the positional ``str`` order and — by
    the fingerprint's deliberate design — lands in a *different*
    template (see :func:`test_order_permuting_constants_change_shape`).
    Here we want same-shape variants, so draws that flip the order are
    rejected and retried at a shrinking perturbation scale (scale → 0
    reproduces the template's own order, guaranteeing convergence).
    """
    joins = {p for p in predicates if p.is_join}
    filters = [p for p in predicates if not p.is_join]
    base_fingerprint = shape_fingerprint(predicates)[0]
    variants = []
    while len(variants) < count:
        for attempt in range(64):
            scale = 0.6 * (0.7**attempt)
            fresh: set = set(joins)
            for old in filters:
                span = max(1.0, old.high - old.low)
                low = round(old.low + rng.uniform(-scale, scale) * span, 3)
                if old.low == old.high:
                    # point filters render attribute-first (``a=c``);
                    # keep them points so the rendering class matches
                    high = low
                else:
                    high = round(low + span * rng.uniform(0.4, 1.8), 3)
                fresh.add(FilterPredicate(old.attribute, low, high))
            variant = frozenset(fresh)
            if shape_fingerprint(variant)[0] == base_fingerprint:
                variants.append(variant)
                break
        else:  # pragma: no cover - the scale decay makes this unreachable
            raise AssertionError("could not re-instantiate the template")
    return variants


def assert_bit_identical(cached, cold):
    assert cached.selectivity == cold.selectivity
    assert cached.error == cold.error
    assert cached.coverage == cold.coverage
    assert cached.decomposition == cold.decomposition
    assert cached.matches == cold.matches
    assert cached.degradation_level == 0 == cold.degradation_level


def run_parity(database, templates, pool, error_name: str) -> None:
    factory = ERROR_FACTORIES[error_name]
    warm = SITEstimator(
        database, pool, factory(pool), plan_cache=True
    )
    assert warm.plan_cache is not None, "plan-stable error fn must enable it"
    rng = random.Random(20260807)
    pairs = 0
    hits = 0
    for template in templates:
        base = frozenset(template.predicates)
        assert any(not p.is_join for p in base)  # constants exist to vary
        # a fresh DP per template is the cold baseline; its memo is
        # shared across the template's variants exactly like the
        # uncached estimator path would share it
        cold = SITEstimator(
            database, pool, factory(pool), plan_cache=False
        )
        assert cold.plan_cache is None
        for variant in [base, *constant_variants(rng, base, VARIANTS - 1)]:
            cached = warm.estimate_predicates(variant)
            assert_bit_identical(cached, cold.estimate_predicates(variant))
            pairs += 1
            hits += cached.plan_cache_hit
    assert pairs == TEMPLATES * VARIANTS
    # every variant after a template's first must replay (templates may
    # even share a shape, which only increases the hit count)
    status = warm.plan_cache.status()
    assert hits == status["hits"] >= pairs - TEMPLATES
    assert 0 < status["plans"] <= TEMPLATES
    assert status["compiles"] == status["plans"]


class TestReplayParity:
    @pytest.mark.parametrize("error_name", ["nInd", "Diff"])
    def test_snowflake(self, snowflake_setup, error_name):
        run_parity(*snowflake_setup, error_name)

    @pytest.mark.parametrize("error_name", ["nInd", "Diff"])
    def test_tpch(self, tpch_setup, error_name):
        run_parity(*tpch_setup, error_name)

    def test_suite_covers_200_pairs(self):
        """The documented floor: >=200 (shape, constants) pairs overall."""
        assert TEMPLATES * VARIANTS * len(ERROR_FACTORIES) * 2 >= 200


def test_order_permuting_constants_change_shape(snowflake_setup):
    """The deliberate hit-rate-for-bit-identity trade: constants that
    permute the positional ``str`` order land in a *different*
    fingerprint, and the second ordering compiles its own plan — both
    still bit-identical to the cold DP."""
    database, templates, pool = snowflake_setup
    template = next(
        t
        for t in templates
        if sum(1 for p in t.predicates if not p.is_join) >= 2
    )
    base = frozenset(template.predicates)
    joins = {p for p in base if p.is_join}
    filters = sorted((p for p in base if not p.is_join), key=str)
    # swap the two filters' constant blocks: the str order permutes
    first, second = filters[0], filters[1]
    swapped = frozenset(
        joins
        | {
            FilterPredicate(first.attribute, second.low, second.high),
            FilterPredicate(second.attribute, first.low, first.high),
        }
    )
    assert shape_fingerprint(base)[0] != shape_fingerprint(swapped)[0]

    warm = SITEstimator(database, pool, NIndError(), plan_cache=True)
    warm.estimate_predicates(base)
    result = warm.estimate_predicates(swapped)
    assert not result.plan_cache_hit  # a different template: compile, no hit
    assert warm.plan_cache.status()["plans"] == 2
    cold = SITEstimator(database, pool, NIndError())
    assert_bit_identical(result, cold.estimate_predicates(swapped))
    # and each ordering replays behind its own plan from here on
    assert warm.estimate_predicates(base).plan_cache_hit
    assert warm.estimate_predicates(swapped).plan_cache_hit


# ----------------------------------------------------------------------
def storm() -> FaultPlan:
    """Every SIT match faults, forever — forces the degradation ladder."""
    return FaultPlan(
        [FaultRule(point=POINT_SIT_MATCH, probability=1.0, max_fires=None)],
        seed=0,
    )


class TestLadderBypass:
    def test_degraded_results_are_never_compiled(self, snowflake_setup):
        database, templates, pool = snowflake_setup
        warm = SITEstimator(
            database, pool, NIndError(), plan_cache=True
        )
        query = templates[0]
        with armed(storm()):
            degraded = warm.estimate(query)
        assert degraded.degradation_level > 0
        assert not degraded.plan_cache_hit
        assert len(warm.plan_cache) == 0
        assert warm.plan_cache.status()["compiles"] == 0

        # the next clean run compiles (a miss, not a poisoned hit) and
        # matches a cache-less estimator exactly
        clean = warm.estimate(query)
        assert clean.degradation_level == 0
        assert not clean.plan_cache_hit
        cold = SITEstimator(database, pool, NIndError())
        assert_bit_identical(clean, cold.estimate(query))

    def test_compiled_hit_rides_out_a_fault_storm(self, snowflake_setup):
        """A template hit replays frozen statistics and never reaches the
        matcher, so an armed fault storm cannot degrade it — the replay
        stays level 0 and bit-identical."""
        database, templates, pool = snowflake_setup
        warm = SITEstimator(
            database, pool, NIndError(), plan_cache=True
        )
        query = templates[0]
        before = warm.estimate(query)
        assert before.degradation_level == 0
        with armed(storm()):
            replayed = warm.estimate(query)
        assert replayed.plan_cache_hit
        assert replayed.degradation_level == 0
        assert replayed.selectivity == before.selectivity
        assert replayed.matches == before.matches

    def test_strict_raises_through_the_cache_path(self, snowflake_setup):
        database, templates, pool = snowflake_setup
        strict = SITEstimator(
            database, pool, NIndError(), plan_cache=True, strict=True
        )
        with armed(storm()):
            with pytest.raises(EstimationFault):
                strict.estimate(templates[0])
        assert strict.plan_cache.status()["compiles"] == 0
        assert len(strict.plan_cache) == 0
