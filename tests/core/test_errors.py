"""Tests for the nInd, Diff and Opt error functions (Sections 3.2, 3.5)."""

import math

import numpy as np
import pytest

from repro.core.errors import DiffError, NIndError, OptError, merge
from repro.core.matching import ViewMatcher, select_match
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.core.selectivity import Factor
from repro.engine.database import Database, Table
from repro.engine.executor import Executor
from repro.engine.schema import Schema, TableSchema
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
RS = Attribute("R", "s")
SY = Attribute("S", "y")
SA = Attribute("S", "a")
ST = Attribute("S", "t")
TT = Attribute("T", "t")

JOIN_RS = JoinPredicate(RS, SY)
JOIN_ST = JoinPredicate(ST, TT)


def uniform(total=1000.0):
    return Histogram([Bucket(0, 100, total, 100)])


def make_sit(attribute, expression=frozenset(), diff=0.0):
    return SIT(attribute, frozenset(expression), uniform(), diff=diff)


def pool_of(*sits):
    return SITPool(list(sits))


def match_for(pool, error_function, p, q):
    matcher = ViewMatcher(pool)
    candidates = matcher.candidates_for_factor(Factor(frozenset(p), frozenset(q)))
    assert candidates is not None
    return select_match(candidates, error_function)


class TestMerge:
    def test_merge_is_sum(self):
        assert merge(1.5, 2.5) == 4.0

    def test_identity(self):
        assert merge(0.0, 3.0) == 3.0


class TestNInd:
    def test_fully_covered_factor_is_free(self):
        pool = pool_of(make_sit(SA), make_sit(SA, {JOIN_RS}))
        error = NIndError()
        filter_a = FilterPredicate(SA, 0, 10)
        match = match_for(pool, error, {filter_a}, {JOIN_RS})
        assert error.factor_error(match) == 0.0

    def test_one_assumption_counts_one(self):
        pool = pool_of(make_sit(SA), make_sit(SA, {JOIN_RS}))
        error = NIndError()
        filter_a = FilterPredicate(SA, 0, 10)
        match = match_for(pool, error, {filter_a}, {JOIN_RS, JOIN_ST})
        assert error.factor_error(match) == 1.0

    def test_base_sit_counts_full_conditioning(self):
        pool = pool_of(make_sit(SA))
        error = NIndError()
        filter_a = FilterPredicate(SA, 0, 10)
        match = match_for(pool, error, {filter_a}, {JOIN_RS, JOIN_ST})
        assert error.factor_error(match) == 2.0

    def test_rank_prefers_larger_coverage(self):
        covered = make_sit(SA, {JOIN_RS, JOIN_ST})
        partial = make_sit(SA, {JOIN_RS})
        pool = pool_of(make_sit(SA), partial, covered)
        error = NIndError()
        filter_a = FilterPredicate(SA, 0, 10)
        match = match_for(pool, error, {filter_a}, {JOIN_RS, JOIN_ST})
        assert match.attribute_matches[0].sit == covered

    def test_monotonic_via_merge(self):
        # Definition 3: increasing any component error cannot decrease the
        # merged error.
        assert merge(1.0, 2.0) <= merge(1.5, 2.0)


class TestDiff:
    def test_example4_prefers_informative_sit(self):
        """Example 4: with SIT(S.a|R⋈S) (diff high) and SIT(S.a|S⋈T)
        (diff 0), the factor Sel(S.a<10 | R⋈S, S⋈T) must use the first."""
        h1 = make_sit(SA, {JOIN_RS}, diff=0.6)
        h2 = make_sit(SA, {JOIN_ST}, diff=0.0)
        pool = pool_of(make_sit(SA), h1, h2)
        error = DiffError(pool)
        filter_a = FilterPredicate(SA, -math.inf, 10)
        match = match_for(pool, error, {filter_a}, {JOIN_RS, JOIN_ST})
        assert match.attribute_matches[0].sit == h1

    def test_known_strong_dependence_is_expensive_to_ignore(self):
        informative = make_sit(SA, {JOIN_RS}, diff=0.9)
        pool = pool_of(make_sit(SA), informative)
        error = DiffError(pool, unknown_cost=0.05)
        filter_a = FilterPredicate(SA, 0, 10)
        # Use the base SIT (forced by restricting the pool of candidates):
        base_only = pool_of(make_sit(SA))
        error_with_knowledge = DiffError(pool, unknown_cost=0.05)
        match = match_for(base_only, error_with_knowledge, {filter_a}, {JOIN_RS})
        assert error_with_knowledge.factor_error(match) == pytest.approx(0.9)

    def test_unknown_dependence_costs_prior(self):
        pool = pool_of(make_sit(SA))
        error = DiffError(pool, unknown_cost=0.05)
        filter_a = FilterPredicate(SA, 0, 10)
        match = match_for(pool, error, {filter_a}, {JOIN_RS})
        assert error.factor_error(match) == pytest.approx(0.05)

    def test_no_assumptions_is_free(self):
        covering = make_sit(SA, {JOIN_RS})
        pool = pool_of(make_sit(SA), covering)
        error = DiffError(pool)
        filter_a = FilterPredicate(SA, 0, 10)
        match = match_for(pool, error, {filter_a}, {JOIN_RS})
        assert error.factor_error(match) == 0.0

    def test_degrades_to_scaled_nind_without_sits(self):
        pool = pool_of(make_sit(SA))
        diff = DiffError(pool, unknown_cost=0.25)
        nind = NIndError()
        filter_a = FilterPredicate(SA, 0, 10)
        match = match_for(pool, diff, {filter_a}, {JOIN_RS, JOIN_ST})
        assert diff.factor_error(match) == pytest.approx(
            0.25 * nind.factor_error(match)
        )

    def test_invalid_unknown_cost(self):
        with pytest.raises(ValueError):
            DiffError(pool_of(), unknown_cost=2.0)


class TestOpt:
    @pytest.fixture()
    def db(self):
        rng = np.random.default_rng(0)
        schema = Schema()
        schema.add_table(TableSchema("R", ("a",)))
        db = Database(schema)
        db.add_table(
            Table(
                schema.table("R"),
                {"a": rng.integers(0, 100, 1000).astype(float)},
            )
        )
        return db

    def test_exact_estimate_has_near_zero_error(self, db):
        from repro.stats.builder import SITBuilder

        builder = SITBuilder(db)
        pool = pool_of(builder.build_base(RA))
        error = OptError(Executor(db))
        filter_a = FilterPredicate(RA, 0, 49)
        match = match_for(pool, error, {filter_a}, set())
        assert error.factor_error(match) < 0.05

    def test_wrong_estimate_has_positive_error(self, db):
        # A histogram that pretends R.a is uniform on [0, 1000] badly
        # underestimates the true selectivity of [0, 49].
        wrong = SIT(RA, frozenset(), Histogram([Bucket(0, 1000, 1000, 1000)]))
        pool = pool_of(wrong)
        error = OptError(Executor(db))
        filter_a = FilterPredicate(RA, 0, 49)
        match = match_for(pool, error, {filter_a}, set())
        assert error.factor_error(match) > 1.0

    def test_requires_combinations_flag(self, db):
        assert OptError(Executor(db)).requires_combinations is True
