"""Tests for the Group-By cardinality extension."""

import numpy as np
import pytest

from repro.estimators import make_gs_diff
from repro.core.groupby import cardenas, estimate_group_count
from repro.core.predicates import FilterPredicate
from repro.engine.executor import Executor
from repro.engine.expressions import Query


class TestCardenas:
    def test_degenerate_cases(self):
        assert cardenas(0, 100) == 0.0
        assert cardenas(10, 0) == 0.0
        assert cardenas(1, 50) == 1.0

    def test_many_rows_saturate_domain(self):
        assert cardenas(10, 10_000) == pytest.approx(10.0)

    def test_few_rows_bound_groups(self):
        assert cardenas(1_000_000, 5) == pytest.approx(5.0, rel=0.01)

    def test_monotone_in_rows(self):
        values = [cardenas(100, rows) for rows in (1, 10, 100, 1000)]
        assert values == sorted(values)


class TestEstimateGroupCount:
    def true_groups(self, db, query, attribute):
        executor = Executor(db)
        result = executor.execute(query.predicates)
        values = result.column(attribute)
        return len(np.unique(values[~np.isnan(values)]))

    def test_group_by_join_preserved_attribute(
        self, two_table_db, two_table_pool, two_table_join, two_table_attrs
    ):
        query = Query.of(two_table_join)
        estimator = make_gs_diff(two_table_db, two_table_pool)
        estimate = estimate_group_count(estimator, query, two_table_attrs["Sb"])
        true = self.true_groups(two_table_db, query, two_table_attrs["Sb"])
        assert estimate == pytest.approx(true, rel=0.35)

    def test_group_by_filtered_attribute(
        self, two_table_db, two_table_pool, two_table_attrs
    ):
        predicate = FilterPredicate(two_table_attrs["Ra"], 0, 30)
        query = Query.of(predicate)
        estimator = make_gs_diff(two_table_db, two_table_pool)
        estimate = estimate_group_count(estimator, query, two_table_attrs["Ra"])
        true = self.true_groups(two_table_db, query, two_table_attrs["Ra"])
        assert estimate == pytest.approx(true, rel=0.4)

    def test_groups_bounded_by_rows(
        self, two_table_db, two_table_pool, two_table_join, two_table_attrs
    ):
        query = Query.of(
            two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 4)
        )
        estimator = make_gs_diff(two_table_db, two_table_pool)
        estimate = estimate_group_count(estimator, query, two_table_attrs["Sb"])
        assert estimate <= estimator.cardinality(query) + 1e-9

    def test_unknown_attribute_rejected(
        self, two_table_db, two_table_pool, two_table_attrs
    ):
        from repro.core.predicates import Attribute

        query = Query.of(FilterPredicate(two_table_attrs["Ra"], 0, 30))
        estimator = make_gs_diff(two_table_db, two_table_pool)
        with pytest.raises(ValueError):
            estimate_group_count(estimator, query, Attribute("Z", "q"))
