"""Tests for the estimator facade's SQL entry point and error surfaces."""

import pytest

from repro.estimators import make_gs_diff
from repro.sql.binder import BindingError
from repro.sql.lexer import SQLSyntaxError


class TestCardinalitySQL:
    def test_simple_filter_query(self, two_table_db, two_table_pool):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        value = estimator.cardinality_sql(
            "SELECT * FROM R WHERE a BETWEEN 0 AND 20"
        )
        assert 0 < value < 2000

    def test_join_query(self, two_table_db, two_table_pool):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        value = estimator.cardinality_sql(
            "SELECT * FROM R, S WHERE R.x = S.y"
        )
        # FK integrity in the fixture: every R row joins exactly once.
        assert value == pytest.approx(2000, rel=0.05)

    def test_syntax_errors_propagate(self, two_table_db, two_table_pool):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        with pytest.raises(SQLSyntaxError):
            estimator.cardinality_sql("SELECT FROM WHERE")

    def test_binding_errors_propagate(self, two_table_db, two_table_pool):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        with pytest.raises(BindingError):
            estimator.cardinality_sql("SELECT * FROM nonexistent")

    def test_cross_product_sql(self, two_table_db, two_table_pool):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        value = estimator.cardinality_sql("SELECT * FROM R, S")
        assert value == pytest.approx(2000 * 50)
