"""Tests for the SITEstimator facade and technique factories."""

import pytest

from repro.estimators import (
    SITEstimator,
    make_gs_diff,
    make_gs_nind,
    make_gs_opt,
    make_nosit,
)
from repro.core.predicates import FilterPredicate
from repro.engine.executor import Executor
from repro.engine.expressions import Query


@pytest.fixture()
def query(two_table_join, two_table_attrs):
    return Query.of(
        two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
    )


class TestFacade:
    def test_default_error_function_is_diff(self, two_table_db, two_table_pool):
        estimator = SITEstimator(two_table_db, two_table_pool)
        assert estimator.error_function.name == "Diff"
        assert estimator.name == "GS-Diff"

    def test_cardinality_scales_selectivity(
        self, two_table_db, two_table_pool, query
    ):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        selectivity = estimator.selectivity(query)
        cardinality = estimator.cardinality(query)
        assert cardinality == pytest.approx(selectivity * 2000 * 50)

    def test_estimate_close_to_truth(self, two_table_db, two_table_pool, query):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        true = Executor(two_table_db).cardinality(query.predicates)
        assert estimator.cardinality(query) == pytest.approx(true, rel=0.2)

    def test_subquery_cardinality(self, two_table_db, two_table_pool, query):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        estimator.estimate(query)
        sub = frozenset({next(iter(query.filters))})
        value = estimator.subquery_cardinality(query, sub)
        true = Executor(two_table_db).cardinality(sub)
        assert value == pytest.approx(true, rel=0.25)

    def test_counters_reset(self, two_table_db, two_table_pool, query):
        estimator = make_gs_diff(two_table_db, two_table_pool)
        estimator.estimate(query)
        assert estimator.view_matching_calls > 0
        estimator.reset()
        assert estimator.view_matching_calls == 0
        assert estimator.analysis_seconds == 0.0


class TestFactories:
    def test_names(self, two_table_db, two_table_pool):
        assert make_gs_nind(two_table_db, two_table_pool).name == "GS-nInd"
        assert make_gs_diff(two_table_db, two_table_pool).name == "GS-Diff"
        assert make_gs_opt(two_table_db, two_table_pool).name == "GS-Opt"
        assert make_nosit(two_table_db, two_table_pool).name == "noSit"

    def test_nosit_ignores_conditioned_sits(
        self, two_table_db, two_table_pool, query
    ):
        nosit = make_nosit(two_table_db, two_table_pool)
        assert all(sit.is_base for sit in nosit.pool)

    def test_ordering_on_correlated_query(
        self, two_table_db, two_table_pool, query
    ):
        """The skewed/correlated fixture must show SITs helping: noSit is
        (weakly) worse than GS-Diff, and GS-Opt at least as good."""
        true = Executor(two_table_db).cardinality(query.predicates)

        def error(factory):
            return abs(factory(two_table_db, two_table_pool).cardinality(query) - true)

        assert error(make_gs_diff) <= error(make_nosit) + 1e-9
        assert error(make_gs_opt) <= error(make_gs_diff) + 1e-9
