"""Unit tests for the predicate algebra."""

import math

import pytest

from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    attributes_of,
    connected_components,
    filter_predicates,
    is_separable,
    join_predicates,
    predicate_set,
    tables_of,
)

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
TC = Attribute("T", "c")


class TestAttribute:
    def test_string_form(self):
        assert str(RA) == "R.a"

    def test_ordering_is_lexicographic(self):
        assert RA < RX < SY

    def test_equality_and_hash(self):
        assert Attribute("R", "a") == RA
        assert hash(Attribute("R", "a")) == hash(RA)


class TestFilterPredicate:
    def test_tables_and_attributes(self):
        predicate = FilterPredicate(RA, 0, 10)
        assert predicate.tables == frozenset(("R",))
        assert predicate.attributes == frozenset((RA,))
        assert not predicate.is_join

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            FilterPredicate(RA, 10, 0)

    def test_point_predicate_renders_as_equality(self):
        assert str(FilterPredicate(RA, 5, 5)) == "R.a=5"

    def test_open_ended_ranges_allowed(self):
        predicate = FilterPredicate(RA, -math.inf, 3)
        assert predicate.low == -math.inf

    def test_hashable_in_frozensets(self):
        a = FilterPredicate(RA, 0, 1)
        b = FilterPredicate(RA, 0, 1)
        assert frozenset((a,)) == frozenset((b,))


class TestJoinPredicate:
    def test_canonical_operand_order(self):
        forward = JoinPredicate(RX, SY)
        backward = JoinPredicate(SY, RX)
        assert forward == backward
        assert hash(forward) == hash(backward)
        assert forward.left == RX  # R.x < S.y lexicographically

    def test_tables_and_attributes(self):
        join = JoinPredicate(RX, SY)
        assert join.tables == frozenset(("R", "S"))
        assert join.attributes == frozenset((RX, SY))
        assert join.is_join

    def test_self_join_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate(RX, RA)

    def test_other_side(self):
        join = JoinPredicate(RX, SY)
        assert join.other_side(RX) == SY
        assert join.other_side(SY) == RX
        with pytest.raises(ValueError):
            join.other_side(RA)


class TestSetHelpers:
    def setup_method(self):
        self.join_rs = JoinPredicate(RX, SY)
        self.filter_r = FilterPredicate(RA, 0, 10)
        self.filter_t = FilterPredicate(TC, 5, 5)

    def test_tables_of(self):
        assert tables_of([self.join_rs, self.filter_t]) == frozenset(
            ("R", "S", "T")
        )
        assert tables_of([]) == frozenset()

    def test_attributes_of(self):
        assert attributes_of([self.join_rs, self.filter_r]) == frozenset(
            (RX, SY, RA)
        )

    def test_join_and_filter_partitions(self):
        predicates = predicate_set([self.join_rs, self.filter_r, self.filter_t])
        assert join_predicates(predicates) == frozenset((self.join_rs,))
        assert filter_predicates(predicates) == frozenset(
            (self.filter_r, self.filter_t)
        )


class TestConnectedComponents:
    def test_empty_set(self):
        assert connected_components([]) == []

    def test_single_predicate(self):
        predicate = FilterPredicate(RA, 0, 1)
        assert connected_components([predicate]) == [frozenset((predicate,))]

    def test_filters_on_same_table_connect(self):
        first = FilterPredicate(RA, 0, 1)
        second = FilterPredicate(RX, 2, 3)
        assert len(connected_components([first, second])) == 1

    def test_disjoint_tables_separate(self):
        first = FilterPredicate(RA, 0, 1)
        second = FilterPredicate(TC, 0, 1)
        components = connected_components([first, second])
        assert len(components) == 2
        assert frozenset((first,)) in components
        assert frozenset((second,)) in components

    def test_join_bridges_tables(self):
        join = JoinPredicate(RX, SY)
        filter_r = FilterPredicate(RA, 0, 1)
        filter_s = FilterPredicate(SB, 0, 1)
        components = connected_components([join, filter_r, filter_s])
        assert len(components) == 1

    def test_paper_example_separable_after_decomposition(self):
        # Section 3.1: {T.b=5} vs {R.x=S.y, S.a<10} separate.
        join = JoinPredicate(RX, SY)
        filter_s = FilterPredicate(SB, -math.inf, 10)
        filter_t = FilterPredicate(TC, 5, 5)
        components = connected_components([join, filter_s, filter_t])
        assert sorted(len(c) for c in components) == [1, 2]

    def test_deterministic_order(self):
        join = JoinPredicate(RX, SY)
        filter_t = FilterPredicate(TC, 5, 5)
        first = connected_components([join, filter_t])
        second = connected_components([filter_t, join])
        assert first == second


class TestSeparability:
    def test_single_component_not_separable(self):
        join = JoinPredicate(RX, SY)
        assert not is_separable([join])

    def test_cross_product_separable(self):
        assert is_separable(
            [FilterPredicate(RA, 0, 1), FilterPredicate(TC, 0, 1)]
        )

    def test_empty_not_separable(self):
        assert not is_separable([])
