"""Remaining edge cases for the getSelectivity DP."""

import pytest

from repro.core.errors import NIndError
from repro.core.get_selectivity import (
    GetSelectivity,
    NoApplicableStatisticsError,
    query_cardinality,
)
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
TC = Attribute("T", "c")

JOIN = JoinPredicate(RX, SY)
FILTER_A = FilterPredicate(RA, 0, 10)
FILTER_T = FilterPredicate(TC, 0, 50)


def uniform():
    return Histogram([Bucket(0, 100, 1000, 100)])


def make_sit(attribute, expression=frozenset(), diff=0.0):
    return SIT(attribute, frozenset(expression), uniform(), diff=diff)


class TestCoverageTieBreaking:
    def test_coverage_accumulates_across_factors(self):
        pool = SITPool(
            [
                make_sit(RA),
                make_sit(RX),
                make_sit(SY),
                make_sit(RA, {JOIN}, diff=0.5),
            ]
        )
        algorithm = GetSelectivity(pool, NIndError())
        result = algorithm(frozenset({FILTER_A, JOIN}))
        # Best decomposition uses SIT(R.a|join): coverage counts its
        # one-predicate expression.
        assert result.coverage >= 1.0

    def test_base_only_pool_zero_coverage(self):
        pool = SITPool([make_sit(RA), make_sit(RX), make_sit(SY)])
        algorithm = GetSelectivity(pool, NIndError())
        result = algorithm(frozenset({FILTER_A, JOIN}))
        assert result.coverage == 0.0

    def test_separable_branch_sums_coverage(self):
        pool = SITPool(
            [
                make_sit(RA, {JOIN}, diff=0.5),
                make_sit(RA),
                make_sit(RX),
                make_sit(SY),
                make_sit(TC),
            ]
        )
        algorithm = GetSelectivity(pool, NIndError())
        combined = algorithm(frozenset({FILTER_A, JOIN, FILTER_T}))
        connected_only = algorithm(frozenset({FILTER_A, JOIN}))
        assert combined.coverage == connected_only.coverage


class TestErrorSurfaces:
    def test_error_message_lists_predicates(self):
        pool = SITPool([make_sit(RA)])
        algorithm = GetSelectivity(pool, NIndError())
        with pytest.raises(NoApplicableStatisticsError) as excinfo:
            algorithm(frozenset({JOIN}))
        assert "R.x=S.y" in str(excinfo.value)
        assert excinfo.value.predicates == frozenset({JOIN})

    def test_partial_statistics_still_fail_loudly(self):
        pool = SITPool([make_sit(RX)])  # S.y missing entirely
        algorithm = GetSelectivity(pool, NIndError())
        with pytest.raises(NoApplicableStatisticsError):
            algorithm(frozenset({JOIN}))


class TestQueryCardinality:
    def test_scaling(self):
        pool = SITPool([make_sit(RA)])
        algorithm = GetSelectivity(pool, NIndError())
        result = algorithm(frozenset({FILTER_A}))
        value = query_cardinality(result, {"R": 1000}, frozenset(("R",)))
        assert value == pytest.approx(result.selectivity * 1000)

    def test_multiple_tables_multiply(self):
        pool = SITPool([make_sit(RA)])
        algorithm = GetSelectivity(pool, NIndError())
        result = algorithm(frozenset({FILTER_A}))
        value = query_cardinality(
            result, {"R": 1000, "S": 10}, frozenset(("R", "S"))
        )
        assert value == pytest.approx(result.selectivity * 10_000)


class TestDecompositionIntrospection:
    def test_factors_cover_all_predicates(self):
        pool = SITPool([make_sit(RA), make_sit(RX), make_sit(SY), make_sit(TC)])
        algorithm = GetSelectivity(pool, NIndError())
        predicates = frozenset({FILTER_A, JOIN, FILTER_T})
        result = algorithm(predicates)
        covered = set()
        for factor in result.decomposition.factors:
            covered |= factor.p
        assert covered == set(predicates)

    def test_matches_align_with_factors(self):
        pool = SITPool([make_sit(RA), make_sit(RX), make_sit(SY)])
        algorithm = GetSelectivity(pool, NIndError())
        result = algorithm(frozenset({FILTER_A, JOIN}))
        assert len(result.matches) == len(result.decomposition)
        for match, factor in zip(result.matches, result.decomposition.factors):
            assert match.factor == factor
