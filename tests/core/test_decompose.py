"""Tests for decomposition counting/enumeration — Lemmas 1 and 2."""

import math

import pytest

from repro.core.decompose import (
    count_decompositions,
    enumerate_decompositions,
    lemma1_bounds,
    standard_decomposition,
)
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
TC = Attribute("T", "c")


def filters(n: int):
    """n filter predicates over n distinct tables (fully separable)."""
    return [FilterPredicate(Attribute(f"T{i}", "a"), 0, i + 1) for i in range(n)]


def chain(n: int):
    """n predicates forming one connected chain over n+1 tables."""
    return [
        JoinPredicate(Attribute(f"T{i}", "x"), Attribute(f"T{i+1}", "y"))
        for i in range(n)
    ]


class TestCountDecompositions:
    def test_base_cases(self):
        assert count_decompositions(0) == 1
        assert count_decompositions(1) == 1
        # n=2: {p1p2}, {p1|p2}{p2}, {p2|p1}{p1}
        assert count_decompositions(2) == 3
        # n=3: 3 singleton-first * T(2)=3 each? verify recurrence by hand:
        # sum C(3,1)T(2) + C(3,2)T(1) + C(3,3)T(0) = 3*3 + 3*1 + 1 = 13
        assert count_decompositions(3) == 13

    def test_matches_enumeration(self):
        for n in range(1, 6):
            enumerated = sum(1 for _ in enumerate_decompositions(frozenset(chain(n))))
            assert enumerated == count_decompositions(n), f"n={n}"

    @pytest.mark.parametrize("n", range(1, 11))
    def test_lemma1_bounds(self, n):
        lower, upper = lemma1_bounds(n)
        value = count_decompositions(n)
        assert lower <= value <= upper

    def test_lemma1_bounds_invalid(self):
        with pytest.raises(ValueError):
            lemma1_bounds(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            count_decompositions(-1)

    def test_growth_is_superexponential(self):
        # T(n+1)/T(n) >= n+2 per the proof of Lemma 1.
        previous = count_decompositions(1)
        for n in range(2, 10):
            current = count_decompositions(n)
            assert current >= (n + 1) * previous
            previous = current


class TestEnumerateDecompositions:
    def test_single_predicate(self):
        (predicate,) = filters(1)
        decompositions = list(enumerate_decompositions(frozenset((predicate,))))
        assert len(decompositions) == 1
        assert len(decompositions[0]) == 1

    def test_empty_set(self):
        decompositions = list(enumerate_decompositions(frozenset()))
        assert len(decompositions) == 1
        assert len(decompositions[0]) == 0

    def test_factors_partition_predicates(self):
        predicates = frozenset(chain(3))
        for decomposition in enumerate_decompositions(predicates):
            covered = set()
            for factor in decomposition.factors:
                assert not (covered & factor.p), "P parts must not overlap"
                covered |= factor.p
            assert covered == set(predicates)

    def test_telescoping_structure(self):
        """Each factor's Q is exactly the union of the later factors' Ps."""
        predicates = frozenset(chain(3))
        for decomposition in enumerate_decompositions(predicates):
            factors = decomposition.factors
            for index, factor in enumerate(factors):
                tail = set()
                for later in factors[index + 1 :]:
                    tail |= later.p
                assert factor.q == frozenset(tail)

    def test_last_factor_unconditioned(self):
        predicates = frozenset(chain(4))
        for decomposition in enumerate_decompositions(predicates):
            assert not decomposition.factors[-1].q

    def test_simplification_collapses_separable_sets(self):
        # Every decomposition of a fully separable set simplifies to the
        # unique standard decomposition Sel(p1)*Sel(p2)*Sel(p3).
        predicates = frozenset(filters(3))
        simplified = {
            frozenset((factor.p, factor.q) for factor in decomposition.factors)
            for decomposition in enumerate_decompositions(
                predicates, simplify_separable=True
            )
        }
        assert len(simplified) == 1
        ((factors),) = simplified
        assert all(not q for _, q in factors)

    def test_simplified_factors_are_non_separable(self):
        from repro.core.predicates import connected_components

        predicates = frozenset(chain(2)) | frozenset(filters(1))
        for decomposition in enumerate_decompositions(
            predicates, simplify_separable=True
        ):
            for factor in decomposition.factors:
                assert len(connected_components(factor.p | factor.q)) == 1

    def test_connected_chain_unaffected_by_simplification(self):
        # For a 2-chain every factor is already non-separable.
        predicates = frozenset(chain(2))
        full = [d.factors for d in enumerate_decompositions(predicates)]
        simplified = [
            d.factors
            for d in enumerate_decompositions(predicates, simplify_separable=True)
        ]
        assert full == simplified


class TestStandardDecomposition:
    def test_lemma2_uniqueness_and_idempotence(self):
        join = JoinPredicate(RX, SY)
        filter_s = FilterPredicate(SB, 0, 10)
        filter_t = FilterPredicate(TC, 5, 5)
        components = standard_decomposition(
            frozenset((join, filter_s, filter_t))
        )
        assert len(components) == 2
        for component in components:
            assert standard_decomposition(component) == [component]

    def test_connected_set_is_its_own_standard_decomposition(self):
        predicates = frozenset(chain(3))
        assert standard_decomposition(predicates) == [predicates]

    def test_component_count_equals_factor_count(self):
        predicates = frozenset(filters(4))
        assert len(standard_decomposition(predicates)) == 4
