"""Tests for the getSelectivity dynamic program (Figure 3, Theorem 1)."""

import math

import pytest

from repro.core.decompose import enumerate_decompositions
from repro.core.errors import DiffError, NIndError
from repro.core.get_selectivity import (
    GetSelectivity,
    NoApplicableStatisticsError,
)
from repro.core.matching import ViewMatcher, select_match
from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    connected_components,
)
from repro.core.selectivity import Factor
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
TZ = Attribute("T", "z")
TC = Attribute("T", "c")

JOIN_RS = JoinPredicate(RX, SY)
JOIN_ST = JoinPredicate(SB, TZ)
FILTER_A = FilterPredicate(RA, 0, 10)
FILTER_C = FilterPredicate(TC, 20, 30)


def uniform():
    return Histogram([Bucket(0, 100, 1000, 100)])


def make_sit(attribute, expression=frozenset(), diff=0.0):
    return SIT(attribute, frozenset(expression), uniform(), diff=diff)


def full_base_pool():
    return SITPool([make_sit(a) for a in (RA, RX, SY, SB, TZ, TC)])


class TestBasics:
    def test_empty_predicates(self):
        algorithm = GetSelectivity(full_base_pool(), NIndError())
        result = algorithm(frozenset())
        assert result.selectivity == 1.0
        assert result.error == 0.0
        assert result.factor_count == 0

    def test_single_filter(self):
        algorithm = GetSelectivity(full_base_pool(), NIndError())
        result = algorithm(frozenset({FILTER_A}))
        assert result.selectivity == pytest.approx(0.1, rel=0.15)
        assert result.error == 0.0

    def test_memoization_returns_same_object(self):
        algorithm = GetSelectivity(full_base_pool(), NIndError())
        predicates = frozenset({FILTER_A, JOIN_RS})
        first = algorithm(predicates)
        calls = algorithm.matcher.calls
        second = algorithm(predicates)
        assert first is second
        assert algorithm.matcher.calls == calls

    def test_subqueries_are_free_after_full_query(self):
        algorithm = GetSelectivity(full_base_pool(), NIndError())
        algorithm(frozenset({FILTER_A, JOIN_RS, JOIN_ST}))
        calls = algorithm.matcher.calls
        algorithm(frozenset({FILTER_A, JOIN_RS}))
        assert algorithm.matcher.calls == calls

    def test_separable_branch_multiplies(self):
        algorithm = GetSelectivity(full_base_pool(), NIndError())
        combined = algorithm(frozenset({FILTER_A, FILTER_C}))
        first = algorithm(frozenset({FILTER_A}))
        second = algorithm(frozenset({FILTER_C}))
        assert combined.selectivity == pytest.approx(
            first.selectivity * second.selectivity
        )
        assert combined.error == first.error + second.error

    def test_missing_statistics_raises(self):
        pool = SITPool([make_sit(RA)])
        algorithm = GetSelectivity(pool, NIndError())
        with pytest.raises(NoApplicableStatisticsError):
            algorithm(frozenset({JOIN_RS}))

    def test_reset_clears_state(self):
        algorithm = GetSelectivity(full_base_pool(), NIndError())
        algorithm(frozenset({FILTER_A}))
        algorithm.reset()
        assert algorithm.matcher.calls == 0
        assert not algorithm.cached_results()
        assert algorithm.analysis_seconds == 0.0

    def test_timing_counters_accumulate(self):
        algorithm = GetSelectivity(full_base_pool(), NIndError())
        algorithm(frozenset({FILTER_A, JOIN_RS, JOIN_ST, FILTER_C}))
        assert algorithm.analysis_seconds > 0.0
        assert algorithm.estimation_seconds >= 0.0
        assert algorithm.estimation_seconds < algorithm.analysis_seconds


class TestSITUsage:
    def test_conditioned_sit_lowers_error(self):
        pool = full_base_pool()
        pool.add(make_sit(RA, {JOIN_RS}, diff=0.5))
        algorithm = GetSelectivity(pool, NIndError())
        with_sit = algorithm(frozenset({FILTER_A, JOIN_RS}))
        base_algorithm = GetSelectivity(full_base_pool(), NIndError())
        without_sit = base_algorithm(frozenset({FILTER_A, JOIN_RS}))
        assert with_sit.error < without_sit.error

    def test_chosen_decomposition_uses_the_sit(self):
        pool = full_base_pool()
        conditioned = make_sit(RA, {JOIN_RS}, diff=0.5)
        pool.add(conditioned)
        algorithm = GetSelectivity(pool, NIndError())
        result = algorithm(frozenset({FILTER_A, JOIN_RS}))
        used = {
            am.sit
            for m in result.matches
            for am in m.attribute_matches
        }
        assert conditioned in used


class TestTheorem1:
    """The DP must match brute-force search over all non-separable
    decompositions, for any monotonic algebraic error function."""

    def exhaustive_best(self, pool, error_function, predicates):
        """Best error over every decomposition, applying the standard
        decomposition first (per component) then enumerating atomic
        chains without separable factors."""
        matcher = ViewMatcher(pool)

        def best_for_component(component):
            best = math.inf
            for decomposition in enumerate_decompositions(
                component, simplify_separable=True
            ):
                total = 0.0
                feasible = True
                for factor in decomposition.factors:
                    candidates = matcher.candidates_for_factor(factor)
                    if candidates is None:
                        feasible = False
                        break
                    match = select_match(candidates, error_function)
                    total += error_function.factor_error(match)
                if feasible:
                    best = min(best, total)
            return best

        total = 0.0
        for component in connected_components(predicates):
            total += best_for_component(component)
        return total

    @pytest.mark.parametrize(
        "predicates",
        [
            frozenset({FILTER_A, JOIN_RS}),
            frozenset({FILTER_A, JOIN_RS, JOIN_ST}),
            frozenset({FILTER_A, JOIN_RS, JOIN_ST, FILTER_C}),
        ],
        ids=["2-preds", "3-preds", "4-preds"],
    )
    def test_dp_matches_exhaustive_nind(self, predicates):
        pool = full_base_pool()
        pool.add(make_sit(RA, {JOIN_RS}, diff=0.4))
        pool.add(make_sit(SB, {JOIN_RS}, diff=0.2))
        pool.add(make_sit(TC, {JOIN_ST}, diff=0.7))
        error_function = NIndError()
        algorithm = GetSelectivity(pool, error_function)
        dp_error = algorithm(predicates).error
        brute = self.exhaustive_best(pool, error_function, predicates)
        assert dp_error == pytest.approx(brute)

    @pytest.mark.parametrize(
        "predicates",
        [
            frozenset({FILTER_A, JOIN_RS}),
            frozenset({FILTER_A, JOIN_RS, JOIN_ST, FILTER_C}),
        ],
        ids=["2-preds", "4-preds"],
    )
    def test_dp_matches_exhaustive_diff(self, predicates):
        pool = full_base_pool()
        pool.add(make_sit(RA, {JOIN_RS}, diff=0.4))
        pool.add(make_sit(TC, {JOIN_ST}, diff=0.7))
        error_function = DiffError(pool)
        algorithm = GetSelectivity(pool, error_function)
        dp_error = algorithm(predicates).error
        brute = self.exhaustive_best(pool, error_function, predicates)
        assert dp_error == pytest.approx(brute)


class TestSITDrivenPruning:
    def test_pruning_preserves_result_with_sparse_pool(self):
        pool = full_base_pool()
        pool.add(make_sit(RA, {JOIN_RS}, diff=0.5))
        predicates = frozenset({FILTER_A, JOIN_RS, JOIN_ST})
        plain = GetSelectivity(pool, NIndError())
        pruned = GetSelectivity(pool, NIndError(), sit_driven_pruning=True)
        plain_result = plain(predicates)
        pruned_result = pruned(predicates)
        assert pruned_result.selectivity == pytest.approx(
            plain_result.selectivity
        )
        assert pruned.matcher.calls < plain.matcher.calls

    def test_pruning_never_explores_unapproximable_conditionals(self):
        pool = full_base_pool()  # base only: every non-empty Q is futile
        pruned = GetSelectivity(pool, NIndError(), sit_driven_pruning=True)
        predicates = frozenset({FILTER_A, JOIN_RS})
        result = pruned(predicates)
        assert result.selectivity > 0.0
