"""Property tests for the interned bitmask universe.

The bitmask DP's correctness rests on a handful of primitives in
:mod:`repro.core.universe`; each is checked here against a brute-force or
legacy oracle:

* ``iter_submasks`` vs. explicit ``itertools.combinations`` enumeration;
* ``components`` (bitwise BFS over the adjacency table) vs. the
  union-find :func:`repro.core.predicates.connected_components` oracle;
* ``tie_break`` vs. the legacy (size, str-lexicographic) enumeration
  order of ``LegacyGetSelectivity._atomic_decompositions``;
* ``prune_masks``-driven ``_worth_exploring_masks`` vs. the legacy
  frozenset ``_worth_exploring``;
* interning stability while the universe grows across calls.
"""

from __future__ import annotations

import random
from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NIndError
from repro.core.get_selectivity import GetSelectivity
from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    connected_components,
)
from repro.core.universe import PredicateUniverse, iter_bits, iter_submasks

# ----------------------------------------------------------------------
# Random workload material (self-contained; mirrors the parity suite).

TABLES = [f"T{i}" for i in range(6)]
COLUMNS = ["a", "b", "c"]


def random_predicates(rng: random.Random, size: int) -> frozenset:
    n_tables = rng.randint(2, min(5, size))
    tables = rng.sample(TABLES, n_tables)
    joins = []
    for i in range(1, n_tables):
        left = Attribute(tables[rng.randrange(i)], rng.choice(COLUMNS))
        right = Attribute(tables[i], rng.choice(COLUMNS))
        joins.append(JoinPredicate(left, right))
    if len(joins) > 1 and rng.random() < 0.5:
        joins.pop(rng.randrange(len(joins)))
    predicates: set = set(joins)
    while len(predicates) < size:
        table = rng.choice(tables)
        low = float(rng.randint(0, 390))
        predicates.add(
            FilterPredicate(
                Attribute(table, rng.choice(COLUMNS)), low, low + rng.randint(0, 60)
            )
        )
    return frozenset(predicates)


# ----------------------------------------------------------------------
# iter_submasks / iter_bits


@given(st.integers(min_value=0, max_value=(1 << 12) - 1))
def test_iter_submasks_matches_bruteforce(mask):
    bits = [b for b in range(12) if mask >> b & 1]
    expected = {
        sum(1 << b for b in combo)
        for size in range(1, len(bits) + 1)
        for combo in combinations(bits, size)
    }
    seen = list(iter_submasks(mask))
    assert set(seen) == expected
    assert len(seen) == len(expected)  # each exactly once
    if mask:
        assert seen[0] == mask  # mask itself first
    assert seen == sorted(seen, reverse=True)  # decreasing numeric order


@given(st.integers(min_value=0, max_value=(1 << 60) - 1))
def test_iter_bits_matches_binary_expansion(mask):
    bits = list(iter_bits(mask))
    assert bits == [b for b in range(61) if mask >> b & 1]
    assert sum(1 << b for b in bits) == mask


def test_iter_submasks_count_is_exponential():
    mask = (1 << 10) - 1
    assert sum(1 for _ in iter_submasks(mask)) == (1 << 10) - 1


# ----------------------------------------------------------------------
# components vs. the union-find oracle


@settings(deadline=None, max_examples=60)
@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(3, 9))
def test_components_match_union_find_oracle(seed, size):
    rng = random.Random(seed)
    predicates = random_predicates(rng, size)
    universe = PredicateUniverse()
    mask = universe.intern(predicates)
    component_masks = universe.components(mask)
    oracle = connected_components(predicates)
    # Same partition, same deterministic order (smallest predicate's str).
    assert [universe.set_of(m) for m in component_masks] == oracle
    # Components partition the mask.
    combined = 0
    for component in component_masks:
        assert combined & component == 0
        combined |= component
    assert combined == mask
    assert universe.is_connected(mask) == (len(oracle) == 1)


def test_components_on_submasks_of_interned_universe():
    """Components must be correct for arbitrary submasks, not only the
    originally interned set (the DP calls it on every Q)."""
    rng = random.Random(4242)
    for _ in range(40):
        predicates = random_predicates(rng, 7)
        universe = PredicateUniverse()
        full = universe.intern(predicates)
        for _ in range(10):
            sub = rng.randrange(1, full + 1) & full
            if not sub:
                continue
            subset = universe.set_of(sub)
            assert [
                universe.set_of(m) for m in universe.components(sub)
            ] == connected_components(subset)


# ----------------------------------------------------------------------
# tie_break vs. legacy enumeration order


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(3, 7))
def test_tie_break_linearizes_legacy_enumeration(seed, size):
    rng = random.Random(seed)
    predicates = random_predicates(rng, size)
    universe = PredicateUniverse()
    mask = universe.intern(predicates)
    # Legacy order: subsets by (size, lexicographic over str-sorted list).
    items = sorted(predicates, key=str)
    legacy_order = [
        universe.intern(frozenset(combo))
        for n in range(1, len(items) + 1)
        for combo in combinations(items, n)
    ]
    keys = [universe.tie_break(m) for m in legacy_order]
    assert keys == sorted(keys), "tie_break must be monotone in legacy order"
    assert len(set(keys)) == len(keys), "tie_break must be injective"
    # And it covers every submask exactly once.
    assert sorted(legacy_order) == sorted(iter_submasks(mask))


def test_tie_break_stable_under_growth():
    """Growing the universe re-ranks bits globally; relative order of
    previously interned masks must track global str order."""
    universe = PredicateUniverse()
    a = FilterPredicate(Attribute("T1", "b"), 0.0, 1.0)
    b = FilterPredicate(Attribute("T3", "a"), 0.0, 1.0)
    c = FilterPredicate(Attribute("T0", "a"), 0.0, 1.0)  # str-smallest, last
    mask_a = universe.intern([a])
    mask_b = universe.intern([b])
    assert universe.tie_break(mask_a) < universe.tie_break(mask_b)
    mask_c = universe.intern([c])
    assert mask_a == universe.intern([a])  # masks never move
    assert universe.tie_break(mask_c) < universe.tie_break(mask_a)
    assert universe.tie_break(mask_a) < universe.tie_break(mask_b)


# ----------------------------------------------------------------------
# interning stability


def test_intern_is_idempotent_and_masks_stay_valid():
    rng = random.Random(11)
    universe = PredicateUniverse()
    predicates = random_predicates(rng, 6)
    first = universe.intern(predicates)
    assert universe.intern(predicates) == first
    assert universe.mask_of(predicates) == first
    assert universe.set_of(first) == predicates
    # Grow the universe with fresh predicates; old masks stay meaningful.
    more = random_predicates(rng, 8)
    universe.intern(more)
    assert universe.intern(predicates) == first
    assert universe.set_of(first) == predicates
    for predicate in predicates:
        assert predicate in universe
        bit = universe.bit(predicate)
        assert universe.predicate(bit) == predicate
        assert first >> bit & 1


def test_sorted_bits_follow_global_str_order():
    rng = random.Random(21)
    universe = PredicateUniverse()
    predicates = random_predicates(rng, 7)
    # Intern one at a time in random order to scramble bit assignment.
    shuffled = list(predicates)
    rng.shuffle(shuffled)
    for predicate in shuffled:
        universe.intern([predicate])
    mask = universe.intern(predicates)
    in_order = [universe.predicate(b) for b in universe.sorted_bits(mask)]
    assert in_order == sorted(predicates, key=str)


# ----------------------------------------------------------------------
# prune_masks vs. the legacy frozenset pruning oracle


def _pool_with_sits(rng, predicates):
    from repro.histograms.base import Bucket, Histogram
    from repro.stats.pool import SITPool
    from repro.stats.sit import SIT

    from repro.core.predicates import attributes_of

    histogram = Histogram([Bucket(0.0, 400.0, 1000.0, 100.0)])
    attributes = sorted(attributes_of(predicates))
    pool = SITPool()
    for attribute in attributes:
        pool.add(SIT(attribute, frozenset(), histogram))
    joins = sorted((p for p in predicates if p.is_join), key=str)
    for _ in range(rng.randint(0, 5)):
        if not joins:
            break
        expression = frozenset(rng.sample(joins, rng.randint(1, min(3, len(joins)))))
        pool.add(SIT(rng.choice(attributes), expression, histogram))
    return pool


def test_mask_pruning_matches_legacy_oracle():
    rng = random.Random(314)
    for _ in range(60):
        predicates = random_predicates(rng, rng.randint(3, 7))
        pool = _pool_with_sits(rng, predicates)
        fast = GetSelectivity(pool, NIndError(), sit_driven_pruning=True)
        oracle = GetSelectivity.create(
            pool, NIndError(), sit_driven_pruning=True, engine="legacy"
        )
        universe = fast.universe
        mask = universe.intern(predicates)
        for p_mask in iter_submasks(mask):
            q_mask = mask ^ p_mask
            if not q_mask:
                continue  # caller keeps Q = {} unconditionally
            assert fast._worth_exploring_masks(p_mask, q_mask) == (
                oracle._worth_exploring(
                    universe.set_of(p_mask), universe.set_of(q_mask)
                )
            ), (predicates, universe.set_of(p_mask))


def test_prune_masks_invalidate_on_pool_growth():
    from repro.histograms.base import Bucket, Histogram
    from repro.stats.sit import SIT

    rng = random.Random(8)
    predicates = random_predicates(rng, 4)
    pool = _pool_with_sits(rng, predicates)
    universe = PredicateUniverse(pool)
    mask = universe.intern(predicates)
    joins = [p for p in predicates if p.is_join]
    filters = [p for p in predicates if not p.is_join]
    target = filters[0] if filters else joins[0]
    attribute = next(iter(target.attributes))
    expression = frozenset(joins[:1])
    bit = universe.bit(target)
    before = universe.prune_masks(bit)
    pool.add(
        SIT(attribute, expression, Histogram([Bucket(0.0, 1.0, 10.0, 5.0)]))
    )
    after = universe.prune_masks(bit)
    expression_mask = universe.intern(expression)
    assert expression_mask in after
    assert set(before) <= set(after)
