"""Randomized parity suite: bitmask ``GetSelectivity`` vs the legacy oracle.

The bitmask rewrite (interned universe, submask enumeration, bitwise
connected components, mask-keyed caches) must be *behaviour preserving*:
on every workload it has to return bit-identical selectivity, error,
coverage, decomposition and SIT matches to the original frozenset
implementation (``GetSelectivity.create(..., engine="legacy")``), including exact
tie-breaks between equal-error decompositions.

The corpus below generates 200+ predicate sets (3-9 predicates, mixed
filter/join, connected and separable, uniform histograms to force ties and
skewed ones to break them) and sweeps error functions (nInd, Diff) and
Section 3.4 pruning across it.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import DiffError, NIndError
from repro.core.get_selectivity import (
    GetSelectivity,
    LegacyGetSelectivity,
    NoApplicableStatisticsError,
)
from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    attributes_of,
    connected_components,
)
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

TABLES = [f"T{i}" for i in range(6)]
COLUMNS = ["a", "b", "c"]

#: (size, how many corpus entries of that size) — 222 cases total, skewed
#: towards small sizes so the exponential legacy oracle stays fast.
SIZE_PLAN = [(3, 60), (4, 55), (5, 45), (6, 35), (7, 15), (8, 8), (9, 4)]


def random_histogram(rng: random.Random) -> Histogram:
    count = rng.randint(1, 4)
    edges = sorted(rng.sample(range(0, 401), 2 * count))
    buckets = []
    for i in range(count):
        low, high = float(edges[2 * i]), float(edges[2 * i + 1])
        frequency = float(rng.randint(10, 1000))
        distinct = float(rng.randint(1, max(1, int(min(frequency, high - low + 1)))))
        buckets.append(Bucket(low, high, frequency, distinct))
    return Histogram(buckets, null_count=float(rng.choice([0, 0, 0, 5])))


def random_predicates(rng: random.Random, size: int) -> frozenset:
    n_tables = rng.randint(2, min(5, size))
    tables = rng.sample(TABLES, n_tables)
    joins = []
    for i in range(1, n_tables):
        left = Attribute(tables[rng.randrange(i)], rng.choice(COLUMNS))
        right = Attribute(tables[i], rng.choice(COLUMNS))
        joins.append(JoinPredicate(left, right))
    if len(joins) > 1 and rng.random() < 0.35:
        joins.pop(rng.randrange(len(joins)))  # disconnect: separable case
    predicates: set = set(joins)
    while len(predicates) < size:
        table = rng.choice(tables)
        low = rng.randint(0, 390)
        high = low + rng.randint(0, 60)
        predicates.add(
            FilterPredicate(Attribute(table, rng.choice(COLUMNS)), float(low), float(high))
        )
    return frozenset(predicates)


def random_pool(rng: random.Random, predicates: frozenset) -> SITPool:
    attributes = sorted(attributes_of(predicates))
    uniform_ties = rng.random() < 0.3
    shared = Histogram([Bucket(0.0, 400.0, 1000.0, 200.0)])

    def histogram() -> Histogram:
        return shared if uniform_ties else random_histogram(rng)

    pool = SITPool()
    for attribute in attributes:
        pool.add(SIT(attribute, frozenset(), histogram(), diff=0.0))
    joins = sorted((p for p in predicates if p.is_join), key=str)
    for _ in range(rng.randint(0, 6)):
        if not joins:
            break
        expression = frozenset(rng.sample(joins, rng.randint(1, min(3, len(joins)))))
        attribute = rng.choice(attributes)
        diff = 0.0 if uniform_ties else round(rng.random(), 3)
        pool.add(SIT(attribute, expression, histogram(), diff=diff))
    return pool


def build_corpus() -> list[tuple[int, frozenset, SITPool, str, bool]]:
    rng = random.Random(20260806)
    corpus = []
    index = 0
    for size, count in SIZE_PLAN:
        for _ in range(count):
            predicates = random_predicates(rng, size)
            pool = random_pool(rng, predicates)
            error_name = "nInd" if index % 2 == 0 else "Diff"
            pruning = index % 3 == 0
            corpus.append((index, predicates, pool, error_name, pruning))
            index += 1
    return corpus


CORPUS = build_corpus()


def make_pair(pool, error_name, pruning):
    def error_function():
        return NIndError() if error_name == "nInd" else DiffError(pool)

    fast = GetSelectivity(pool, error_function(), sit_driven_pruning=pruning)
    oracle = GetSelectivity.create(
        pool, error_function(), sit_driven_pruning=pruning, engine="legacy"
    )
    assert isinstance(oracle, LegacyGetSelectivity)
    assert not isinstance(type(fast), type(LegacyGetSelectivity)) or not isinstance(
        fast, LegacyGetSelectivity
    )
    return fast, oracle


def assert_equal_results(fast_result, oracle_result):
    assert fast_result.selectivity == oracle_result.selectivity
    assert fast_result.error == oracle_result.error
    assert fast_result.coverage == oracle_result.coverage
    assert fast_result.decomposition == oracle_result.decomposition
    assert fast_result.matches == oracle_result.matches


@pytest.mark.parametrize(
    "index,predicates,pool,error_name,pruning",
    CORPUS,
    ids=[f"case{c[0]:03d}-n{len(c[1])}-{c[3]}{'-prune' if c[4] else ''}" for c in CORPUS],
)
def test_bitmask_matches_legacy(index, predicates, pool, error_name, pruning):
    fast, oracle = make_pair(pool, error_name, pruning)
    assert_equal_results(fast(predicates), oracle(predicates))
    # The memo answers sub-queries for free; those must agree too.  Use the
    # oracle's memo as the probe set (same subsets exist in both).
    rng = random.Random(index)
    subsets = sorted(oracle.cached_results(), key=lambda s: sorted(map(str, s)))
    for subset in rng.sample(subsets, min(3, len(subsets))):
        assert_equal_results(fast(subset), oracle(subset))


def test_corpus_is_large_and_varied():
    assert len(CORPUS) >= 200
    sizes = {len(c[1]) for c in CORPUS}
    assert sizes == {3, 4, 5, 6, 7, 8, 9}
    assert any(c[3] == "nInd" for c in CORPUS)
    assert any(c[3] == "Diff" for c in CORPUS)
    assert any(c[4] for c in CORPUS) and any(not c[4] for c in CORPUS)
    # Both separable and non-separable workloads are exercised.
    assert any(len(connected_components(c[1])) > 1 for c in CORPUS)
    assert any(len(connected_components(c[1])) == 1 for c in CORPUS)


def test_missing_statistics_parity():
    rng = random.Random(7)
    predicates = random_predicates(rng, 4)
    pool = random_pool(rng, predicates)
    # Drop one base histogram: both paths must refuse identically.
    victim = sorted(attributes_of(predicates))[0]
    crippled = SITPool([s for s in pool if not (s.is_base and s.attribute == victim)])
    fast, oracle = make_pair(crippled, "nInd", False)
    with pytest.raises(NoApplicableStatisticsError):
        fast(predicates)
    with pytest.raises(NoApplicableStatisticsError):
        oracle(predicates)


def test_incremental_interning_keeps_parity():
    """Calling the same instance on sub-queries first (growing the universe
    across calls, as the optimizer's cardinality-request loop does) must
    not change any answer."""
    rng = random.Random(99)
    for _ in range(10):
        predicates = random_predicates(rng, 6)
        pool = random_pool(rng, predicates)
        fast, oracle = make_pair(pool, "Diff", False)
        ordered = sorted(predicates, key=str)
        # Probe connected prefixes bottom-up, then the full set.
        for end in range(1, len(ordered) + 1):
            subset = frozenset(ordered[:end])
            assert_equal_results(fast(subset), oracle(subset))


def test_engine_factory_constructs_legacy():
    pool = SITPool([SIT(Attribute("T0", "a"), frozenset(), random_histogram(random.Random(1)))])
    oracle = GetSelectivity.create(pool, NIndError(), engine="legacy")
    assert isinstance(oracle, LegacyGetSelectivity)
    assert not isinstance(GetSelectivity(pool, NIndError()), LegacyGetSelectivity)


@pytest.mark.parametrize(
    "index,predicates,pool,error_name,pruning",
    CORPUS[::17],
    ids=[
        f"snap{c[0]:03d}-n{len(c[1])}-{c[3]}{'-prune' if c[4] else ''}"
        for c in CORPUS[::17]
    ],
)
def test_catalog_snapshot_parity(index, predicates, pool, error_name, pruning):
    """Serving from a ``StatisticsCatalog`` snapshot is bit-identical to
    serving from the bare pool (the catalog publishes, never transforms)."""
    from repro.catalog import StatisticsCatalog
    from repro.estimators import resolve_statistics

    catalog = StatisticsCatalog.from_pool(pool)
    snapshot_pool, snapshot = resolve_statistics(catalog)
    assert snapshot is not None and snapshot.pool is snapshot_pool
    error = NIndError() if error_name == "nInd" else DiffError(pool)
    snap_error = (
        NIndError() if error_name == "nInd" else DiffError(snapshot_pool)
    )
    bare = GetSelectivity(pool, error, sit_driven_pruning=pruning)
    via_snapshot = GetSelectivity(
        snapshot_pool, snap_error, sit_driven_pruning=pruning
    )
    assert_equal_results(bare(predicates), via_snapshot(predicates))
