"""Unit tests of :mod:`repro.core.plancache` internals: shape
fingerprints, the compile safety gates, bounded eviction, and the DP
memo bank that accelerates shape misses.

End-to-end bit-identity lives in ``test_plan_cache_parity.py``;
catalog-driven invalidation in ``tests/catalog/
test_plan_cache_coherence.py``.
"""

from __future__ import annotations

import pytest

from repro.core.errors import NIndError
from repro.estimators import SITEstimator
from repro.core.get_selectivity import GetSelectivity
from repro.core.plancache import (
    PlanCache,
    fingerprint_digest,
    shape_fingerprint,
)
from repro.core.predicates import FilterPredicate
from repro.stats.pool import SITPool
from repro.stats.sit import SIT


@pytest.fixture()
def shapes(two_table_attrs, two_table_join):
    """Five distinct predicate-set shapes over the two-table fixtures."""
    ra, sb = two_table_attrs["Ra"], two_table_attrs["Sb"]
    join = two_table_join
    return [
        frozenset({join}),
        frozenset({join, FilterPredicate(ra, 0.0, 20.0)}),
        frozenset({join, FilterPredicate(sb, 10.0, 40.0)}),
        frozenset(
            {join, FilterPredicate(ra, 0.0, 20.0), FilterPredicate(sb, 10.0, 40.0)}
        ),
        frozenset({FilterPredicate(ra, 5.0, 30.0)}),
    ]


class TestShapeFingerprint:
    def test_constants_are_abstracted(self, two_table_attrs, two_table_join):
        ra = two_table_attrs["Ra"]
        left = frozenset({two_table_join, FilterPredicate(ra, 0.0, 20.0)})
        right = frozenset({two_table_join, FilterPredicate(ra, 1.0, 25.0)})
        assert shape_fingerprint(left)[0] == shape_fingerprint(right)[0]

    def test_ordered_is_the_str_sort(self, two_table_attrs, two_table_join):
        ra = two_table_attrs["Ra"]
        predicates = frozenset(
            {two_table_join, FilterPredicate(ra, 0.0, 20.0)}
        )
        _, ordered = shape_fingerprint(predicates)
        assert list(ordered) == sorted(predicates, key=str)

    def test_attribute_changes_the_shape(self, two_table_attrs, two_table_join):
        ra, sb = two_table_attrs["Ra"], two_table_attrs["Sb"]
        left = frozenset({two_table_join, FilterPredicate(ra, 0.0, 20.0)})
        right = frozenset({two_table_join, FilterPredicate(sb, 0.0, 20.0)})
        assert shape_fingerprint(left)[0] != shape_fingerprint(right)[0]

    def test_join_and_filter_tokens_differ(self, shapes):
        fingerprints = {shape_fingerprint(s)[0] for s in shapes}
        assert len(fingerprints) == len(shapes)

    def test_digest_is_stable_and_short(self, shapes):
        for shape in shapes:
            fingerprint = shape_fingerprint(shape)[0]
            digest = fingerprint_digest(fingerprint)
            assert digest == fingerprint_digest(fingerprint)
            assert len(digest) == 8
            int(digest, 16)  # hex


class TestCompileGates:
    def test_plan_unstable_error_function_disables_the_cache(
        self, two_table_db, two_table_pool
    ):
        class Unstable(NIndError):
            plan_stable = False

        estimator = SITEstimator(
            two_table_db, two_table_pool, Unstable(), plan_cache=True
        )
        assert estimator.plan_cache is None

    def test_legacy_engine_disables_the_cache(
        self, two_table_db, two_table_pool
    ):
        estimator = SITEstimator(
            two_table_db,
            two_table_pool,
            NIndError(),
            engine="legacy",
            plan_cache=True,
        )
        assert estimator.plan_cache is None

    def test_plan_unstable_compile_refused_at_the_cache_too(
        self, two_table_pool, shapes
    ):
        class Unstable(NIndError):
            plan_stable = False

        algorithm = GetSelectivity(two_table_pool, Unstable())
        cache = PlanCache(two_table_pool)
        result = algorithm(shapes[1])
        assert cache.compile(shapes[1], algorithm, result) is None
        assert cache.status()["compiles"] == 0

    def test_filter_bearing_sit_expression_blocks_compilation(
        self, two_table_db, two_table_pool, two_table_attrs, shapes
    ):
        ra = two_table_attrs["Ra"]
        unsafe = SITPool(list(two_table_pool))
        base = next(s for s in two_table_pool if s.is_base and s.attribute == ra)
        unsafe.add(
            SIT(
                ra,
                frozenset({FilterPredicate(ra, 0.0, 50.0)}),
                base.histogram,
                diff=0.1,
            )
        )
        estimator = SITEstimator(
            two_table_db, unsafe, NIndError(), plan_cache=True
        )
        assert estimator.plan_cache is not None
        estimator.estimate_predicates(shapes[1])
        estimator.estimate_predicates(shapes[1])
        status = estimator.plan_cache.status()
        assert status["compiles"] == 0
        assert status["hits"] == 0
        assert status["misses"] == 2


class TestEviction:
    def test_oldest_plans_evicted_at_capacity(
        self, two_table_pool, shapes
    ):
        algorithm = GetSelectivity(two_table_pool, NIndError())
        cache = PlanCache(two_table_pool, max_plans=4)
        for shape in shapes:  # the 5th compile overflows max_plans=4
            result = algorithm(shape)
            assert cache.compile(shape, algorithm, result) is not None
        status = cache.status()
        assert status["compiles"] == len(shapes)
        assert status["evictions"] == 1
        assert len(cache) == 4
        # the oldest shape was the victim; the newest still replays
        assert cache.plan_for(shapes[0])[0] is None
        assert cache.plan_for(shapes[-1])[0] is not None

    def test_bytes_accounting_shrinks_with_eviction(
        self, two_table_pool, shapes
    ):
        algorithm = GetSelectivity(two_table_pool, NIndError())
        cache = PlanCache(two_table_pool, max_plans=4)
        sizes = []
        for shape in shapes:
            cache.compile(shape, algorithm, algorithm(shape))
            sizes.append(cache.bytes)
        assert all(size > 0 for size in sizes)
        assert sizes[-1] < sum(sizes[:4])  # not accumulating unboundedly


class TestMemoBank:
    def test_bank_seeds_a_later_query(self, two_table_pool, shapes):
        algorithm = GetSelectivity(two_table_pool, NIndError())
        algorithm.enable_memo_bank()
        algorithm(shapes[1])  # join + R.a filter
        algorithm.bank_memo()
        assert algorithm.memo_bank_size() > 0
        algorithm.reset()
        # a different shape sharing the join core hits the bank
        algorithm(shapes[2])  # join + S.b filter
        assert algorithm.memo_bank_hits > 0

    def test_banked_answers_are_bit_identical(self, two_table_pool, shapes):
        banked = GetSelectivity(two_table_pool, NIndError())
        banked.enable_memo_bank()
        banked(shapes[1])
        banked.bank_memo()
        banked.reset()
        fresh = GetSelectivity(two_table_pool, NIndError())
        left, right = banked(shapes[2]), fresh(shapes[2])
        assert left.selectivity == right.selectivity
        assert left.error == right.error
        assert left.decomposition == right.decomposition
        assert left.matches == right.matches

    def test_bank_is_bounded(self, two_table_pool, shapes):
        algorithm = GetSelectivity(two_table_pool, NIndError())
        algorithm.enable_memo_bank(limit=2)
        for shape in shapes:
            algorithm.reset()
            algorithm(shape)
            algorithm.bank_memo()
            assert algorithm.memo_bank_size() <= 2

    def test_pool_version_change_clears_the_bank(
        self, two_table_pool, shapes
    ):
        """The bank rides the same invalidation path as the plan cache:
        a derived-state version bump (``notify_table_update``) empties it
        at the next query, so stale subproblems are never served — and
        the full memo is rebuilt, keeping results compilable."""
        pool = SITPool(list(two_table_pool))  # private: version is mutated
        algorithm = GetSelectivity(pool, NIndError())
        algorithm.enable_memo_bank()
        algorithm(shapes[1])
        algorithm.bank_memo()
        assert algorithm.memo_bank_size() > 0
        pool.invalidate_derived()
        algorithm.reset()
        algorithm(shapes[1])
        assert algorithm.memo_bank_hits == 0
        # the post-bump run re-solved every submask itself
        assert len(algorithm._memo) >= 3

    def test_disable_drops_the_bank(self, two_table_pool, shapes):
        algorithm = GetSelectivity(two_table_pool, NIndError())
        algorithm.enable_memo_bank()
        algorithm(shapes[0])
        algorithm.bank_memo()
        algorithm.disable_memo_bank()
        assert algorithm.memo_bank_size() == 0


class TestReplayFlag:
    def test_hit_flag_set_only_on_replay_and_excluded_from_equality(
        self, two_table_db, two_table_pool, shapes
    ):
        warm = SITEstimator(
            two_table_db, two_table_pool, NIndError(), plan_cache=True
        )
        compiled = warm.estimate_predicates(shapes[3])
        replayed = warm.estimate_predicates(shapes[3])
        assert not compiled.plan_cache_hit
        assert replayed.plan_cache_hit
        # the flag is compare=False metadata: replay == the cold result
        assert replayed == compiled
