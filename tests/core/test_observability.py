"""View-matching accounting and the ``stats_snapshot()`` observability hook.

Figure 6's metric is the number of *logical* view-matching invocations per
query.  Historically the counter was split between ``_best_factor_match``
(bumping on cache hits) and ``ViewMatcher.candidates_for_factor`` (bumping
on cold lookups), which double-counted whenever both paths fired.  The
counter is now single-sourced through ``ViewMatcher.count_invocation``;
these tests pin the exactly-once contract on both DP implementations and
on the memo-coupled estimator, and cover the ``stats_snapshot()`` view.
"""

from __future__ import annotations

import pytest

from repro.core.errors import NIndError
from repro.core.get_selectivity import GetSelectivity
from repro.core.matching import ViewMatcher
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.core.selectivity import Factor
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT


def _histogram() -> Histogram:
    return Histogram([Bucket(0.0, 100.0, 1000.0, 50.0)])


@pytest.fixture()
def workload():
    a = Attribute("R", "a")
    b = Attribute("S", "b")
    c = Attribute("T", "c")
    join_rs = JoinPredicate(a, b)
    join_st = JoinPredicate(b, c)
    filter_r = FilterPredicate(a, 10.0, 40.0)
    predicates = frozenset({join_rs, join_st, filter_r})
    pool = SITPool()
    for attribute in (a, b, c):
        pool.add(SIT(attribute, frozenset(), _histogram()))
    pool.add(SIT(a, frozenset({join_st}), _histogram(), diff=0.1))
    return predicates, pool


class TestMatcherCounting:
    def test_count_invocation_bumps_once(self, workload):
        _, pool = workload
        matcher = ViewMatcher(pool)
        assert matcher.calls == 0
        matcher.count_invocation()
        assert matcher.calls == 1

    def test_candidates_for_factor_count_flag(self, workload):
        predicates, pool = workload
        matcher = ViewMatcher(pool)
        p = frozenset([next(iter(predicates))])
        factor = Factor(p, predicates - p)
        matcher.candidates_for_factor(factor)
        assert matcher.calls == 1
        matcher.candidates_for_factor(factor, count=False)
        assert matcher.calls == 1  # explicit opt-out: no bump

    def test_exactly_once_whether_cached_or_not(self, workload):
        """Warm factor-match caches must not change Figure 6 counts."""
        predicates, pool = workload
        algorithm = GetSelectivity(pool, NIndError())
        algorithm(predicates)
        cold_calls = algorithm.matcher.calls
        assert cold_calls > 0
        assert (
            algorithm.match_cache_hits + algorithm.match_cache_misses
            == cold_calls
        )
        # Memoized full query: zero further logical invocations.
        algorithm(predicates)
        assert algorithm.matcher.calls == cold_calls
        # Per-query reset with warm match cache: every invocation is a
        # cache hit, yet the logical count is identical to the cold run.
        algorithm.reset()
        algorithm(predicates)
        assert algorithm.matcher.calls == cold_calls
        assert algorithm.match_cache_misses == 0
        assert algorithm.match_cache_hits == cold_calls

    def test_legacy_and_bitmask_count_identically(self, workload):
        predicates, pool = workload
        fast = GetSelectivity(pool, NIndError())
        oracle = GetSelectivity.create(pool, NIndError(), engine="legacy")
        fast(predicates)
        oracle(predicates)
        assert fast.matcher.calls == oracle.matcher.calls

    def test_memo_coupled_counts_once_per_logical_factor(self, workload):
        from repro.core.errors import INFINITE_ERROR
        from repro.optimizer.integration import MemoCoupledEstimator

        predicates, pool = workload
        estimator = MemoCoupledEstimator.__new__(MemoCoupledEstimator)
        estimator.pool = pool
        estimator.error_function = NIndError()
        estimator.matcher = ViewMatcher(pool)
        estimator._match_cache = {}
        p = frozenset([next(iter(sorted(predicates, key=str)))])
        factor = Factor(p, predicates - p)
        match, error = estimator._match(factor)
        assert estimator.matcher.calls == 1
        again = estimator._match(factor)
        assert estimator.matcher.calls == 2  # counted, answered from cache
        assert again == (match, error)
        assert error < INFINITE_ERROR or match is None


class TestStats:
    KEY_PATHS = {
        "memo_entries": "caches.memo_entries",
        "match_cache_entries": "caches.match_cache_entries",
        "estimate_cache_entries": "caches.estimate_cache_entries",
        "match_cache_hits": "caches.match_cache_hits",
        "match_cache_misses": "caches.match_cache_misses",
        "matcher_calls": "counters.matcher_calls",
        "pruned_decompositions": "counters.pruned_decompositions",
        "universe_size": "counters.universe_size",
        "analysis_seconds": "timings.analysis_seconds",
        "estimation_seconds": "timings.estimation_seconds",
    }

    def _flat(self, algorithm):
        return algorithm.stats_snapshot().flat(self.KEY_PATHS)

    def test_snapshot_after_a_query(self, workload):
        predicates, pool = workload
        algorithm = GetSelectivity(pool, NIndError(), sit_driven_pruning=True)
        algorithm(predicates)
        stats = self._flat(algorithm)
        assert set(stats) == set(self.KEY_PATHS)
        assert stats["memo_entries"] >= 1
        assert stats["match_cache_entries"] >= 1
        assert stats["matcher_calls"] == (
            stats["match_cache_hits"] + stats["match_cache_misses"]
        )
        assert stats["universe_size"] == len(predicates)
        assert stats["analysis_seconds"] > 0.0
        assert stats["analysis_seconds"] >= stats["estimation_seconds"] >= 0.0

    def test_reset_clears_per_query_but_keeps_pool_pure_state(self, workload):
        predicates, pool = workload
        algorithm = GetSelectivity(pool, NIndError())
        algorithm(predicates)
        warm_cache = self._flat(algorithm)["match_cache_entries"]
        algorithm.reset()
        stats = self._flat(algorithm)
        assert stats["memo_entries"] == 0
        assert stats["matcher_calls"] == 0
        assert stats["match_cache_hits"] == 0
        assert stats["match_cache_misses"] == 0
        assert stats["analysis_seconds"] == 0.0
        assert stats["estimation_seconds"] == 0.0
        # Pool-pure structures survive reset (Section 4 reuse).
        assert stats["match_cache_entries"] == warm_cache
        assert stats["estimate_cache_entries"] >= 1
        assert stats["universe_size"] == len(predicates)

    def test_legacy_reports_zero_universe(self, workload):
        predicates, pool = workload
        oracle = GetSelectivity.create(pool, NIndError(), engine="legacy")
        oracle(predicates)
        stats = self._flat(oracle)
        assert set(stats) == set(self.KEY_PATHS)
        assert stats["universe_size"] == 0
        assert stats["memo_entries"] >= 1

    def test_pruning_counter_counts_skips(self, workload):
        predicates, pool = workload
        pruned = GetSelectivity(pool, NIndError(), sit_driven_pruning=True)
        pruned(predicates)
        unpruned = GetSelectivity(pool, NIndError())
        unpruned(predicates)
        assert self._flat(pruned)["pruned_decompositions"] > 0
        assert self._flat(unpruned)["pruned_decompositions"] == 0
