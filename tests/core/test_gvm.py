"""Tests for the greedy view-matching baseline."""

import pytest

from repro.core.gvm import GreedyViewMatching, _compatible
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.expressions import Query
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
ST = Attribute("S", "t")
TZ = Attribute("T", "z")

JOIN_RS = JoinPredicate(RX, SY)
JOIN_ST = JoinPredicate(ST, TZ)


def uniform():
    return Histogram([Bucket(0, 100, 1000, 100)])


def make_sit(attribute, expression=frozenset(), diff=0.0):
    return SIT(attribute, frozenset(expression), uniform(), diff=diff)


def base_pool():
    return SITPool([make_sit(a) for a in (RA, RX, SY, SB, ST, TZ)])


class TestCompatibility:
    def test_nested_expressions_compatible(self):
        small = make_sit(RA, {JOIN_RS})
        large = make_sit(SB, {JOIN_RS, JOIN_ST})
        assert _compatible(small, large)
        assert _compatible(large, small)

    def test_table_disjoint_compatible(self):
        one = make_sit(RA, {JOIN_RS})
        f_uv = JoinPredicate(Attribute("U", "u"), Attribute("V", "v"))
        other = make_sit(Attribute("U", "a"), {f_uv})
        assert _compatible(one, other)

    def test_figure1_conflict(self):
        """The paper's Figure 1: SIT over L⋈O and SIT over O⋈C share the
        orders table but neither expression contains the other — they
        cannot be combined in one rewritten plan."""
        j_lo = JoinPredicate(Attribute("L", "ok"), Attribute("O", "ok"))
        j_oc = JoinPredicate(Attribute("O", "ck"), Attribute("C", "ck"))
        sit_lo = make_sit(Attribute("O", "price"), {j_lo})
        sit_oc = make_sit(Attribute("C", "nation"), {j_oc})
        assert not _compatible(sit_lo, sit_oc)

    def test_base_sits_always_compatible(self):
        assert _compatible(make_sit(RA), make_sit(SB, {JOIN_RS}))


class TestGreedySelection:
    def test_prefers_larger_expression(self):
        pool = base_pool()
        better = make_sit(RA, {JOIN_RS, JOIN_ST})
        worse = make_sit(RA, {JOIN_RS})
        pool.add(worse)
        pool.add(better)
        gvm = GreedyViewMatching(pool)
        query = Query.of(JOIN_RS, JOIN_ST, FilterPredicate(RA, 0, 10))
        estimate = gvm.estimate(query)
        assert estimate.assignment[RA] == better

    def test_conflicting_sits_cannot_both_be_used(self):
        pool = base_pool()
        sit_a = make_sit(RA, {JOIN_RS})
        j_su = JoinPredicate(SB, Attribute("U", "b"))
        sit_u = make_sit(Attribute("U", "c"), {j_su})
        pool.add(sit_a)
        pool.add(sit_u)
        pool.add(make_sit(Attribute("U", "b")))
        pool.add(make_sit(Attribute("U", "c")))
        query = Query.of(
            JOIN_RS, j_su, FilterPredicate(RA, 0, 10),
            FilterPredicate(Attribute("U", "c"), 0, 10),
        )
        gvm = GreedyViewMatching(pool)
        assignment = gvm.estimate(query).assignment
        used = [s for s in assignment.values() if not s.is_base]
        # R⋈S and S⋈U overlap on S and are not nested: at most one of the
        # two conditioned SITs survives the compatibility constraint.
        assert len(used) <= 1

    def test_join_operand_never_conditioned_on_its_own_join(self):
        pool = base_pool()
        pool.add(make_sit(RX, {JOIN_RS}))  # pathological SIT
        gvm = GreedyViewMatching(pool)
        query = Query.of(JOIN_RS)
        assignment = gvm.estimate(query).assignment
        assert JOIN_RS not in assignment[RX].expression

    def test_counts_view_matching_calls(self):
        pool = base_pool()
        gvm = GreedyViewMatching(pool)
        query = Query.of(JOIN_RS, FilterPredicate(RA, 0, 10))
        gvm.estimate(query)
        # 3 attributes, assigned one per round: 3 + 2 + 1 lookups.
        assert gvm.matcher.calls == 6

    def test_empty_query(self):
        gvm = GreedyViewMatching(base_pool())
        assert gvm.estimate(Query(frozenset())).selectivity == 1.0

    def test_estimate_selectivity_wrapper(self):
        gvm = GreedyViewMatching(base_pool())
        predicates = frozenset({FilterPredicate(RA, 0, 10)})
        assert gvm.estimate_selectivity(predicates) == pytest.approx(
            0.1, rel=0.2
        )


class TestGVMvsTruth:
    def test_two_table_estimate_reasonable(
        self, two_table_db, two_table_pool, two_table_join, two_table_attrs
    ):
        gvm = GreedyViewMatching(two_table_pool)
        query = Query.of(
            two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
        )
        selectivity = gvm.estimate(query).selectivity
        from repro.engine.executor import Executor

        true = Executor(two_table_db).selectivity(query.predicates)
        assert selectivity == pytest.approx(true, rel=0.35)
