"""Edge-case tests for matching internals: combination enumeration,
selection, and the call-counting contract."""

import pytest

from repro.core.errors import NIndError
from repro.core.matching import (
    ViewMatcher,
    enumerate_matches,
    select_match,
)
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.core.selectivity import Factor
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
JOIN = JoinPredicate(RX, SY)
J2 = JoinPredicate(Attribute("R", "x2"), Attribute("S", "y2"))
FILTER = FilterPredicate(RA, 0, 10)


def uniform():
    return Histogram([Bucket(0, 100, 1000, 100)])


def make_sit(attribute, expression=frozenset(), diff=0.0):
    return SIT(attribute, frozenset(expression), uniform(), diff=diff)


class TestEnumerateMatches:
    def candidates(self, pool, p, q):
        matcher = ViewMatcher(pool)
        return matcher.candidates_for_factor(Factor(frozenset(p), frozenset(q)))

    def test_single_candidate_single_match(self):
        pool = SITPool([make_sit(RA)])
        candidates = self.candidates(pool, {FILTER}, set())
        matches = list(enumerate_matches(candidates))
        assert len(matches) == 1

    def test_cartesian_expansion(self):
        pool = SITPool(
            [
                make_sit(RA, {JOIN}, diff=0.2),
                make_sit(RA, {J2}, diff=0.4),
            ]
        )
        candidates = self.candidates(pool, {FILTER}, {JOIN, J2})
        matches = list(enumerate_matches(candidates))
        assert len(matches) == 2

    def test_cap_degrades_to_first_candidates(self):
        sits = [make_sit(RA, {JOIN}, diff=0.1), make_sit(RA, {J2}, diff=0.2)]
        pool = SITPool(sits)
        candidates = self.candidates(pool, {FILTER}, {JOIN, J2})
        matches = list(enumerate_matches(candidates, limit=1))
        assert len(matches) == 1

    def test_matches_share_factor(self):
        pool = SITPool([make_sit(RA)])
        candidates = self.candidates(pool, {FILTER}, set())
        for match in enumerate_matches(candidates):
            assert match.factor.p == frozenset({FILTER})


class TestCallCounting:
    def test_factor_cache_still_counts(self):
        pool = SITPool([make_sit(RA)])
        matcher = ViewMatcher(pool)
        factor = Factor(frozenset({FILTER}), frozenset())
        matcher.candidates_for_factor(factor)
        matcher.candidates_for_factor(factor)
        assert matcher.calls == 2

    def test_reset_counter_preserves_cache(self):
        pool = SITPool([make_sit(RA)])
        matcher = ViewMatcher(pool)
        factor = Factor(frozenset({FILTER}), frozenset())
        first = matcher.candidates_for_factor(factor)
        matcher.reset_counter()
        assert matcher.calls == 0
        assert matcher.candidates_for_factor(factor) is first


class TestAttributeMatchFields:
    def test_assumed_is_conditioning_minus_expression(self):
        partial = make_sit(RA, {JOIN})
        pool = SITPool([make_sit(RA), partial])
        matcher = ViewMatcher(pool)
        candidates = matcher.candidates_for_factor(
            Factor(frozenset({FILTER}), frozenset({JOIN, J2}))
        )
        match = select_match(candidates, NIndError())
        (am,) = match.attribute_matches
        assert am.sit == partial
        assert am.conditioning == frozenset({JOIN, J2})
        assert am.assumed == frozenset({J2})

    def test_sit_for_lookup(self):
        pool = SITPool([make_sit(RA)])
        matcher = ViewMatcher(pool)
        candidates = matcher.candidates_for_factor(
            Factor(frozenset({FILTER}), frozenset())
        )
        match = select_match(candidates, NIndError())
        assert match.sit_for(RA).attribute == RA
        with pytest.raises(KeyError):
            match.sit_for(SY)
