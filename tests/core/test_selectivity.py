"""Tests for the symbolic Factor/Decomposition objects."""

import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.core.selectivity import EMPTY_DECOMPOSITION, Decomposition, Factor

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")

JOIN = JoinPredicate(RX, SY)
FILTER = FilterPredicate(RA, 0, 10)
OTHER = FilterPredicate(Attribute("T", "c"), 5, 5)


class TestFactor:
    def test_tables_inferred(self):
        factor = Factor(frozenset({FILTER}), frozenset({JOIN}))
        assert factor.tables == frozenset(("R", "S"))

    def test_extra_tables_kept(self):
        factor = Factor(
            frozenset({FILTER}), frozenset(), tables=frozenset(("R", "Z"))
        )
        assert "Z" in factor.tables

    def test_overlapping_p_q_rejected(self):
        with pytest.raises(ValueError):
            Factor(frozenset({FILTER}), frozenset({FILTER}))

    def test_empty_p_rejected(self):
        with pytest.raises(ValueError):
            Factor(frozenset(), frozenset({JOIN}))

    def test_conditioned_flag(self):
        assert Factor(frozenset({FILTER}), frozenset({JOIN})).conditioned
        assert not Factor(frozenset({FILTER}), frozenset()).conditioned

    def test_predicates_union(self):
        factor = Factor(frozenset({FILTER}), frozenset({JOIN}))
        assert factor.predicates == frozenset({FILTER, JOIN})

    def test_string_forms(self):
        unconditioned = Factor(frozenset({FILTER}), frozenset())
        assert str(unconditioned) == "Sel(0<=R.a<=10)"
        conditioned = Factor(frozenset({FILTER}), frozenset({JOIN}))
        assert "|" in str(conditioned)

    def test_hashable(self):
        first = Factor(frozenset({FILTER}), frozenset({JOIN}))
        second = Factor(frozenset({FILTER}), frozenset({JOIN}))
        assert first == second
        assert {first} == {second}


class TestDecomposition:
    def test_empty(self):
        assert len(EMPTY_DECOMPOSITION) == 0
        assert str(EMPTY_DECOMPOSITION) == "1"
        assert EMPTY_DECOMPOSITION.predicates == frozenset()

    def test_extended_prepends(self):
        tail = Decomposition((Factor(frozenset({JOIN}), frozenset()),))
        head = Factor(frozenset({FILTER}), frozenset({JOIN}))
        combined = tail.extended(head)
        assert combined.factors[0] == head
        assert len(combined) == 2

    def test_merged(self):
        first = Decomposition((Factor(frozenset({FILTER}), frozenset()),))
        second = Decomposition((Factor(frozenset({OTHER}), frozenset()),))
        merged = first.merged(second)
        assert merged.predicates == frozenset({FILTER, OTHER})

    def test_string_joins_factors(self):
        decomposition = Decomposition(
            (
                Factor(frozenset({FILTER}), frozenset({JOIN})),
                Factor(frozenset({JOIN}), frozenset()),
            )
        )
        assert " * " in str(decomposition)
