"""Tests for candidate-SIT matching and factor approximation (Section 3.3)."""

import math

import pytest

from repro.core.matching import (
    ViewMatcher,
    estimate_factor,
    implicit_terms,
    select_match,
)
from repro.core.errors import NIndError
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.core.selectivity import Factor
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
TZ = Attribute("T", "z")
ST = Attribute("S", "t")

JOIN_RS = JoinPredicate(RX, SY)
JOIN_ST = JoinPredicate(ST, TZ)
FILTER_A = FilterPredicate(RA, 0, 10)
FILTER_B = FilterPredicate(SB, 5, 15)


def uniform_histogram(low=0.0, high=100.0, frequency=1000.0, distinct=100.0):
    return Histogram([Bucket(low, high, frequency, distinct)])


def sit(attribute, expression=frozenset(), diff=0.0):
    return SIT(attribute, frozenset(expression), uniform_histogram(), diff=diff)


def base_pool(*attributes):
    pool = SITPool()
    for attribute in attributes:
        pool.add(sit(attribute))
    return pool


class TestCandidateSelection:
    def test_example2_maximality(self):
        """Example 2: SIT(R.a|p1) and SIT(R.a|p2) qualify; SIT(R.a) does
        not (not maximal); SIT(R.a|p1,p2,p3) does not (extra predicate)."""
        p1 = JoinPredicate(RX, SY)
        p2 = JoinPredicate(Attribute("R", "x2"), Attribute("S", "y2"))
        p3 = JoinPredicate(ST, TZ)
        pool = SITPool()
        pool.add(sit(RA))
        sit_p1 = sit(RA, {p1})
        sit_p2 = sit(RA, {p2})
        sit_p123 = sit(RA, {p1, p2, p3})
        pool.add(sit_p1)
        pool.add(sit_p2)
        pool.add(sit_p123)
        matcher = ViewMatcher(pool)
        candidates = matcher.maximal_candidates(RA, frozenset({p1, p2}))
        assert set(candidates) == {sit_p1, sit_p2}

    def test_base_histogram_is_candidate_when_nothing_better(self):
        pool = base_pool(RA)
        matcher = ViewMatcher(pool)
        candidates = matcher.maximal_candidates(RA, frozenset({JOIN_RS}))
        assert len(candidates) == 1
        assert candidates[0].is_base

    def test_no_candidates_for_unknown_attribute(self):
        matcher = ViewMatcher(base_pool(RA))
        assert matcher.maximal_candidates(SB, frozenset()) == ()

    def test_fully_conditioned_sit_preferred_by_maximality(self):
        pool = base_pool(RA)
        conditioned = sit(RA, {JOIN_RS})
        pool.add(conditioned)
        matcher = ViewMatcher(pool)
        candidates = matcher.maximal_candidates(RA, frozenset({JOIN_RS}))
        assert candidates == (conditioned,)

    def test_attribute_cache(self):
        matcher = ViewMatcher(base_pool(RA))
        first = matcher.maximal_candidates(RA, frozenset())
        second = matcher.maximal_candidates(RA, frozenset())
        assert first is second


class TestFactorCandidates:
    def test_counts_invocations(self):
        matcher = ViewMatcher(base_pool(RA))
        factor = Factor(frozenset({FILTER_A}), frozenset())
        matcher.candidates_for_factor(factor)
        matcher.candidates_for_factor(factor)
        assert matcher.calls == 2

    def test_missing_attribute_returns_none(self):
        matcher = ViewMatcher(base_pool(RA))
        factor = Factor(frozenset({FILTER_B}), frozenset())
        assert matcher.candidates_for_factor(factor) is None

    def test_join_requires_both_sides(self):
        matcher = ViewMatcher(base_pool(RX))
        factor = Factor(frozenset({JOIN_RS}), frozenset())
        assert matcher.candidates_for_factor(factor) is None
        matcher = ViewMatcher(base_pool(RX, SY))
        assert matcher.candidates_for_factor(factor) is not None

    def test_weights_sum_to_predicate_count(self):
        matcher = ViewMatcher(base_pool(RA, RX, SY, SB))
        factor = Factor(frozenset({JOIN_RS, FILTER_A, FILTER_B}), frozenset())
        candidates = matcher.candidates_for_factor(factor)
        total = sum(entry.weight for entry in candidates.attributes)
        assert total == pytest.approx(3.0)

    def test_conditioning_partitioned_per_component(self):
        """Section 3.3 step 2: Q splits per wildcard component."""
        q_filter_t = FilterPredicate(TZ, 0, 1)
        pool = base_pool(RA, SB)
        matcher = ViewMatcher(pool)
        factor = Factor(
            frozenset({FILTER_A, FILTER_B}),
            frozenset({q_filter_t, JOIN_RS}),
        )
        candidates = matcher.candidates_for_factor(factor)
        by_attr = {entry.attribute: entry for entry in candidates.attributes}
        # R.a and S.b are connected to the join (shared tables) but not to
        # the T filter.
        assert q_filter_t not in by_attr[RA].conditioning
        assert JOIN_RS in by_attr[RA].conditioning
        assert JOIN_RS in by_attr[SB].conditioning


class TestImplicitTerms:
    def matcher(self, pool):
        return ViewMatcher(pool)

    def build_match(self, pool, p, q):
        matcher = ViewMatcher(pool)
        candidates = matcher.candidates_for_factor(Factor(frozenset(p), frozenset(q)))
        assert candidates is not None
        return select_match(candidates, NIndError())

    def test_single_filter_with_conditioning(self):
        """nInd(Sel(p|q1,q2) ~ SIT(p|q1)) = 1 (paper's Section 3.2 example)."""
        q2 = JoinPredicate(Attribute("R", "x2"), Attribute("S", "y2"))
        pool = base_pool(RA)
        pool.add(sit(RA, {JOIN_RS}))
        match = self.build_match(pool, {FILTER_A}, {JOIN_RS, q2})
        terms = implicit_terms(match)
        assert len(terms) == 1
        assert terms[0].assumed == frozenset({q2})

    def test_single_factor_chain_charges_internal_assumptions(self):
        """Sel({join, filter} | {}) with base SITs assumes filter ⊥ join."""
        pool = base_pool(RA, RX, SY)
        match = self.build_match(pool, {JOIN_RS, FILTER_A}, set())
        terms = {str(t.predicate): t for t in implicit_terms(match)}
        assert terms[str(JOIN_RS)].assumed == frozenset()
        assert terms[str(FILTER_A)].assumed == frozenset({JOIN_RS})

    def test_filter_on_join_attribute_is_covered_by_derived_histogram(self):
        filter_x = FilterPredicate(RX, 0, 5)
        pool = base_pool(RX, SY)
        match = self.build_match(pool, {JOIN_RS, filter_x}, set())
        terms = {str(t.predicate): t for t in implicit_terms(match)}
        assert terms[str(filter_x)].assumed == frozenset()

    def test_cross_component_predicates_never_charged(self):
        filter_t = FilterPredicate(TZ, 0, 1)
        pool = base_pool(RA, TZ)
        match = self.build_match(pool, {FILTER_A, filter_t}, set())
        for term in implicit_terms(match):
            assert not term.assumed

    def test_join_join_dependence_charged_once_connected(self):
        pool = base_pool(RX, SY, ST, TZ)
        match = self.build_match(pool, {JOIN_RS, JOIN_ST}, set())
        terms = sorted(implicit_terms(match), key=lambda t: str(t.predicate))
        # Deterministic order: R.x=S.y first, then S.t=T.z; the second is
        # charged for the first (they share table S).
        assumed_counts = sorted(len(t.assumed) for t in terms)
        assert assumed_counts == [0, 1]

    def test_q_conditioning_propagates_through_join_merge(self):
        """After a join merges components, filters inherit the other
        side's conditioning."""
        q_filter_s = FilterPredicate(SB, 0, 1)
        pool = base_pool(RA, RX, SY)
        match = self.build_match(pool, {JOIN_RS, FILTER_A}, {q_filter_s})
        terms = {str(t.predicate): t for t in implicit_terms(match)}
        # The filter on R.a is (post-join) conditioned on S.b's filter too.
        assert q_filter_s in terms[str(FILTER_A)].context


class TestEstimateFactor:
    def test_filter_only(self):
        pool = base_pool(RA)
        matcher = ViewMatcher(pool)
        candidates = matcher.candidates_for_factor(
            Factor(frozenset({FILTER_A}), frozenset())
        )
        match = select_match(candidates, NIndError())
        # Uniform histogram over [0, 100]: range [0, 10] is ~10%.
        assert estimate_factor(match) == pytest.approx(0.1, rel=0.15)

    def test_impossible_filter_is_zero(self):
        pool = base_pool(RA)
        matcher = ViewMatcher(pool)
        filter_out = FilterPredicate(RA, 500, 600)
        candidates = matcher.candidates_for_factor(
            Factor(frozenset({filter_out}), frozenset())
        )
        match = select_match(candidates, NIndError())
        assert estimate_factor(match) == 0.0

    def test_join_and_filter_multiply(self):
        pool = base_pool(RA, RX, SY)
        matcher = ViewMatcher(pool)
        candidates = matcher.candidates_for_factor(
            Factor(frozenset({JOIN_RS, FILTER_A}), frozenset())
        )
        match = select_match(candidates, NIndError())
        value = estimate_factor(match)
        assert 0.0 < value < 0.1
