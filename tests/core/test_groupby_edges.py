"""Edge cases for the Group-By extension."""

import pytest

from repro.estimators import SITEstimator
from repro.core.errors import NIndError
from repro.core.groupby import estimate_group_count
from repro.core.predicates import Attribute, FilterPredicate
from repro.engine.expressions import Query
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT


def uniform():
    return Histogram([Bucket(0, 100, 1000, 100)])


class TestGroupByFallbacks:
    def test_no_statistic_falls_back_to_row_count(self, two_table_db):
        # Pool covers only R.a; grouping on R.x has no statistic.
        pool = SITPool([SIT(Attribute("R", "a"), frozenset(), uniform())])
        estimator = SITEstimator(two_table_db, pool, NIndError())
        query = Query.of(FilterPredicate(Attribute("R", "a"), 0, 20))
        groups = estimate_group_count(estimator, query, Attribute("R", "x"))
        assert groups == pytest.approx(estimator.cardinality(query))

    def test_filter_on_grouping_attribute_restricts_domain(
        self, two_table_db, two_table_pool
    ):
        estimator = SITEstimator(
            two_table_db, two_table_pool, NIndError()
        )
        attribute = Attribute("R", "a")
        narrow = Query.of(FilterPredicate(attribute, 0, 8))
        wide = Query.of(FilterPredicate(attribute, 0, 80))
        narrow_groups = estimate_group_count(estimator, narrow, attribute)
        wide_groups = estimate_group_count(estimator, wide, attribute)
        assert narrow_groups < wide_groups

    def test_empty_query_zero_groups(self, two_table_db, two_table_pool):
        estimator = SITEstimator(
            two_table_db, two_table_pool, NIndError()
        )
        query = Query.of(FilterPredicate(Attribute("R", "a"), 5000, 6000))
        groups = estimate_group_count(estimator, query, Attribute("R", "a"))
        assert groups == pytest.approx(0.0, abs=1.0)
