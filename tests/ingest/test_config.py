"""IngestConfig: validation and dict round-trips."""

from __future__ import annotations

import pytest

from repro.ingest import IngestConfig


class TestIngestConfig:
    def test_defaults_are_valid(self):
        config = IngestConfig()
        assert config.queue_depth == 1024
        assert config.drift_every == 0

    def test_round_trip(self):
        config = IngestConfig(
            queue_depth=16,
            coalesce_window_s=0.5,
            max_batch=4,
            apply_retries=2,
            drift_every=3,
        )
        assert IngestConfig.from_dict(config.to_dict()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown IngestConfig keys"):
            IngestConfig.from_dict({"queue_depth": 8, "typo": 1})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_depth": 0},
            {"coalesce_window_s": -0.1},
            {"max_batch": 0},
            {"apply_retries": 0},
            {"drift_every": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            IngestConfig(**kwargs)
