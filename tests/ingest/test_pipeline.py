"""IngestPipeline semantics over a fake invalidation target: coalescing,
bounded admission with typed backpressure, fault-injected apply with
epoch requeue (never dropped), drift probing, drain and shutdown."""

from __future__ import annotations

import threading
import time

import pytest

from repro.ingest import (
    EstimateDriftProbe,
    IngestConfig,
    IngestOverloaded,
    IngestPipeline,
)
from repro.obs import StalenessTracker
from repro.resilience.faults import (
    POINT_INGEST_APPLY,
    FaultPlan,
    FaultRule,
    armed,
)
from repro.service.protocol import Overloaded


class FakeCatalog:
    """An invalidation target double: versioned, call-logging."""

    def __init__(self) -> None:
        self.version = 0
        self.calls: list[str] = []
        self._lock = threading.Lock()

    def notify_table_update(self, table: str) -> int:
        with self._lock:
            self.version += 1
            self.calls.append(table)
            return self.version

    def calls_for(self, table: str) -> int:
        with self._lock:
            return self.calls.count(table)


class GatedCatalog(FakeCatalog):
    """Blocks inside ``notify_table_update`` until released, so tests
    can deterministically pile writes up behind an in-flight apply."""

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.gate = threading.Event()
        self.gate.set()

    def notify_table_update(self, table: str) -> int:
        self.entered.set()
        assert self.gate.wait(timeout=10.0)
        return super().notify_table_update(table)


def wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class TestCoalescing:
    def test_storm_collapses_into_few_epochs(self):
        """Writes that arrive while one apply is in flight coalesce into
        a single follow-up invalidation epoch, not one call each."""
        catalog = GatedCatalog()
        catalog.gate.clear()
        with IngestPipeline(catalog, config=IngestConfig()) as pipeline:
            pipeline.submit("R")
            assert catalog.entered.wait(timeout=5.0)
            for _ in range(30):
                pipeline.submit("R")
            catalog.gate.set()
            assert pipeline.flush(timeout=10.0)
            # 31 events, at most the in-flight call plus one coalesced
            # follow-up epoch (a straggler batch split adds one more)
            assert catalog.calls_for("R") <= 3
            snapshot = pipeline.stats_snapshot().ingest
            assert snapshot["events"] == 31.0
            assert snapshot["events_applied"] == 31.0
            assert snapshot["epochs_applied"] == catalog.calls_for("R")
            assert snapshot["coalesced_events"] >= 28.0
            assert snapshot["coalesce_ratio"] > 10.0

    def test_distinct_tables_each_get_their_epoch(self):
        catalog = FakeCatalog()
        with IngestPipeline(catalog, config=IngestConfig()) as pipeline:
            for table in ("R", "S", "T"):
                pipeline.submit(table)
            assert pipeline.flush(timeout=10.0)
        assert sorted(set(catalog.calls)) == ["R", "S", "T"]


class TestBackpressure:
    def test_sheds_typed_overloaded_at_depth(self):
        catalog = GatedCatalog()
        catalog.gate.clear()
        config = IngestConfig(queue_depth=4)
        pipeline = IngestPipeline(catalog, config=config)
        try:
            pipeline.submit("R")
            assert catalog.entered.wait(timeout=5.0)
            for _ in range(4):
                pipeline.submit("R")
            with pytest.raises(IngestOverloaded, match="queue full"):
                pipeline.submit("R")
            # the shed speaks the serving layer's backpressure vocabulary
            with pytest.raises(Overloaded):
                pipeline.submit("R")
            snapshot = pipeline.stats_snapshot().ingest
            assert snapshot["shed"] == 2.0
            assert snapshot["events"] == 5.0
            # shed writes were retracted: exactly 5 acked writes pending
            assert pipeline.tracker.status()["tables"]["R"]["writes"] == 5
            catalog.gate.set()
            assert pipeline.flush(timeout=10.0)
            assert pipeline.tracker.quiesced()
        finally:
            catalog.gate.set()
            pipeline.close()

    def test_staleness_visible_while_pending_and_zero_after(self):
        now = [100.0]
        tracker = StalenessTracker(clock=lambda: now[0])
        catalog = GatedCatalog()
        catalog.gate.clear()
        pipeline = IngestPipeline(
            catalog, config=IngestConfig(), tracker=tracker
        )
        try:
            pipeline.submit("R")
            assert catalog.entered.wait(timeout=5.0)
            now[0] = 107.5
            assert tracker.staleness_s("R") == pytest.approx(7.5)
            assert tracker.max_staleness_s() == pytest.approx(7.5)
            assert not tracker.quiesced()
            catalog.gate.set()
            assert pipeline.flush(timeout=10.0)
            assert tracker.staleness_s("R") == 0.0
            assert tracker.quiesced()
        finally:
            catalog.gate.set()
            pipeline.close()


class TestFaultedApply:
    def test_transient_fault_retries_within_the_cycle(self):
        catalog = FakeCatalog()
        plan = FaultPlan([FaultRule(point=POINT_INGEST_APPLY)], seed=7)
        with armed(plan):
            with IngestPipeline(catalog, config=IngestConfig()) as pipeline:
                pipeline.submit("R")
                assert pipeline.flush(timeout=10.0)
        assert catalog.calls_for("R") == 1
        snapshot = pipeline.stats_snapshot().ingest
        assert snapshot["apply_faults"] == 1.0
        assert snapshot["apply_retries"] == 1.0
        assert "epoch_requeues" not in snapshot

    def test_exhausted_retries_requeue_the_epoch_never_drop(self):
        """A cycle's retries can all fault — the epoch then carries into
        the next cycle and still lands: no lost invalidations."""
        catalog = FakeCatalog()
        config = IngestConfig(apply_retries=3)
        plan = FaultPlan(
            [
                FaultRule(
                    point=POINT_INGEST_APPLY, match="table=R", max_fires=3
                )
            ],
            seed=7,
        )
        with armed(plan):
            with IngestPipeline(catalog, config=config) as pipeline:
                pipeline.submit("R")
                pipeline.submit("S")
                assert pipeline.flush(timeout=10.0)
        assert catalog.calls_for("R") == 1
        assert catalog.calls_for("S") == 1
        snapshot = pipeline.stats_snapshot().ingest
        assert snapshot["apply_faults"] == 3.0
        assert snapshot["epoch_requeues"] == 1.0
        assert pipeline.tracker.quiesced()


class TestDriftProbe:
    def test_probe_samples_applied_epochs(self):
        catalog = FakeCatalog()
        readings = iter([4.0, 2.0, 8.0, 1.5, 3.0, 2.5, 1.0, 5.0])
        pipeline = IngestPipeline(
            catalog,
            config=IngestConfig(drift_every=1),
            drift_probe=lambda: next(readings),
        )
        with pipeline:
            for table in ("R", "S", "T"):
                pipeline.submit(table)
            assert pipeline.flush(timeout=10.0)
            assert wait_until(lambda: pipeline.tracker.drift_probes >= 1)
        assert pipeline.tracker.drift_quantile(0.5) >= 1.0
        snapshot = pipeline.stats_snapshot().ingest
        assert snapshot["drift_probes"] >= 1.0
        assert snapshot["drift_q_error_p95"] >= snapshot["drift_q_error_p50"]

    def test_probe_failure_is_counted_not_fatal(self):
        catalog = FakeCatalog()

        def broken() -> float:
            raise RuntimeError("engine down")

        pipeline = IngestPipeline(
            catalog, config=IngestConfig(drift_every=1), drift_probe=broken
        )
        with pipeline:
            pipeline.submit("R")
            assert pipeline.flush(timeout=10.0)
        assert catalog.calls_for("R") == 1
        snapshot = pipeline.metrics_registry().snapshot()["ingest"]
        assert snapshot["drift_probe_errors"] >= 1.0

    def test_estimate_drift_probe_round_robins_q_error(self):
        served = {"q1": 100.0, "q2": 50.0}
        truth = {"q1": 25.0, "q2": 50.0}
        probe = EstimateDriftProbe(
            estimate=served.__getitem__,
            truth=truth.__getitem__,
            queries=["q1", "q2"],
        )
        assert probe() == pytest.approx(4.0)
        assert probe() == pytest.approx(1.0)
        assert probe() == pytest.approx(4.0)

    def test_probe_requires_queries(self):
        with pytest.raises(ValueError, match="at least one query"):
            EstimateDriftProbe(float, float, [])


class TestLifecycle:
    def test_close_without_drain_drops_and_counts(self):
        catalog = GatedCatalog()
        catalog.gate.clear()
        pipeline = IngestPipeline(catalog, config=IngestConfig(queue_depth=8))
        pipeline.submit("R")
        assert catalog.entered.wait(timeout=5.0)
        for _ in range(5):
            pipeline.submit("S")
        # release the in-flight apply shortly after close starts draining
        threading.Timer(0.05, catalog.gate.set).start()
        pipeline.close(drain=False)
        assert pipeline.closed
        snapshot = pipeline.metrics_registry().snapshot()["ingest"]
        assert snapshot["dropped"] == 5.0
        assert catalog.calls_for("S") == 0

    def test_submit_after_close_raises(self):
        pipeline = IngestPipeline(FakeCatalog())
        pipeline.close()
        with pytest.raises(RuntimeError, match="closed"):
            pipeline.submit("R")

    def test_rejects_targets_without_the_invalidation_path(self):
        with pytest.raises(TypeError, match="notify_table_update"):
            IngestPipeline(object())

    def test_status_is_compact_and_json_ready(self):
        import json

        catalog = FakeCatalog()
        with IngestPipeline(catalog) as pipeline:
            pipeline.submit("R")
            assert pipeline.flush(timeout=10.0)
            status = pipeline.status()
        json.dumps(status)
        assert status["staleness"]["tables"]["R"]["writes"] == 1
        assert not any(key.startswith("staleness_s.") for key in status)

    def test_real_catalog_version_advances(self, two_table_db, two_table_pool):
        from repro.catalog import StatisticsCatalog

        catalog = StatisticsCatalog.from_pool(
            two_table_pool, database=two_table_db
        )
        before = catalog.version
        tracker = StalenessTracker()
        catalog.attach_staleness(tracker)
        with IngestPipeline(catalog, tracker=tracker) as pipeline:
            for _ in range(10):
                pipeline.submit("R")
            assert pipeline.flush(timeout=10.0)
        assert catalog.version > before
        # coalesced: far fewer version bumps than events
        assert catalog.version - before < 10
        assert "ingest" in catalog.status()
