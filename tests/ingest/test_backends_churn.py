"""Every estimator backend survives a coalesced write storm.

The pipeline drives each backend's ``notify_table_update`` from its
apply thread while the main thread keeps estimating — the shape a
serving deployment sees under continuous ingestion.  Once the pipeline
quiesces, answers must be bit-identical to the pre-storm answers (the
underlying data never changed, and seeded rebuilds are deterministic).
"""

from __future__ import annotations

import pytest

from repro.core.predicates import FilterPredicate
from repro.estimators import BACKENDS, create_estimator
from repro.ingest import IngestConfig, IngestPipeline
from repro.obs import StalenessTracker


@pytest.fixture()
def churn_query(two_table_attrs, two_table_join):
    return frozenset(
        {two_table_join, FilterPredicate(two_table_attrs["Ra"], 10.0, 40.0)}
    )


class TestBackendChurn:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_backend_survives_a_write_storm(
        self, name, two_table_db, two_table_pool, churn_query
    ):
        estimator = create_estimator(name, two_table_db, two_table_pool)
        baseline = estimator.estimate_predicates(churn_query).selectivity

        tracker = StalenessTracker()
        with IngestPipeline(
            estimator, config=IngestConfig(), tracker=tracker
        ) as pipeline:
            mid_storm: list[float] = []
            for turn in range(50):
                pipeline.submit("R" if turn % 2 else "S")
                if turn % 10 == 0:
                    # estimating *during* the storm races the apply
                    # thread's invalidations; it must never crash
                    mid_storm.append(
                        estimator.estimate_predicates(churn_query).selectivity
                    )
            assert pipeline.flush(timeout=30.0)
            snapshot = pipeline.stats_snapshot().ingest
            assert snapshot["events_applied"] == 50.0
            # coalesced: invalidation cost is per-epoch, not per-event
            assert snapshot["epochs_applied"] < 50.0

        assert tracker.quiesced()
        assert mid_storm  # storm-time serving really happened
        settled = estimator.estimate_predicates(churn_query)
        if name == "sample":
            # the reservoir is seeded per (table, version): the storm
            # legitimately redraws it, but the answer stays inside the
            # backend's own distribution-free guarantee
            assert abs(settled.selectivity - baseline) <= (
                settled.error_bound + 1e-12
            )
        else:
            # the data never changed: sit and bn settle bit-identically
            assert settled.selectivity == baseline
