"""Tests for SIT objects and the diff_H discrepancy measure."""

import numpy as np
import pytest

from repro.core.predicates import Attribute, JoinPredicate
from repro.histograms.base import Bucket, Histogram
from repro.histograms.maxdiff import build_maxdiff
from repro.stats.diff import approximate_diff, exact_diff
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
JOIN = JoinPredicate(RX, SY)


def uniform():
    return Histogram([Bucket(0, 10, 100, 10)])


class TestSIT:
    def test_base_sit(self):
        sit = SIT(RA, frozenset(), uniform())
        assert sit.is_base
        assert sit.join_count == 0
        assert sit.tables == frozenset(("R",))
        assert str(sit) == "SIT(R.a)"

    def test_join_sit(self):
        sit = SIT(RA, frozenset({JOIN}), uniform(), diff=0.4)
        assert not sit.is_base
        assert sit.join_count == 1
        assert sit.tables == frozenset(("R", "S"))
        assert "R.x=S.y" in str(sit)

    def test_invalid_diff(self):
        with pytest.raises(ValueError):
            SIT(RA, frozenset(), uniform(), diff=1.5)

    def test_hashable(self):
        first = SIT(RA, frozenset({JOIN}), uniform(), diff=0.4)
        assert first in {first}


class TestExactDiff:
    def test_identical(self):
        values = np.array([1.0, 2.0, 2.0, 3.0])
        assert exact_diff(values, values) == 0.0

    def test_disjoint(self):
        assert exact_diff(np.array([1.0, 2.0]), np.array([5.0, 6.0])) == 1.0

    def test_half_overlap(self):
        # Base: {1: 1/2, 2: 1/2}; expr: {1: 1}. TV distance = 1/2.
        assert exact_diff(
            np.array([1.0, 2.0]), np.array([1.0])
        ) == pytest.approx(0.5)

    def test_empty_cases(self):
        assert exact_diff(np.array([]), np.array([])) == 0.0
        assert exact_diff(np.array([1.0]), np.array([])) == 1.0

    def test_nulls_excluded(self):
        base = np.array([1.0, 2.0, np.nan])
        expr = np.array([1.0, 2.0])
        assert exact_diff(base, expr) == pytest.approx(0.0)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 20, 200).astype(float)
        b = rng.integers(5, 25, 300).astype(float)
        assert exact_diff(a, b) == pytest.approx(exact_diff(b, a))

    def test_range(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 20, 500).astype(float)
        b = rng.integers(0, 20, 500).astype(float)
        assert 0.0 <= exact_diff(a, b) <= 1.0


class TestApproximateDiff:
    def test_close_to_exact_on_real_data(self):
        rng = np.random.default_rng(2)
        base = rng.integers(0, 300, 20000).astype(float)
        weights = 1.0 / np.arange(1, 301) ** 1.2
        weights /= weights.sum()
        skewed = rng.choice(300, size=20000, p=weights).astype(float)
        exact = exact_diff(base, skewed)
        approx = approximate_diff(
            build_maxdiff(base, 200), build_maxdiff(skewed, 200)
        )
        assert approx == pytest.approx(exact, abs=0.1)

    def test_capped_at_one(self):
        left = build_maxdiff(np.array([1.0]), 10)
        right = build_maxdiff(np.array([100.0]), 10)
        assert approximate_diff(left, right) == 1.0
