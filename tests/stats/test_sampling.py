"""Tests for sample-based SITs."""

import numpy as np
import pytest

from repro.estimators import make_gs_diff
from repro.core.predicates import FilterPredicate
from repro.engine.executor import Executor
from repro.engine.expressions import Query
from repro.stats.builder import SITBuilder
from repro.stats.pool import SITPool
from repro.stats.sampling import SamplingSITBuilder


class TestSamplingBuilder:
    def test_invalid_fraction(self, two_table_db):
        with pytest.raises(ValueError):
            SamplingSITBuilder(two_table_db, sample_fraction=0.0)
        with pytest.raises(ValueError):
            SamplingSITBuilder(two_table_db, sample_fraction=1.5)

    def test_total_mass_estimates_result_size(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        builder = SamplingSITBuilder(
            two_table_db, sample_fraction=0.25, min_sample_rows=50
        )
        sit = builder.build(two_table_attrs["Ra"], frozenset({two_table_join}))
        true = Executor(two_table_db).cardinality(frozenset({two_table_join}))
        assert sit.histogram.total == pytest.approx(true, rel=0.05)

    def test_small_results_taken_whole(
        self, two_table_db, two_table_attrs
    ):
        builder = SamplingSITBuilder(
            two_table_db, sample_fraction=0.1, min_sample_rows=10_000
        )
        sit = builder.build_base(two_table_attrs["Sb"])
        # S has 50 rows < min_sample_rows: exact.
        assert sit.histogram.total == 50

    def test_full_fraction_equals_exact_builder(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        sampled = SamplingSITBuilder(two_table_db, sample_fraction=1.0)
        exact = SITBuilder(two_table_db)
        s = sampled.build(two_table_attrs["Sb"], frozenset({two_table_join}))
        e = exact.build(two_table_attrs["Sb"], frozenset({two_table_join}))
        assert s.histogram.total == e.histogram.total
        assert s.diff == pytest.approx(e.diff)

    def test_sampled_diff_close_to_exact(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        sampled = SamplingSITBuilder(
            two_table_db, sample_fraction=0.3, min_sample_rows=100
        )
        exact = SITBuilder(two_table_db)
        s = sampled.build(two_table_attrs["Sb"], frozenset({two_table_join}))
        e = exact.build(two_table_attrs["Sb"], frozenset({two_table_join}))
        assert s.diff == pytest.approx(e.diff, abs=0.15)

    def test_deterministic_per_seed(self, two_table_db, two_table_attrs, two_table_join):
        def build():
            builder = SamplingSITBuilder(
                two_table_db, sample_fraction=0.2, sampling_seed=9
            )
            return builder.build(
                two_table_attrs["Ra"], frozenset({two_table_join})
            )

        assert build().histogram.total == build().histogram.total


class TestSampledEstimation:
    def test_end_to_end_accuracy_reasonable(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        """Sampled SITs plug into getSelectivity unchanged and stay in the
        same accuracy ballpark as exact SITs."""
        query = Query.of(
            two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
        )
        true = Executor(two_table_db).cardinality(query.predicates)

        def error(builder):
            pool = SITPool()
            for attribute in two_table_attrs.values():
                pool.add(builder.build_base(attribute))
            for sit in builder.build_many(
                frozenset({two_table_join}),
                [two_table_attrs["Ra"], two_table_attrs["Sb"]],
            ):
                pool.add(sit)
            return abs(make_gs_diff(two_table_db, pool).cardinality(query) - true)

        exact_error = error(SITBuilder(two_table_db))
        sampled_error = error(
            SamplingSITBuilder(
                two_table_db, sample_fraction=0.25, min_sample_rows=100
            )
        )
        assert sampled_error <= max(3 * exact_error, 0.25 * true)
