"""Tests for LEO-style execution feedback."""

import pytest

from repro.estimators import make_gs_diff
from repro.core.predicates import FilterPredicate
from repro.engine.executor import Executor
from repro.engine.expressions import Query
from repro.stats.feedback import FeedbackEstimator, FeedbackRepository


@pytest.fixture()
def query(two_table_join, two_table_attrs):
    return Query.of(
        two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
    )


class TestRepository:
    def test_record_and_lookup(self, query):
        repository = FeedbackRepository()
        repository.record(query.predicates, 123)
        assert repository.lookup(query.predicates) == 123
        assert repository.hits == 1

    def test_miss_counted(self, query):
        repository = FeedbackRepository()
        assert repository.lookup(query.predicates) is None
        assert repository.misses == 1

    def test_negative_cardinality_rejected(self, query):
        with pytest.raises(ValueError):
            FeedbackRepository().record(query.predicates, -1)

    def test_record_from_execution(self, two_table_db, query):
        repository = FeedbackRepository()
        executor = Executor(two_table_db)
        value = repository.record_from_execution(executor, query.predicates)
        assert value == executor.cardinality(query.predicates)
        assert len(repository) == 1

    def test_invalidate_table(self, query, two_table_attrs):
        repository = FeedbackRepository()
        repository.record(query.predicates, 5)
        other = frozenset({FilterPredicate(two_table_attrs["Sb"], 0, 10)})
        repository.record(other, 7)
        dropped = repository.invalidate_table("R")
        assert dropped == 1
        assert len(repository) == 1
        assert repository.lookup(other) == 7


class TestFeedbackEstimator:
    def test_observed_query_is_exact(self, two_table_db, two_table_pool, query):
        executor = Executor(two_table_db)
        estimator = FeedbackEstimator(make_gs_diff(two_table_db, two_table_pool))
        estimator.observe(executor, query)
        assert estimator.cardinality(query) == executor.cardinality(
            query.predicates
        )

    def test_unobserved_falls_back_to_sits(
        self, two_table_db, two_table_pool, query
    ):
        base = make_gs_diff(two_table_db, two_table_pool)
        estimator = FeedbackEstimator(base)
        assert estimator.cardinality(query) == pytest.approx(
            base.cardinality(query)
        )

    def test_component_feedback_composes_exactly(
        self, two_table_db, two_table_pool, two_table_attrs
    ):
        # Two table-disjoint filters: observing each component separately
        # gives the exact product (Property 2).
        executor = Executor(two_table_db)
        f_r = FilterPredicate(two_table_attrs["Ra"], 0, 20)
        f_s = FilterPredicate(two_table_attrs["Sb"], 0, 50)
        query = Query.of(f_r, f_s)
        estimator = FeedbackEstimator(make_gs_diff(two_table_db, two_table_pool))
        estimator.observe(executor, Query.of(f_r))
        estimator.observe(executor, Query.of(f_s))
        assert estimator.cardinality(query) == executor.cardinality(
            query.predicates
        )

    def test_empty_query(self, two_table_db, two_table_pool):
        estimator = FeedbackEstimator(make_gs_diff(two_table_db, two_table_pool))
        query = Query(frozenset(), tables=frozenset(("R",)))
        assert estimator.cardinality(query) == 2000

    def test_invalidation_restores_estimate(
        self, two_table_db, two_table_pool, query
    ):
        executor = Executor(two_table_db)
        base = make_gs_diff(two_table_db, two_table_pool)
        estimator = FeedbackEstimator(base)
        estimator.observe(executor, query)
        estimator.feedback.invalidate_table("R")
        assert estimator.cardinality(query) == pytest.approx(
            base.cardinality(query)
        )
