"""Tests for SIT construction from a database."""

import numpy as np
import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.executor import Executor
from repro.histograms.equidepth import build_equidepth
from repro.stats.builder import SITBuilder
from repro.stats.diff import exact_diff


class TestBuildBase(object):
    def test_base_histogram_matches_column(self, two_table_db, two_table_attrs):
        builder = SITBuilder(two_table_db)
        sit = builder.build_base(two_table_attrs["Ra"])
        assert sit.is_base
        assert sit.diff == 0.0
        assert sit.histogram.total == 2000

    def test_base_cached(self, two_table_db, two_table_attrs):
        builder = SITBuilder(two_table_db)
        first = builder.build_base(two_table_attrs["Ra"])
        second = builder.build_base(two_table_attrs["Ra"])
        assert first is second

    def test_invalidate_table_evicts_cached_bases(
        self, two_table_db, two_table_attrs
    ):
        builder = SITBuilder(two_table_db)
        ra = builder.build_base(two_table_attrs["Ra"])
        sb = builder.build_base(two_table_attrs["Sb"])
        assert builder.invalidate_table("R") == 1
        assert builder.invalidate_table("R") == 0  # already evicted
        assert builder.build_base(two_table_attrs["Ra"]) is not ra
        # other tables' caches survive
        assert builder.build_base(two_table_attrs["Sb"]) is sb


class TestBuildOnExpression:
    def test_histogram_covers_join_result(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        builder = SITBuilder(two_table_db)
        sit = builder.build(two_table_attrs["Ra"], frozenset({two_table_join}))
        executor = Executor(two_table_db)
        true_rows = executor.cardinality(frozenset({two_table_join}))
        assert sit.histogram.total == true_rows

    def test_diff_zero_when_distribution_preserved(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        # Every R row joins exactly once (FK integrity in the fixture), so
        # R.a's distribution over the join equals its base distribution.
        builder = SITBuilder(two_table_db)
        sit = builder.build(two_table_attrs["Ra"], frozenset({two_table_join}))
        assert sit.diff == pytest.approx(0.0, abs=1e-9)

    def test_diff_positive_when_skewed(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        # S.b over the join is reweighted by the Zipfian foreign key.
        builder = SITBuilder(two_table_db)
        sit = builder.build(two_table_attrs["Sb"], frozenset({two_table_join}))
        assert sit.diff > 0.2

    def test_exact_diff_matches_manual_computation(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        builder = SITBuilder(two_table_db)
        sit = builder.build(two_table_attrs["Sb"], frozenset({two_table_join}))
        executor = Executor(two_table_db)
        result = executor.execute(frozenset({two_table_join}))
        manual = exact_diff(
            two_table_db.column(two_table_attrs["Sb"]),
            result.column(two_table_attrs["Sb"]),
        )
        assert sit.diff == pytest.approx(manual)

    def test_approximate_diff_mode(self, two_table_db, two_table_attrs, two_table_join):
        builder = SITBuilder(two_table_db, exact_diffs=False)
        sit = builder.build(two_table_attrs["Sb"], frozenset({two_table_join}))
        exact_builder = SITBuilder(two_table_db, exact_diffs=True)
        exact_sit = exact_builder.build(
            two_table_attrs["Sb"], frozenset({two_table_join})
        )
        assert sit.diff == pytest.approx(exact_sit.diff, abs=0.15)

    def test_build_many_shares_execution(
        self, two_table_db, two_table_attrs, two_table_join
    ):
        builder = SITBuilder(two_table_db)
        sits = builder.build_many(
            frozenset({two_table_join}),
            [two_table_attrs["Ra"], two_table_attrs["Sb"]],
        )
        assert len(sits) == 2
        assert {s.attribute for s in sits} == {
            two_table_attrs["Ra"],
            two_table_attrs["Sb"],
        }

    def test_filter_expression(self, two_table_db, two_table_attrs):
        builder = SITBuilder(two_table_db)
        predicate = FilterPredicate(two_table_attrs["Ra"], 0, 30)
        sit = builder.build(two_table_attrs["Rx"], frozenset({predicate}))
        executor = Executor(two_table_db)
        assert sit.histogram.total == executor.cardinality(
            frozenset({predicate})
        )

    def test_unreferenced_table_attribute_uses_base_distribution(
        self, two_table_db, two_table_attrs
    ):
        builder = SITBuilder(two_table_db)
        predicate = FilterPredicate(two_table_attrs["Sb"], 0, 50)
        sit = builder.build(two_table_attrs["Ra"], frozenset({predicate}))
        assert sit.diff == pytest.approx(0.0, abs=1e-12)

    def test_custom_histogram_builder(self, two_table_db, two_table_attrs):
        builder = SITBuilder(
            two_table_db, histogram_builder=build_equidepth, max_buckets=16
        )
        sit = builder.build_base(two_table_attrs["Ra"])
        assert sit.histogram.bucket_count <= 16
