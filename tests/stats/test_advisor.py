"""Tests for the workload-driven SIT advisor."""

import pytest

from repro.estimators import make_gs_diff
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.executor import Executor
from repro.engine.expressions import Query
from repro.stats.advisor import AdvisorConfig, SITAdvisor
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool


@pytest.fixture()
def workload(two_table_join, two_table_attrs):
    return [
        Query.of(two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)),
        Query.of(two_table_join, FilterPredicate(two_table_attrs["Sb"], 10, 40)),
    ]


class TestAdvisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdvisorConfig(max_sits=-1)
        with pytest.raises(ValueError):
            AdvisorConfig(max_joins=-1)


class TestRecommendations:
    def test_high_diff_sits_rank_first(self, two_table_db, workload):
        advisor = SITAdvisor(SITBuilder(two_table_db))
        recommendations = advisor.candidates(workload)
        assert recommendations
        scores = [r.score for r in recommendations]
        assert scores == sorted(scores, reverse=True)
        # The skew-reweighted S-side attributes are the valuable picks
        # (S.y: the Zipfian join key; S.b: reweighted by it).
        top_attributes = {r.sit.attribute for r in recommendations[:2]}
        assert top_attributes == {Attribute("S", "y"), Attribute("S", "b")}

    def test_zero_diff_sits_excluded(self, two_table_db, workload):
        # R.a's distribution is unchanged by the join (diff ~ 0): the
        # advisor must not waste budget on it (Example 4's lesson).
        advisor = SITAdvisor(SITBuilder(two_table_db))
        recommended = {str(r.sit) for r in advisor.recommend(workload)}
        assert "SIT(R.a | R.x=S.y)" not in recommended

    def test_budget_respected(self, two_table_db, workload):
        advisor = SITAdvisor(
            SITBuilder(two_table_db), AdvisorConfig(max_sits=1)
        )
        assert len(advisor.recommend(workload)) <= 1

    def test_applicability_counts_queries(self, two_table_db, workload):
        advisor = SITAdvisor(SITBuilder(two_table_db))
        for recommendation in advisor.candidates(workload):
            assert recommendation.applicability == 2  # both queries join


class TestAdvisorPool:
    def test_pool_contains_base_histograms(self, two_table_db, workload):
        advisor = SITAdvisor(SITBuilder(two_table_db))
        pool = advisor.build_pool(workload)
        for query in workload:
            for predicate in query.filters:
                assert pool.find_base(predicate.attribute) is not None

    def test_small_budget_matches_full_pool_on_key_query(
        self, two_table_db, workload
    ):
        """One well-chosen SIT captures most of the full pool's benefit."""
        builder = SITBuilder(two_table_db)
        advisor_pool = SITAdvisor(
            builder, AdvisorConfig(max_sits=2)
        ).build_pool(workload)
        full_pool = build_workload_pool(builder, workload, max_joins=1)
        executor = Executor(two_table_db)
        query = workload[1]  # the S.b-filter query (the skewed one)
        true = executor.cardinality(query.predicates)
        advisor_error = abs(
            make_gs_diff(two_table_db, advisor_pool).cardinality(query) - true
        )
        full_error = abs(
            make_gs_diff(two_table_db, full_pool).cardinality(query) - true
        )
        assert advisor_error <= full_error * 1.5 + 1.0

    def test_empty_workload(self, two_table_db):
        advisor = SITAdvisor(SITBuilder(two_table_db))
        pool = advisor.build_pool([])
        assert len(pool) == 0
