"""Tests for SIT pool / catalog-document serialization (v2 + v1 migration)."""

import json
import math

import pytest

from repro.estimators import make_gs_diff
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.expressions import Query
from repro.histograms.base import Bucket, Histogram
from repro.stats.io import (
    DEFAULT_SIT_META,
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    CatalogDocument,
    PoolFormatError,
    decode_sit,
    dumps_document,
    dumps_pool,
    encode_sit,
    load_pool,
    loads_document,
    loads_pool,
    migrate_v1_to_v2,
    save_pool,
)
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")


def sample_sit():
    histogram = Histogram(
        [Bucket(0, 10, 100, 10), Bucket(11, 11, 50, 1)], null_count=5
    )
    return SIT(
        RA,
        frozenset(
            {
                JoinPredicate(RX, SY),
                FilterPredicate(SY, -math.inf, 7),
            }
        ),
        histogram,
        diff=0.37,
    )


class TestSITRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = sample_sit()
        restored = decode_sit(encode_sit(original))
        assert restored.attribute == original.attribute
        assert restored.expression == original.expression
        assert restored.diff == original.diff
        assert restored.histogram.buckets == original.histogram.buckets
        assert restored.histogram.null_count == original.histogram.null_count

    def test_infinity_round_trips(self):
        original = sample_sit()
        restored = decode_sit(encode_sit(original))
        filters = [p for p in restored.expression if not p.is_join]
        assert filters[0].low == -math.inf

    def test_base_sit(self):
        original = SIT(RA, frozenset(), Histogram([Bucket(0, 1, 5, 2)]))
        restored = decode_sit(encode_sit(original))
        assert restored.is_base


class TestPoolRoundTrip:
    def test_dumps_loads(self):
        pool = SITPool([sample_sit(), SIT(SY, frozenset(), Histogram([Bucket(0, 5, 9, 3)]))])
        restored = loads_pool(dumps_pool(pool))
        assert len(restored) == 2
        assert {str(s) for s in restored} == {str(s) for s in pool}

    def test_file_roundtrip(self, tmp_path):
        pool = SITPool([sample_sit()])
        path = tmp_path / "pool.json"
        save_pool(pool, path)
        restored = load_pool(path)
        assert len(restored) == 1
        assert restored.sits[0].diff == 0.37

    def test_restored_pool_estimates_identically(
        self, two_table_db, two_table_pool, two_table_join, two_table_attrs, tmp_path
    ):
        path = tmp_path / "pool.json"
        save_pool(two_table_pool, path)
        restored = load_pool(path)
        query = Query.of(
            two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
        )
        original_estimate = make_gs_diff(two_table_db, two_table_pool).cardinality(query)
        restored_estimate = make_gs_diff(two_table_db, restored).cardinality(query)
        assert restored_estimate == pytest.approx(original_estimate)

    def test_empty_pool(self):
        assert len(loads_pool(dumps_pool(SITPool()))) == 0


class TestV2Format:
    def test_writer_emits_v2(self):
        payload = json.loads(dumps_pool(SITPool([sample_sit()])))
        assert payload["version"] == FORMAT_VERSION == 2
        assert payload["catalog"] == {
            "catalog_version": 0,
            "table_versions": {},
        }
        assert payload["sits"][0]["meta"] == DEFAULT_SIT_META

    def test_document_roundtrip_preserves_metadata(self):
        document = CatalogDocument(
            sits=[sample_sit()],
            sit_meta=[
                {
                    "built_at": 12.5,
                    "build_seconds": 0.25,
                    "build_method": "sampled",
                    "source_versions": {"R": 3, "S": 1},
                }
            ],
            table_versions={"R": 3, "S": 1},
            catalog_version=7,
        )
        restored = loads_document(dumps_document(document))
        assert restored.catalog_version == 7
        assert restored.table_versions == {"R": 3, "S": 1}
        assert restored.sit_meta[0]["build_method"] == "sampled"
        assert restored.sit_meta[0]["source_versions"] == {"R": 3, "S": 1}
        assert restored.sit_meta[0]["built_at"] == 12.5

    def test_mismatched_meta_length_rejected(self):
        document = CatalogDocument(
            sits=[sample_sit()], sit_meta=[{}, {}]
        )
        with pytest.raises(PoolFormatError, match="parallel"):
            dumps_document(document)


class TestV1Migration:
    def v1_payload(self):
        return {
            "version": 1,
            "sits": [encode_sit(sample_sit())],
        }

    def test_v1_loads_through_migration(self):
        restored = loads_pool(json.dumps(self.v1_payload()))
        assert len(restored) == 1
        assert restored.sits[0].diff == 0.37

    def test_migration_synthesizes_conservative_metadata(self):
        migrated = migrate_v1_to_v2(self.v1_payload())
        assert migrated["version"] == 2
        assert migrated["catalog"] == {
            "catalog_version": 0,
            "table_versions": {},
        }
        assert migrated["sits"][0]["meta"] == DEFAULT_SIT_META
        document = loads_document(json.dumps(migrated))
        assert document.sit_meta[0] == DEFAULT_SIT_META

    def test_migration_rejects_non_v1(self):
        with pytest.raises(PoolFormatError, match="version-1"):
            migrate_v1_to_v2({"version": 2, "sits": []})


class TestFormatErrors:
    def test_not_json(self):
        with pytest.raises(PoolFormatError):
            loads_pool("{nope")

    def test_wrong_top_level(self):
        with pytest.raises(PoolFormatError):
            loads_pool("[1, 2]")

    def test_unknown_version_names_supported_versions(self):
        with pytest.raises(PoolFormatError) as excinfo:
            loads_pool('{"version": 99, "sits": []}')
        message = str(excinfo.value)
        assert "99" in message
        for version in SUPPORTED_VERSIONS:
            assert str(version) in message

    def test_bad_meta_payload(self):
        payload = {
            "version": 2,
            "catalog": {"catalog_version": 0, "table_versions": {}},
            "sits": [
                {
                    **encode_sit(sample_sit()),
                    "meta": {"source_versions": {"R": "not-a-number"}},
                }
            ],
        }
        with pytest.raises(PoolFormatError, match="meta"):
            loads_document(json.dumps(payload))

    def test_bad_predicate_kind(self):
        with pytest.raises(PoolFormatError):
            decode_sit(
                {
                    "attribute": {"table": "R", "column": "a"},
                    "expression": [{"kind": "mystery"}],
                    "histogram": {"buckets": []},
                }
            )

    def test_missing_histogram(self):
        with pytest.raises(PoolFormatError):
            decode_sit({"attribute": {"table": "R", "column": "a"}})

    def test_bad_bucket_shape(self):
        with pytest.raises(PoolFormatError):
            decode_sit(
                {
                    "attribute": {"table": "R", "column": "a"},
                    "expression": [],
                    "histogram": {"buckets": [[1, 2]]},
                }
            )
