"""Tests for SIT pools and the paper's J_i pool generation."""

import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.expressions import Query
from repro.histograms.base import Bucket, Histogram
from repro.stats.builder import SITBuilder
from repro.stats.pool import (
    SITPool,
    build_workload_pool,
    connected_join_subsets,
    workload_sit_requests,
)
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
ST = Attribute("S", "t")
TZ = Attribute("T", "z")
UV = Attribute("U", "v")
TU = Attribute("T", "u")

JOIN_RS = JoinPredicate(RX, SY)
JOIN_ST = JoinPredicate(ST, TZ)
JOIN_TU = JoinPredicate(TU, UV)


def uniform():
    return Histogram([Bucket(0, 10, 100, 10)])


def make_sit(attribute, expression=frozenset(), diff=0.0):
    return SIT(attribute, frozenset(expression), uniform(), diff=diff)


class TestSITPool:
    def test_find_by_attribute(self):
        base = make_sit(RA)
        conditioned = make_sit(RA, {JOIN_RS})
        pool = SITPool([base, conditioned, make_sit(SB)])
        assert set(pool.find(RA)) == {base, conditioned}
        assert pool.find(Attribute("Z", "q")) == []

    def test_find_base(self):
        base = make_sit(RA)
        pool = SITPool([make_sit(RA, {JOIN_RS}), base])
        assert pool.find_base(RA) == base
        assert pool.find_base(SB) is None

    def test_base_only_restriction(self):
        pool = SITPool([make_sit(RA), make_sit(RA, {JOIN_RS})])
        restricted = pool.base_only()
        assert len(restricted) == 1
        assert all(s.is_base for s in restricted)

    def test_restrict_joins(self):
        pool = SITPool(
            [
                make_sit(RA),
                make_sit(RA, {JOIN_RS}),
                make_sit(SB, {JOIN_RS, JOIN_ST}),
            ]
        )
        assert len(pool.restrict_joins(0)) == 1
        assert len(pool.restrict_joins(1)) == 2
        assert len(pool.restrict_joins(2)) == 3

    def test_find_by_expression_member(self):
        conditioned = make_sit(RA, {JOIN_RS})
        pool = SITPool([make_sit(RA), conditioned])
        assert pool.find(expression_member=JOIN_RS) == [conditioned]
        assert pool.find(expression_member=JOIN_ST) == []

    def test_invalidate_derived_bumps_version_only(self):
        sit = make_sit(RA)
        pool = SITPool([sit])
        before = pool.version
        pool.invalidate_derived()
        assert pool.version == before + 1
        assert list(pool) == [sit]

    def test_contains_and_iter(self):
        sit = make_sit(RA)
        pool = SITPool([sit])
        assert sit in pool
        assert list(pool) == [sit]


class TestConnectedJoinSubsets:
    def test_chain_subsets(self):
        subsets = connected_join_subsets(frozenset({JOIN_RS, JOIN_ST}), 2)
        assert frozenset({JOIN_RS}) in subsets
        assert frozenset({JOIN_ST}) in subsets
        assert frozenset({JOIN_RS, JOIN_ST}) in subsets

    def test_disconnected_pairs_excluded(self):
        far = JoinPredicate(Attribute("X", "x"), Attribute("Y", "y"))
        subsets = connected_join_subsets(frozenset({JOIN_RS, far}), 2)
        assert frozenset({JOIN_RS, far}) not in subsets
        assert len(subsets) == 2

    def test_size_cap(self):
        joins = frozenset({JOIN_RS, JOIN_ST, JOIN_TU})
        subsets = connected_join_subsets(joins, 1)
        assert all(len(s) == 1 for s in subsets)


class TestWorkloadRequests:
    def make_query(self):
        return Query.of(
            JOIN_RS,
            JOIN_ST,
            FilterPredicate(RA, 0, 10),
            FilterPredicate(TZ, 0, 5),
        )

    def test_base_histograms_for_all_attributes(self):
        requests = workload_sit_requests([self.make_query()], max_joins=0)
        assert requests[frozenset()] == {RA, RX, SY, ST, TZ}

    def test_expressions_limited_by_join_count(self):
        requests = workload_sit_requests([self.make_query()], max_joins=1)
        expressions = [e for e in requests if e]
        assert all(len(e) == 1 for e in expressions)

    def test_attributes_require_table_in_expression(self):
        requests = workload_sit_requests([self.make_query()], max_joins=1)
        attrs = requests[frozenset({JOIN_RS})]
        # R.a, R.x, S.y, S.t are on tables of R⋈S; T.z is not.
        assert TZ not in attrs
        assert RA in attrs

    def test_j2_contains_two_join_expressions(self):
        requests = workload_sit_requests([self.make_query()], max_joins=2)
        assert frozenset({JOIN_RS, JOIN_ST}) in requests


class TestBuildWorkloadPool:
    def test_pool_counts_grow_with_join_limit(self, two_table_db, two_table_attrs):
        builder = SITBuilder(two_table_db)
        query = Query.of(
            JoinPredicate(two_table_attrs["Rx"], two_table_attrs["Sy"]),
            FilterPredicate(two_table_attrs["Ra"], 0, 20),
        )
        j0 = build_workload_pool(builder, [query], max_joins=0)
        j1 = build_workload_pool(builder, [query], max_joins=1)
        assert len(j0) < len(j1)
        assert all(s.is_base for s in j0)

    def test_restriction_equals_rebuild(self, two_table_db, two_table_attrs):
        builder = SITBuilder(two_table_db)
        query = Query.of(
            JoinPredicate(two_table_attrs["Rx"], two_table_attrs["Sy"]),
            FilterPredicate(two_table_attrs["Ra"], 0, 20),
        )
        j1 = build_workload_pool(builder, [query], max_joins=1)
        j0_again = j1.restrict_joins(0)
        j0 = build_workload_pool(builder, [query], max_joins=0)
        assert {str(s) for s in j0_again} == {str(s) for s in j0}

    def test_no_duplicate_sits(self, two_table_db, two_table_attrs):
        builder = SITBuilder(two_table_db)
        query = Query.of(
            JoinPredicate(two_table_attrs["Rx"], two_table_attrs["Sy"]),
            FilterPredicate(two_table_attrs["Ra"], 0, 20),
        )
        pool = build_workload_pool(builder, [query, query], max_joins=1)
        names = [str(s) for s in pool]
        assert len(names) == len(set(names))
