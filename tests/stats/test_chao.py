"""Tests for the Chao1 distinct-count estimator used by sampled SITs."""

import numpy as np
import pytest

from repro.stats.sampling import chao1_distinct


class TestChao1:
    def test_empty(self):
        assert chao1_distinct(np.array([])) == 0.0

    def test_all_nan(self):
        assert chao1_distinct(np.array([np.nan, np.nan])) == 0.0

    def test_saturated_sample_adds_nothing(self):
        # Every value seen many times: f1 = 0, estimate equals observed.
        values = np.repeat(np.arange(10.0), 5)
        assert chao1_distinct(values) == 10.0

    def test_singletons_inflate_estimate(self):
        values = np.arange(100.0)  # all singletons
        assert chao1_distinct(values) > 100.0

    def test_estimates_population_within_factor(self):
        rng = np.random.default_rng(0)
        population = 500
        sample = rng.choice(population, size=400, replace=True).astype(float)
        observed = len(np.unique(sample))
        estimate = chao1_distinct(sample)
        assert observed <= estimate
        assert estimate == pytest.approx(population, rel=0.5)

    def test_lower_bound_property(self):
        rng = np.random.default_rng(1)
        sample = rng.choice(1000, size=200, replace=True).astype(float)
        assert chao1_distinct(sample) >= len(np.unique(sample))
