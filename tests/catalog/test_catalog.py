"""StatisticsCatalog: registry, metadata, snapshots and the one
invalidation event path."""

import pytest

from repro.catalog import (
    BUILD_FULL,
    BUILD_SAMPLED,
    SITMetadata,
    StatisticsCatalog,
    sit_key,
)
from repro.core.errors import NIndError
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.core.universe import PredicateUniverse
from repro.histograms.base import Bucket, Histogram
from repro.stats.feedback import FeedbackRepository
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
JOIN_RS = JoinPredicate(RX, SY)


def uniform():
    return Histogram([Bucket(0, 10, 100, 10)])


def make_sit(attribute, expression=frozenset(), diff=0.0):
    return SIT(attribute, frozenset(expression), uniform(), diff=diff)


@pytest.fixture()
def catalog():
    pool = SITPool(
        [
            make_sit(RA),
            make_sit(RX),
            make_sit(SY),
            make_sit(SB),
            make_sit(RA, {JOIN_RS}, diff=0.4),
            make_sit(SB, {JOIN_RS}, diff=0.2),
        ]
    )
    return StatisticsCatalog.from_pool(pool)


class TestMetadata:
    def test_rejects_unknown_build_method(self):
        with pytest.raises(ValueError, match="build_method"):
            SITMetadata(build_method="guesswork")

    def test_staleness_against_table_versions(self):
        metadata = SITMetadata(source_versions={"R": 1, "S": 2})
        assert not metadata.is_stale({"R": 1, "S": 2}, ["R", "S"])
        assert metadata.is_stale({"R": 2, "S": 2}, ["R", "S"])
        # only tables the SIT touches matter
        assert not metadata.is_stale({"T": 9}, ["R", "S"])

    def test_dict_roundtrip(self):
        metadata = SITMetadata(
            built_at=10.0,
            build_seconds=0.5,
            build_method=BUILD_SAMPLED,
            source_versions={"R": 3},
            diff=0.7,
        )
        restored = SITMetadata.from_dict(metadata.to_dict(), diff=0.7)
        assert restored == metadata


class TestRegistry:
    def test_from_pool_registers_every_sit(self, catalog):
        assert len(catalog) == 6
        for sit in catalog:
            metadata = catalog.metadata_for(sit)
            assert metadata.build_method == BUILD_FULL
            assert not metadata.is_stale(catalog.table_versions, sit.tables)

    def test_add_replaces_by_key(self, catalog):
        version = catalog.version
        replacement = make_sit(RA, {JOIN_RS}, diff=0.9)
        catalog.add(replacement)
        assert len(catalog) == 6  # replaced, not appended
        assert catalog.metadata_for(replacement).diff == 0.9
        assert catalog.version == version + 1

    def test_remove(self, catalog):
        target = next(s for s in catalog if not s.is_base)
        assert catalog.remove(target)
        assert len(catalog) == 5
        assert not catalog.remove(target)
        with pytest.raises(KeyError):
            catalog.metadata_for(target)

    def test_status_summary(self, catalog):
        status = catalog.status()
        assert status["sits"] == 6
        assert status["base_histograms"] == 4
        assert status["conditioned_sits"] == 2
        assert status["stale_sits"] == 0
        assert status["build_methods"] == {BUILD_FULL: 6}


class TestSnapshotIsolation:
    def test_mutation_publishes_new_pool(self, catalog):
        snapshot = catalog.snapshot()
        frozen_pool = snapshot.pool
        frozen_names = {str(s) for s in frozen_pool}
        catalog.add(make_sit(SY))
        assert catalog.pool is not frozen_pool
        assert {str(s) for s in frozen_pool} == frozen_names
        assert not snapshot.is_current
        assert catalog.snapshot().is_current

    def test_snapshot_carries_version_and_metadata(self, catalog):
        snapshot = catalog.snapshot()
        assert snapshot.version == catalog.version
        for sit in snapshot:
            assert snapshot.metadata_for(sit) == catalog.metadata_for(sit)


class TestInvalidationEventPath:
    def test_table_update_marks_dependents_stale(self, catalog):
        assert catalog.stale_sits() == []
        catalog.notify_table_update("S")
        stale = {str(s) for s in catalog.stale_sits()}
        # everything touching S: its base histograms and both conditioned
        # SITs (their generating expression joins S)
        assert stale == {
            "SIT(S.y)",
            "SIT(S.b)",
            "SIT(R.a | R.x=S.y)",
            "SIT(S.b | R.x=S.y)",
        }

    def test_feedback_dropped_on_table_update(self, catalog):
        repository = catalog.attach_feedback(FeedbackRepository())
        repository.record(frozenset({FilterPredicate(SB, 0, 5)}), 12)
        repository.record(frozenset({FilterPredicate(RA, 0, 5)}), 7)
        catalog.notify_table_update("S")
        assert len(repository) == 1  # only the R record survives
        assert repository.lookup(frozenset({FilterPredicate(SB, 0, 5)})) is None

    def test_table_update_bumps_catalog_and_pool_versions(self, catalog):
        catalog_version = catalog.version
        pool_version = catalog.pool.version
        new = catalog.notify_table_update("R")
        assert new == 1
        assert catalog.table_version("R") == 1
        assert catalog.version == catalog_version + 1
        assert catalog.pool.version == pool_version + 1

    def test_stale_universe_masks_cannot_be_reused(self, catalog):
        """Regression: Section 3.4 prune masks are keyed on the pool's
        derived-state version, so one ``notify_table_update`` forces the
        bitmask universe to rebuild them instead of serving stale masks."""
        universe = PredicateUniverse(catalog.pool)
        universe.intern(frozenset({JOIN_RS, FilterPredicate(RA, 0, 5)}))
        universe.prune_masks(0)
        served_version = universe._prune_pool_version
        assert served_version == catalog.pool.version
        catalog.notify_table_update("S")
        assert catalog.pool.version > served_version
        universe.prune_masks(0)
        assert universe._prune_pool_version == catalog.pool.version

    def test_lifecycle_metrics_flow(self, catalog):
        catalog.attach_feedback(FeedbackRepository())
        catalog.notify_table_update("S")
        snapshot = catalog.stats_snapshot()
        assert snapshot.catalog["invalidations"] == 1.0
        assert snapshot.catalog["stale_sits"] == 4.0
        assert snapshot.meta["subsystem"] == "catalog"


class TestErrorFunctionIndependence:
    def test_snapshot_pool_is_usable_by_algorithms(self, catalog):
        from repro.core.get_selectivity import GetSelectivity

        snapshot = catalog.snapshot()
        algorithm = GetSelectivity.create(snapshot.pool, NIndError())
        result = algorithm(
            frozenset({JOIN_RS, FilterPredicate(RA, 0, 5)})
        )
        assert 0.0 <= result.selectivity <= 1.0
