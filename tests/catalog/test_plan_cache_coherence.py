"""Plan-cache coherence through the catalog's single invalidation path.

The regression the compiled-plan cache must never introduce: a plan
compiled against snapshot V being *served* after the underlying table
changed.  ``StatisticsCatalog.notify_table_update`` bumps the published
pool's derived-state version; every :class:`~repro.core.plancache.
PlanCache` lookup revalidates that counter, so a mutation between
compile and replay evicts the plan and the next request recompiles.  A
hot snapshot swap (``refresh``) retires the owning session — and its
cache object — wholesale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import EstimationSession, StatisticsCatalog
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.database import Database, Table
from repro.engine.expressions import Query
from repro.engine.schema import ForeignKey, Schema, TableSchema

RX = Attribute("R", "x")
RA = Attribute("R", "a")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
JOIN = JoinPredicate(RX, SY)


def make_s_table(schema: Schema, seed: int, s_shift: float) -> Table:
    rng = np.random.default_rng(seed + 1)
    return Table(
        schema.table("S"),
        {
            "y": np.arange(50, dtype=np.float64),
            "b": (rng.integers(0, 100, 50) + s_shift)
            .clip(0, 99)
            .astype(np.float64),
        },
    )


def make_database(seed: int = 0) -> Database:
    rng = np.random.default_rng(seed)
    schema = Schema()
    schema.add_table(TableSchema("R", ("x", "a")))
    schema.add_table(TableSchema("S", ("y", "b"), primary_key="y"))
    schema.add_foreign_key(ForeignKey("R", "x", "S", "y"))
    db = Database(schema)
    weights = 1.0 / (np.arange(1, 51) ** 1.2)
    weights /= weights.sum()
    r_x = rng.choice(50, size=1000, p=weights).astype(np.float64)
    r_a = (r_x * 2 + rng.integers(0, 5, 1000)).astype(np.float64)
    db.add_table(Table(schema.table("R"), {"x": r_x, "a": r_a}))
    db.add_table(make_s_table(schema, seed, 0.0))
    return db


@pytest.fixture()
def database():
    return make_database()


@pytest.fixture()
def workload():
    return [
        Query.of(JOIN, FilterPredicate(RA, 0, 20)),
        Query.of(JOIN, FilterPredicate(SB, 10, 40)),
    ]


@pytest.fixture()
def catalog(database, workload):
    return StatisticsCatalog.build(database, workload, max_joins=1)


class TestTableUpdateInvalidation:
    def test_mutation_between_compile_and_replay_forces_recompile(
        self, database, catalog, workload
    ):
        """The headline regression test: compile, mutate the table,
        replay — the stale plan must be evicted, not served."""
        session = EstimationSession(catalog)
        query = workload[1]  # touches S.b

        compiled = session.estimate(query)
        replayed = session.estimate(query)
        assert not compiled.plan_cache_hit
        assert replayed.plan_cache_hit
        assert session.plan_cache.status()["compiles"] == 1

        # the table changes under the compiled plan
        database.add_table(make_s_table(database.schema, seed=0, s_shift=0.0))
        catalog.notify_table_update("S")

        after = session.estimate(query)
        assert not after.plan_cache_hit  # recompiled, not served stale
        status = session.plan_cache.status()
        assert status["compiles"] == 2
        assert status["evictions"] >= 1
        # and the recompiled answer is the full DP's answer
        cold = EstimationSession(catalog, plan_cache=False).estimate(query)
        assert after.selectivity == cold.selectivity
        assert after.error == cold.error
        # steady state resumes behind the fresh plan
        assert session.estimate(query).plan_cache_hit

    def test_update_invalidates_every_shape_at_once(
        self, database, catalog, workload
    ):
        session = EstimationSession(catalog)
        for query in workload:
            session.estimate(query)
        assert len(session.plan_cache) == len(workload)
        catalog.notify_table_update("R")
        assert not session.estimate(workload[0]).plan_cache_hit
        assert not session.estimate(workload[1]).plan_cache_hit
        assert session.plan_cache.status()["evictions"] >= len(workload)


class TestHotSwap:
    def test_refresh_retires_the_old_cache_and_recompiles_on_new_stats(
        self, database, catalog, workload
    ):
        in_flight = EstimationSession(catalog, name="in-flight")
        query = workload[1]  # filters S.b: the refresh moves its estimate
        before = in_flight.estimate(query)
        assert in_flight.estimate(query).plan_cache_hit

        # the world changes and the catalog hot-swaps its statistics
        database.add_table(make_s_table(database.schema, seed=99, s_shift=30.0))
        catalog.notify_table_update("S")
        report = catalog.refresh()
        assert report.rebuilt_count > 0
        assert not in_flight.is_current

        # snapshot isolation survives the eviction: the in-flight session
        # recompiles off its *pinned* statistics and answers identically
        after = in_flight.estimate(query)
        assert after.selectivity == before.selectivity
        assert after.error == before.error

        # a fresh session gets its own cache, compiled on the new snapshot
        fresh = EstimationSession(catalog, name="fresh")
        assert fresh.plan_cache is not in_flight.plan_cache
        swapped = fresh.estimate(query)
        assert not swapped.plan_cache_hit
        assert swapped.selectivity != before.selectivity
        cold = EstimationSession(catalog, plan_cache=False).estimate(query)
        assert swapped.selectivity == cold.selectivity
        assert fresh.estimate(query).plan_cache_hit


class TestCatalogAggregation:
    def test_catalog_status_aggregates_session_caches(
        self, catalog, workload
    ):
        first = EstimationSession(catalog)
        second = EstimationSession(catalog)
        for session in (first, second):
            session.estimate(workload[0])
            session.estimate(workload[0])
        block = catalog.status()["plan_cache"]
        assert block["caches"] >= 2
        assert block["compiles"] >= 2
        assert block["hits"] >= 2
        assert block["plans"] >= 2
        assert 0.0 < block["hit_rate"] <= 1.0

    def test_retired_sessions_fall_out_of_the_aggregate(
        self, catalog, workload
    ):
        import gc

        session = EstimationSession(catalog)
        session.estimate(workload[0])
        assert catalog.status()["plan_cache"]["caches"] >= 1
        del session
        gc.collect()
        assert catalog.status()["plan_cache"]["caches"] == 0
