"""Thread-handoff safety of :class:`EstimationSession`.

The serving layer (:mod:`repro.service`) hands sessions between worker
threads and refreshes the catalog while sessions are estimating.  These
regressions pin the contract that makes that safe:

* a concurrent ``catalog.refresh()`` / ``notify_table_update`` never
  mutates (or swaps) a session's in-use pool — the pinned-snapshot
  invariant;
* sequential hand-off between threads is allowed;
* *concurrent* driving of one session is rejected loudly instead of
  corrupting the DP state silently.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.catalog import EstimationSession, StatisticsCatalog
from repro.core.predicates import FilterPredicate
from repro.engine.expressions import Query


@pytest.fixture()
def catalog(two_table_db, two_table_pool):
    return StatisticsCatalog.from_pool(two_table_pool, database=two_table_db)


@pytest.fixture()
def query(two_table_join, two_table_attrs):
    return Query.of(
        two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
    )


class TestRefreshIsolation:
    def test_concurrent_refresh_never_mutates_in_use_pool(
        self, catalog, query
    ):
        """Estimate in a worker thread while the main thread hammers the
        invalidation + refresh path; the session's pool object, SIT
        membership and answers must not move."""
        session = EstimationSession(catalog)
        pinned_pool = session.pool
        pinned_sits = set(session.pool)
        baseline = session.selectivity(query)

        results: list[float] = []
        errors: list[BaseException] = []
        stop = threading.Event()

        def estimate_loop() -> None:
            try:
                while not stop.is_set():
                    session.assert_pinned()
                    results.append(session.selectivity(query))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        worker = threading.Thread(target=estimate_loop)
        worker.start()
        try:
            deadline = time.monotonic() + 1.0
            cycles = 0
            while cycles < 3 or (
                time.monotonic() < deadline and len(results) < 50
            ):
                catalog.notify_table_update("R")
                catalog.notify_table_update("S")
                catalog.refresh()
                cycles += 1
        finally:
            stop.set()
            worker.join(timeout=10.0)

        assert not worker.is_alive()
        assert not errors
        assert results, "worker never completed an estimate"
        # the catalog really did move on ...
        assert catalog.version > session.snapshot_version
        assert not session.is_current
        # ... yet the session's statistics never did
        assert session.pool is pinned_pool
        assert set(session.pool) == pinned_sits
        assert all(value == baseline for value in results)

    def test_assert_pinned_passes_after_refresh(self, catalog, query):
        session = EstimationSession(catalog)
        session.selectivity(query)
        catalog.notify_table_update("S")
        catalog.refresh()
        session.assert_pinned()  # must not raise


class TestHandOff:
    def test_sequential_hand_off_between_threads(self, catalog, query):
        """Thread A estimates, hands the session to thread B; both get
        identical answers off the shared caches."""
        session = EstimationSession(catalog)
        answers: dict[str, float] = {}

        def run(label: str) -> None:
            answers[label] = session.selectivity(query)

        for label in ("a", "b"):
            thread = threading.Thread(target=run, args=(label,))
            thread.start()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        assert answers["a"] == answers["b"]
        assert session.queries == 2

    def test_concurrent_use_is_rejected(self, catalog, query):
        """Two threads driving one session: exactly one side proceeds,
        the other gets a RuntimeError (never silent corruption)."""
        session = EstimationSession(catalog)
        entered = threading.Event()
        release = threading.Event()

        original_begin = session.begin_query

        def slow_begin() -> None:
            original_begin()
            entered.set()
            release.wait(timeout=10.0)

        session.begin_query = slow_begin  # type: ignore[method-assign]
        holder_error: list[BaseException] = []

        def holder() -> None:
            try:
                session.estimate(query)
            except BaseException as exc:  # pragma: no cover - failure path
                holder_error.append(exc)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(timeout=10.0)
            with pytest.raises(RuntimeError, match="single-owner"):
                session.estimate(query)
        finally:
            release.set()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert not holder_error
