"""EstimationSession: snapshot pinning and cross-query cache sharing."""

import pytest

from repro.catalog import EstimationSession, StatisticsCatalog
from repro.core.errors import DiffError
from repro.estimators import SITEstimator
from repro.core.predicates import FilterPredicate
from repro.engine.expressions import Query


@pytest.fixture()
def catalog(two_table_db, two_table_pool):
    return StatisticsCatalog.from_pool(two_table_pool, database=two_table_db)


@pytest.fixture()
def query(two_table_join, two_table_attrs):
    return Query.of(
        two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
    )


class TestConstruction:
    def test_from_catalog(self, catalog):
        session = EstimationSession(catalog)
        assert session.snapshot is not None
        assert session.snapshot_version == catalog.version
        assert session.is_current

    def test_from_snapshot(self, catalog):
        snapshot = catalog.snapshot()
        session = EstimationSession(snapshot)
        assert session.snapshot is snapshot
        assert session.database is catalog.database

    def test_from_bare_pool_requires_database(self, two_table_pool):
        with pytest.raises(ValueError, match="database"):
            EstimationSession(two_table_pool)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            EstimationSession(object())


class TestEstimates:
    def test_matches_bare_estimator(self, catalog, two_table_db, query):
        session = EstimationSession(catalog)
        bare = SITEstimator(two_table_db, catalog.pool)
        assert session.cardinality(query) == pytest.approx(
            bare.cardinality(query)
        )

    def test_error_function_forwarded(self, catalog, query):
        error = DiffError(catalog.pool)
        session = EstimationSession(catalog, error)
        assert session.estimator.error_function is error
        assert 0.0 <= session.selectivity(query) <= 1.0

    def test_query_counter(self, catalog, query):
        session = EstimationSession(catalog)
        session.selectivity(query)
        session.selectivity(query)
        assert session.queries == 2


class TestCrossQueryCaching:
    # plan_cache=False: these tests exercise the shared factor-match
    # cache, which a compiled-plan replay intentionally never touches
    def test_second_query_hits_shared_match_cache(self, catalog, query):
        session = EstimationSession(catalog, plan_cache=False)
        session.selectivity(query)
        first_hits = session.match_cache_hits
        session.selectivity(query)
        assert session.match_cache_hits > first_hits
        assert session.match_cache_hit_rate > 0.0

    def test_distinct_queries_share_factor_work(
        self, catalog, two_table_join, two_table_attrs
    ):
        session = EstimationSession(catalog, plan_cache=False)
        session.selectivity(
            Query.of(
                two_table_join,
                FilterPredicate(two_table_attrs["Ra"], 0, 20),
            )
        )
        session.selectivity(
            Query.of(
                two_table_join,
                FilterPredicate(two_table_attrs["Ra"], 0, 20),
                FilterPredicate(two_table_attrs["Sb"], 0, 50),
            )
        )
        assert session.match_cache_hit_rate > 0.0


class TestSnapshotPinning:
    def test_session_survives_catalog_invalidation(self, catalog, query):
        session = EstimationSession(catalog)
        before = session.selectivity(query)
        catalog.notify_table_update("S")
        assert not session.is_current
        assert session.selectivity(query) == pytest.approx(before)

    def test_new_session_pins_new_version(self, catalog):
        old = EstimationSession(catalog)
        catalog.notify_table_update("S")
        new = EstimationSession(catalog)
        assert new.snapshot_version > old.snapshot_version
        assert new.is_current and not old.is_current


class TestObservability:
    def test_stats_snapshot_shape(self, catalog, query):
        session = EstimationSession(
            catalog, name="serving", plan_cache=False
        )
        session.selectivity(query)
        session.selectivity(query)
        snapshot = session.stats_snapshot()
        assert snapshot.meta["session"] == "serving"
        assert snapshot.meta["queries"] == 2
        assert snapshot.meta["snapshot_version"] == catalog.version
        assert snapshot.counters["queries"] == 2.0
        assert snapshot.catalog["match_cache_hit_rate"] > 0.0
        assert snapshot.catalog["current"] == 1.0

    def test_plan_cache_namespace(self, catalog, query):
        session = EstimationSession(catalog, name="serving")
        session.selectivity(query)
        session.selectivity(query)
        snapshot = session.stats_snapshot()
        assert snapshot.plan_cache["hits"] >= 1.0
        assert snapshot.plan_cache["compiles"] >= 1.0
        assert snapshot.plan_cache["hit_rate"] > 0.0

    def test_current_gauge_drops_after_invalidation(self, catalog, query):
        session = EstimationSession(catalog)
        session.selectivity(query)
        catalog.notify_table_update("R")
        assert session.stats_snapshot().catalog["current"] == 0.0
