"""Write-storm concurrency of the catalog's one invalidation path.

Threads race ``notify_table_update`` against serving sessions, refresh
cycles and the streaming-ingestion pipeline.  The promises under test:

* **version monotonicity** — every notify returns a distinct, gap-free
  table version even under contention (no bump is lost or double-
  counted);
* **no lost invalidations** — a refresh racing a storm leaves any SIT
  whose table moved mid-rebuild *stale* (to be rebuilt next round),
  never silently fresh at the wrong version;
* **snapshot isolation** — pinned sessions estimating through the storm
  never observe a torn pool and answer bit-identically throughout.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.catalog import EstimationSession, StatisticsCatalog
from repro.core.predicates import FilterPredicate
from repro.engine.expressions import Query
from repro.ingest import IngestPipeline
from repro.obs import StalenessTracker


@pytest.fixture()
def catalog(two_table_db, two_table_pool):
    return StatisticsCatalog.from_pool(two_table_pool, database=two_table_db)


@pytest.fixture()
def query(two_table_join, two_table_attrs):
    return Query.of(
        two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
    )


class TestVersionMonotonicity:
    def test_racing_notifies_lose_nothing(self, catalog):
        """8 threads x 40 notifies over two tables: the returned
        versions per table are exactly 1..N — gap-free, duplicate-free."""
        per_thread = 40
        threads = 8
        seen: dict[int, list[tuple[str, int]]] = {}
        barrier = threading.Barrier(threads)

        def storm(index: int) -> None:
            mine: list[tuple[str, int]] = []
            barrier.wait(timeout=10.0)
            for turn in range(per_thread):
                table = "R" if (index + turn) % 2 == 0 else "S"
                mine.append((table, catalog.notify_table_update(table)))
            seen[index] = mine

        workers = [
            threading.Thread(target=storm, args=(index,))
            for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30.0)
            assert not worker.is_alive()

        by_table: dict[str, list[int]] = {"R": [], "S": []}
        for mine in seen.values():
            # within one thread the versions it observed per table
            # strictly increase (no torn read-modify-write)
            last: dict[str, int] = {}
            for table, version in mine:
                assert version > last.get(table, 0)
                last[table] = version
                by_table[table].append(version)
        for table, versions in by_table.items():
            assert sorted(versions) == list(range(1, len(versions) + 1))
            assert catalog.table_version(table) == len(versions)


class TestRefreshUnderStorm:
    def test_no_lost_invalidations_across_racing_refreshes(self, catalog):
        """Refresh while a writer hammers the same table: once the storm
        stops, one quiet refresh leaves nothing stale — every bump that
        landed mid-rebuild was preserved as staleness, not lost."""
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer() -> None:
            try:
                while not stop.is_set():
                    catalog.notify_table_update("R")
                    time.sleep(0.0005)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            deadline = time.monotonic() + 1.0
            refreshes = 0
            while refreshes < 3 or time.monotonic() < deadline:
                catalog.refresh()
                refreshes += 1
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert not errors

        # quiesced: one final refresh must fully catch up
        catalog.refresh()
        assert catalog.stale_sits() == []
        for sit in catalog.pool:
            if "R" in sit.tables:
                metadata = catalog.snapshot().metadata_for(sit)
                assert metadata.source_versions.get(
                    "R"
                ) == catalog.table_version("R")

    def test_pinned_sessions_never_observe_a_torn_pool(self, catalog, query):
        """Serving sessions ride through an ingest-pipeline storm plus
        refresh cycles: pinned pools never move, answers stay
        bit-identical, and the pipeline drains clean."""
        tracker = StalenessTracker()
        catalog.attach_staleness(tracker)
        sessions = [EstimationSession(catalog) for _ in range(2)]
        baselines = [session.selectivity(query) for session in sessions]
        results: list[list[float]] = [[], []]
        errors: list[BaseException] = []
        stop = threading.Event()

        def serve(index: int) -> None:
            session = sessions[index]
            try:
                while not stop.is_set():
                    session.assert_pinned()
                    results[index].append(session.selectivity(query))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        servers = [
            threading.Thread(target=serve, args=(index,))
            for index in range(len(sessions))
        ]
        for server in servers:
            server.start()

        with IngestPipeline(catalog, tracker=tracker) as pipeline:

            def produce(seed: int) -> None:
                try:
                    for turn in range(100):
                        pipeline.submit("R" if (seed + turn) % 2 else "S")
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            producers = [
                threading.Thread(target=produce, args=(seed,))
                for seed in range(2)
            ]
            for producer in producers:
                producer.start()
            catalog.refresh()
            for producer in producers:
                producer.join(timeout=30.0)
                assert not producer.is_alive()
            assert pipeline.flush(timeout=30.0)

        stop.set()
        for server in servers:
            server.join(timeout=10.0)
            assert not server.is_alive()
        assert not errors
        assert all(results[index] for index in range(len(sessions)))
        for index, session in enumerate(sessions):
            assert all(
                value == baselines[index] for value in results[index]
            )
            assert not session.is_current  # the catalog really moved
        assert tracker.quiesced()
        assert catalog.status()["ingest"]["staleness_s_max"] == 0.0
