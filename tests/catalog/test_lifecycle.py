"""End-to-end SIT lifecycle: build → serve → invalidate → refresh.

The acceptance scenario: a table's data changes, the catalog invalidates
exactly the dependent SITs, ``refresh`` rebuilds only those (the rest
survive as the *same objects*), an in-flight session pinned to the old
snapshot keeps answering off the statistics it started with, and a new
session sees the refreshed statistics — with the cross-query match-cache
hit rate visible in the session's ``StatsSnapshot``.
"""

import numpy as np
import pytest

from repro.catalog import (
    BUILD_SAMPLED,
    EstimationSession,
    RefreshPolicy,
    StatisticsCatalog,
    sit_key,
)
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.database import Database, Table
from repro.engine.expressions import Query
from repro.engine.schema import ForeignKey, Schema, TableSchema

RX = Attribute("R", "x")
RA = Attribute("R", "a")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
JOIN = JoinPredicate(RX, SY)


def make_database(seed: int = 0, s_shift: float = 0.0) -> Database:
    """A mutable copy of the two-table skewed-join database."""
    rng = np.random.default_rng(seed)
    schema = Schema()
    schema.add_table(TableSchema("R", ("x", "a")))
    schema.add_table(TableSchema("S", ("y", "b"), primary_key="y"))
    schema.add_foreign_key(ForeignKey("R", "x", "S", "y"))
    db = Database(schema)
    weights = 1.0 / (np.arange(1, 51) ** 1.2)
    weights /= weights.sum()
    r_x = rng.choice(50, size=1000, p=weights).astype(np.float64)
    r_a = (r_x * 2 + rng.integers(0, 5, 1000)).astype(np.float64)
    db.add_table(Table(schema.table("R"), {"x": r_x, "a": r_a}))
    db.add_table(make_s_table(schema, seed, s_shift))
    return db


def make_s_table(schema: Schema, seed: int, s_shift: float) -> Table:
    rng = np.random.default_rng(seed + 1)
    return Table(
        schema.table("S"),
        {
            "y": np.arange(50, dtype=np.float64),
            "b": (rng.integers(0, 100, 50) + s_shift).clip(0, 99).astype(
                np.float64
            ),
        },
    )


@pytest.fixture()
def database():
    return make_database()


@pytest.fixture()
def workload():
    return [
        Query.of(JOIN, FilterPredicate(RA, 0, 20)),
        Query.of(JOIN, FilterPredicate(SB, 10, 40)),
    ]


@pytest.fixture()
def catalog(database, workload):
    return StatisticsCatalog.build(database, workload, max_joins=1)


class TestBuild:
    def test_build_registers_provenance(self, catalog):
        assert len(catalog) > 0
        for sit in catalog:
            metadata = catalog.metadata_for(sit)
            assert metadata.built_at > 0.0
            assert metadata.source_versions == {
                table: 0 for table in sit.tables
            }
        assert catalog.stale_sits() == []


class TestIncrementalRefresh:
    def test_refresh_without_staleness_is_a_no_op_rebuild(self, catalog):
        report = catalog.refresh()
        assert report.rebuilt == []
        assert len(report.kept) == len(catalog)

    def test_only_stale_sits_rebuilt(self, database, catalog):
        survivors = {
            sit_key(s): s for s in catalog if "S" not in s.tables
        }
        database.add_table(make_s_table(database.schema, seed=0, s_shift=30.0))
        catalog.notify_table_update("S")
        report = catalog.refresh()
        rebuilt = set(report.rebuilt)
        assert rebuilt == {
            sit_key(s) for s in catalog if "S" in s.tables
        }
        assert rebuilt.isdisjoint(report.kept)
        # kept SITs are the very same objects: provably untouched
        for sit in catalog:
            if sit_key(sit) in survivors:
                assert sit is survivors[sit_key(sit)]
        assert catalog.stale_sits() == []

    def test_refreshed_sits_reflect_new_data(self, database, catalog):
        stale_before = {
            str(s): s for s in catalog if str(s.attribute) == "S.b"
        }
        database.add_table(make_s_table(database.schema, seed=99, s_shift=25.0))
        catalog.notify_table_update("S")
        catalog.refresh()
        for sit in catalog:
            if str(sit.attribute) == "S.b":
                old = stale_before[str(sit)]
                assert sit.histogram.buckets != old.histogram.buckets

    def test_sampled_refresh_records_method(self, database, catalog):
        catalog.notify_table_update("S")
        catalog.refresh(
            RefreshPolicy(method="sampled", sample_fraction=0.5)
        )
        methods = {
            catalog.metadata_for(sit).build_method
            for sit in catalog
            if not sit.is_base and "S" in sit.tables
        }
        assert methods == {BUILD_SAMPLED}

    def test_space_budget_drops_lowest_value_sits(self, catalog, workload):
        conditioned = [s for s in catalog if not s.is_base]
        assert len(conditioned) > 1
        catalog.notify_table_update("S")
        report = catalog.refresh(RefreshPolicy(max_sits=1), queries=workload)
        assert len(report.dropped) == len(conditioned) - 1
        assert sum(1 for s in catalog if not s.is_base) == 1


class TestServingIsolation:
    def test_old_session_consistent_while_new_session_sees_refresh(
        self, database, catalog, workload
    ):
        in_flight = EstimationSession(catalog, name="in-flight")
        query = workload[1]  # filters S.b: refresh will move its estimate
        before = in_flight.cardinality(query)

        # the world changes mid-session
        database.add_table(make_s_table(database.schema, seed=7, s_shift=45.0))
        catalog.notify_table_update("S")
        report = catalog.refresh()
        assert report.rebuilt_count > 0

        # snapshot isolation: the in-flight session answers exactly as it
        # did before the refresh, off the statistics it pinned
        assert in_flight.cardinality(query) == pytest.approx(before)
        assert not in_flight.is_current

        # a new session pins the refreshed snapshot and disagrees
        fresh = EstimationSession(catalog, name="fresh")
        assert fresh.snapshot_version > in_flight.snapshot_version
        assert fresh.cardinality(query) != pytest.approx(before)

    def test_cross_query_cache_hit_rate_surfaces(self, catalog, workload):
        # plan_cache=False: replayed template hits bypass the factor-match
        # cache this test observes
        session = EstimationSession(catalog, plan_cache=False)
        for query in workload * 2:
            session.selectivity(query)
        snapshot = session.stats_snapshot()
        assert snapshot.catalog["match_cache_hit_rate"] > 0.0
        assert snapshot.meta["queries"] == len(workload) * 2


class TestRefreshReport:
    def test_report_to_dict(self, database, catalog):
        catalog.notify_table_update("S")
        report = catalog.refresh()
        payload = report.to_dict()
        assert payload["method"] == "full"
        assert payload["rebuilt"] == report.rebuilt_count
        assert payload["version_after"] > payload["version_before"]
        assert payload["build_seconds"] >= 0.0

    def test_refresh_metrics(self, database, catalog):
        catalog.notify_table_update("S")
        catalog.refresh()
        snapshot = catalog.stats_snapshot()
        assert snapshot.catalog["refreshes"] == 1.0
        assert snapshot.catalog["sits_rebuilt"] > 0.0
        assert snapshot.catalog["stale_sits"] == 0.0
