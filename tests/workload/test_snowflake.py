"""Tests for the synthetic snowflake database generator."""

import numpy as np
import pytest

from repro.core.predicates import Attribute, JoinPredicate
from repro.engine.executor import Executor
from repro.workload.snowflake import (
    SnowflakeConfig,
    generate_snowflake,
    snowflake_schema,
)


class TestSchema:
    def test_eight_tables_seven_fk_edges(self):
        schema = snowflake_schema()
        assert len(schema.tables) == 8
        assert len(schema.foreign_keys) == 7

    def test_fk_graph_is_a_connected_tree(self):
        schema = snowflake_schema()
        joins = [JoinPredicate(fk.source, fk.target) for fk in schema.foreign_keys]
        from repro.core.predicates import connected_components

        assert len(connected_components(joins)) == 1

    def test_attribute_counts_in_paper_range(self):
        schema = snowflake_schema()
        for table in schema.tables.values():
            assert 4 <= len(table.columns) <= 8


class TestGeneration:
    def test_deterministic_for_seed(self):
        first = generate_snowflake(SnowflakeConfig(scale=0.05, seed=3))
        second = generate_snowflake(SnowflakeConfig(scale=0.05, seed=3))
        for name in first.tables:
            for column in first.schema.table(name).columns:
                np.testing.assert_array_equal(
                    first.column(Attribute(name, column)),
                    second.column(Attribute(name, column)),
                )

    def test_different_seeds_differ(self):
        first = generate_snowflake(SnowflakeConfig(scale=0.05, seed=3))
        second = generate_snowflake(SnowflakeConfig(scale=0.05, seed=4))
        assert not np.array_equal(
            first.column(Attribute("sales", "price")),
            second.column(Attribute("sales", "price")),
        )

    def test_scale_controls_row_counts(self):
        small = generate_snowflake(SnowflakeConfig(scale=0.05))
        large = generate_snowflake(SnowflakeConfig(scale=0.2))
        assert large.row_count("sales") == 4 * small.row_count("sales")

    def test_size_spread_preserved(self):
        db = generate_snowflake(SnowflakeConfig(scale=0.2))
        assert db.row_count("sales") >= 500 * db.row_count("region")

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SnowflakeConfig(scale=0)
        with pytest.raises(ValueError):
            SnowflakeConfig(dangling_fraction=1.5)
        with pytest.raises(ValueError):
            SnowflakeConfig(dangling_mode="sometimes")

    def test_fk_skew(self):
        db = generate_snowflake(SnowflakeConfig(scale=0.2, skew=1.2))
        fks = db.column(Attribute("sales", "customer_id"))
        fks = fks[~np.isnan(fks)].astype(int)
        counts = np.bincount(fks)
        counts = counts[counts > 0]
        # Zipf: the busiest customer has far more sales than the median.
        assert counts.max() > 10 * np.median(counts)

    def test_zero_skew_roughly_uniform(self):
        db = generate_snowflake(SnowflakeConfig(scale=0.2, skew=0.0))
        fks = db.column(Attribute("sales", "store_id"))
        fks = fks[~np.isnan(fks)].astype(int)
        counts = np.bincount(fks, minlength=db.row_count("store"))
        assert counts.max() < 4 * max(counts.min(), 1)


class TestDanglingForeignKeys:
    def test_random_dangling_fraction(self):
        db = generate_snowflake(
            SnowflakeConfig(scale=0.2, dangling_fraction=0.15)
        )
        fks = db.column(Attribute("sales", "customer_id"))
        assert np.isnan(fks).mean() == pytest.approx(0.15, abs=0.01)

    def test_no_dangling_when_disabled(self):
        db = generate_snowflake(SnowflakeConfig(scale=0.1, dangling_fraction=0.0))
        fks = db.column(Attribute("sales", "customer_id"))
        assert not np.isnan(fks).any()

    def test_correlated_dangling_hits_expensive_sales(self):
        db = generate_snowflake(
            SnowflakeConfig(
                scale=0.2, dangling_fraction=0.1, dangling_mode="correlated"
            )
        )
        price = db.column(Attribute("sales", "price"))
        fk = db.column(Attribute("sales", "customer_id"))
        dangling_price = price[np.isnan(fk)].mean()
        kept_price = price[~np.isnan(fk)].mean()
        assert dangling_price > 2 * kept_price

    def test_dangling_breaks_referential_integrity(self):
        db = generate_snowflake(
            SnowflakeConfig(scale=0.1, dangling_fraction=0.2)
        )
        executor = Executor(db)
        join = JoinPredicate(
            Attribute("sales", "customer_id"),
            Attribute("customer", "customer_id"),
        )
        join_size = executor.cardinality(frozenset({join}))
        assert join_size < db.row_count("sales")


class TestCorrelations:
    def test_price_follows_list_price(self):
        db = generate_snowflake(SnowflakeConfig(scale=0.2))
        price = db.column(Attribute("sales", "price"))
        product = db.column(Attribute("sales", "product_id")).astype(int)
        list_price = db.column(Attribute("product", "list_price"))[product]
        correlation = np.corrcoef(price, list_price)[0, 1]
        assert correlation > 0.8

    def test_income_depends_on_nation(self):
        db = generate_snowflake(SnowflakeConfig(scale=0.2))
        income = db.column(Attribute("customer", "income"))
        nation = db.column(Attribute("customer", "nation_id")).astype(int)
        means = [
            income[nation == n].mean()
            for n in np.unique(nation)
            if (nation == n).sum() >= 5
        ]
        assert max(means) > 3 * min(means)
