"""Tests for the motivating-example mini TPC-H generator."""

import numpy as np
import pytest

from repro.core.predicates import Attribute, JoinPredicate
from repro.engine.executor import Executor
from repro.workload.tpch import (
    USA,
    TPCHConfig,
    generate_tpch,
    motivating_query,
    tpch_schema,
)


class TestSchema:
    def test_three_tables_two_fks(self):
        schema = tpch_schema()
        assert set(schema.tables) == {"customer", "orders", "lineitem"}
        assert len(schema.foreign_keys) == 2


class TestGeneration:
    def test_deterministic(self):
        first = generate_tpch(TPCHConfig(seed=1))
        second = generate_tpch(TPCHConfig(seed=1))
        np.testing.assert_array_equal(
            first.column(Attribute("orders", "total_price")),
            second.column(Attribute("orders", "total_price")),
        )

    def test_usa_majority(self):
        db = generate_tpch(TPCHConfig(usa_fraction=0.8))
        nation = db.column(Attribute("customer", "nation"))
        assert (nation == USA).mean() == pytest.approx(0.8, abs=0.08)

    def test_lineitems_per_order_skewed(self):
        db = generate_tpch()
        orderkey = db.column(Attribute("lineitem", "orderkey")).astype(int)
        counts = np.bincount(orderkey)
        assert counts.max() > 10 * max(np.median(counts), 1)

    def test_total_price_correlates_with_lineitem_count(self):
        """The intro's first skew: expensive orders have many line-items."""
        db = generate_tpch()
        orderkey = db.column(Attribute("lineitem", "orderkey")).astype(int)
        counts = np.bincount(orderkey, minlength=db.row_count("orders"))
        price = db.column(Attribute("orders", "total_price"))
        correlation = np.corrcoef(counts, price)[0, 1]
        assert correlation > 0.8

    def test_busy_customers_mostly_usa(self):
        """The intro's second skew: order volume correlates with nation."""
        db = generate_tpch()
        custkey = db.column(Attribute("orders", "custkey")).astype(int)
        nation = db.column(Attribute("customer", "nation"))
        counts = np.bincount(custkey, minlength=db.row_count("customer"))
        busy = np.argsort(counts)[-20:]
        assert (nation[busy] == USA).mean() > 0.8


class TestMotivatingQuery:
    def test_structure(self):
        db = generate_tpch()
        query = motivating_query(db)
        assert query.join_count == 2
        assert query.filter_count == 2
        assert query.tables == frozenset(("customer", "orders", "lineitem"))

    def test_non_empty(self):
        db = generate_tpch()
        query = motivating_query(db)
        assert Executor(db).cardinality(query.predicates) > 0

    def test_traditional_estimate_underestimates(self):
        """The scenario the whole paper is motivated by: with base
        statistics and independence the cardinality is a severe
        underestimate."""
        from repro.estimators import make_nosit
        from repro.stats.builder import SITBuilder
        from repro.stats.pool import SITPool

        db = generate_tpch()
        query = motivating_query(db)
        builder = SITBuilder(db)
        pool = SITPool()
        for table in db.schema.tables.values():
            for attribute in table.attributes:
                pool.add(builder.build_base(attribute))
        estimate = make_nosit(db, pool).cardinality(query)
        true = Executor(db).cardinality(query.predicates)
        assert estimate < true / 3
