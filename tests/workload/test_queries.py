"""Tests for the random SPJ workload generator."""

import pytest

from repro.core.predicates import connected_components
from repro.engine.executor import Executor
from repro.workload.queries import (
    WorkloadConfig,
    WorkloadGenerator,
    connected_subqueries,
)


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(join_count=-1)
        with pytest.raises(ValueError):
            WorkloadConfig(target_selectivity=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(filter_count=-2)


class TestGeneration:
    def generator(self, db, **kwargs):
        defaults = dict(join_count=3, filter_count=3, seed=5)
        defaults.update(kwargs)
        return WorkloadGenerator(db, WorkloadConfig(**defaults))

    def test_shape(self, tiny_snowflake):
        queries = self.generator(tiny_snowflake).generate(6)
        assert len(queries) == 6
        for query in queries:
            assert query.join_count == 3
            assert query.filter_count <= 3

    def test_queries_are_connected(self, tiny_snowflake):
        for query in self.generator(tiny_snowflake).generate(6):
            assert len(connected_components(query.predicates)) == 1

    def test_queries_are_non_empty(self, tiny_snowflake):
        executor = Executor(tiny_snowflake)
        for query in self.generator(tiny_snowflake).generate(8):
            assert executor.cardinality(query.predicates) > 0

    def test_deterministic_per_seed(self, tiny_snowflake):
        first = self.generator(tiny_snowflake, seed=9).generate(4)
        second = self.generator(tiny_snowflake, seed=9).generate(4)
        assert [q.predicates for q in first] == [q.predicates for q in second]

    def test_join_count_limited_by_schema(self, tiny_snowflake):
        with pytest.raises(ValueError):
            self.generator(tiny_snowflake, join_count=50)

    def test_filters_only_on_query_tables(self, tiny_snowflake):
        for query in self.generator(tiny_snowflake).generate(6):
            join_tables = set()
            for join in query.joins:
                join_tables.update(join.tables)
            for predicate in query.filters:
                assert predicate.attribute.table in join_tables

    def test_filters_never_on_key_columns(self, tiny_snowflake):
        for query in self.generator(tiny_snowflake).generate(6):
            for predicate in query.filters:
                assert not predicate.attribute.column.endswith("_id")

    def test_seven_way_joins(self, tiny_snowflake):
        queries = self.generator(tiny_snowflake, join_count=7).generate(3)
        for query in queries:
            assert query.join_count == 7
            assert len(query.tables) == 8

    def test_filter_selectivity_near_target(self, small_snowflake):
        generator = self.generator(
            small_snowflake, join_count=2, filter_count=2, seed=3
        )
        executor = Executor(small_snowflake)
        ratios = []
        for query in generator.generate(10):
            for predicate in query.filters:
                selectivity = executor.selectivity(frozenset({predicate}))
                ratios.append(selectivity)
        # Target is 0.05; stretching may widen some, so check the median.
        ratios.sort()
        assert 0.02 <= ratios[len(ratios) // 2] <= 0.25


class TestConnectedSubqueries:
    def test_all_connected(self, tiny_snowflake):
        generator = WorkloadGenerator(
            tiny_snowflake, WorkloadConfig(join_count=3, filter_count=2, seed=1)
        )
        query = generator.generate_one()
        for subset in connected_subqueries(query):
            assert len(connected_components(subset)) == 1

    def test_includes_full_query(self, tiny_snowflake):
        generator = WorkloadGenerator(
            tiny_snowflake, WorkloadConfig(join_count=3, filter_count=2, seed=1)
        )
        query = generator.generate_one()
        assert query.predicates in connected_subqueries(query)

    def test_sampling_preserves_full_query(self, tiny_snowflake):
        generator = WorkloadGenerator(
            tiny_snowflake, WorkloadConfig(join_count=4, filter_count=3, seed=2)
        )
        query = generator.generate_one()
        sampled = connected_subqueries(query, max_count=10, seed=1)
        assert len(sampled) == 10
        assert query.predicates in sampled

    def test_sampling_deterministic(self, tiny_snowflake):
        generator = WorkloadGenerator(
            tiny_snowflake, WorkloadConfig(join_count=4, filter_count=3, seed=2)
        )
        query = generator.generate_one()
        assert connected_subqueries(query, 10, seed=5) == connected_subqueries(
            query, 10, seed=5
        )
