"""Tests for the empty-result stretching behaviour of the generator."""

import numpy as np
import pytest

from repro.core.predicates import Attribute, FilterPredicate
from repro.engine.executor import Executor
from repro.workload.queries import WorkloadConfig, WorkloadGenerator


class TestStretching:
    def test_stretch_widens_range(self, tiny_snowflake):
        generator = WorkloadGenerator(
            tiny_snowflake,
            WorkloadConfig(join_count=2, filter_count=2, seed=4),
        )
        predicate = FilterPredicate(Attribute("sales", "price"), 50, 60)
        stretched = generator._stretch(predicate)
        assert stretched.low <= predicate.low
        assert stretched.high >= predicate.high
        assert stretched.attribute == predicate.attribute

    def test_stretch_clamped_to_domain(self, tiny_snowflake):
        generator = WorkloadGenerator(
            tiny_snowflake,
            WorkloadConfig(join_count=2, filter_count=2, seed=4),
        )
        values = tiny_snowflake.column(Attribute("sales", "price"))
        lo, hi = float(np.nanmin(values)), float(np.nanmax(values))
        predicate = FilterPredicate(Attribute("sales", "price"), lo, hi)
        stretched = generator._stretch(predicate)
        assert stretched.low >= lo
        assert stretched.high <= hi

    def test_tight_target_still_yields_non_empty_queries(self, tiny_snowflake):
        # An absurdly selective target forces the stretching path.
        generator = WorkloadGenerator(
            tiny_snowflake,
            WorkloadConfig(
                join_count=3,
                filter_count=3,
                seed=5,
                target_selectivity=0.001,
            ),
        )
        executor = Executor(tiny_snowflake)
        for query in generator.generate(5):
            assert executor.cardinality(query.predicates) > 0

    def test_many_filters_capped_by_available_attributes(self, tiny_snowflake):
        generator = WorkloadGenerator(
            tiny_snowflake,
            WorkloadConfig(join_count=1, filter_count=50, seed=6),
        )
        query = generator.generate_one()
        # filter count bounded by distinct non-key attributes of the two
        # joined tables.
        assert query.filter_count <= 12
