"""End-to-end cluster: real spawned shard processes over one
shared-memory snapshot.  Acceptance harness: cluster-path estimates are
bit-identical to a single EstimationSession across 200+ queries,
through a hot swap and a shard ejection + rejoin."""

from __future__ import annotations

import time

import pytest

from repro.catalog.session import EstimationSession
from repro.cluster import EstimationCluster
from repro.core.predicates import FilterPredicate
from repro.service import ClusterConfig, ServiceConfig, connect


@pytest.fixture(scope="module")
def parity_workload(two_table_attrs, two_table_join) -> list[frozenset]:
    """240 queries over three templates (two filters families + a pure
    join variant) — enough constants to sweep the histogram domain."""
    queries: list[frozenset] = []
    for index in range(80):
        low = float(index % 50)
        queries.append(
            frozenset(
                {
                    two_table_join,
                    FilterPredicate(two_table_attrs["Ra"], low, low + 9.0),
                }
            )
        )
        queries.append(
            frozenset(
                {
                    two_table_join,
                    FilterPredicate(two_table_attrs["Sb"], low, low + 21.0),
                }
            )
        )
        queries.append(
            frozenset(
                {
                    two_table_join,
                    FilterPredicate(
                        two_table_attrs["Ra"], low / 2.0, low / 2.0 + 30.0
                    ),
                    FilterPredicate(two_table_attrs["Sb"], 5.0, 80.0),
                }
            )
        )
    return queries


def wait_until(predicate, timeout_s: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def test_cluster_parity_through_swap_and_ejection(
    cluster_catalog, parity_workload
):
    reference = EstimationSession(
        cluster_catalog, database=cluster_catalog.database
    )
    expected = [reference.estimate(q) for q in parity_workload]

    config = ServiceConfig(
        cluster=ClusterConfig(
            shards=2,
            replicas=1,
            hedge_delay_s=0.2,
            breaker_threshold=1,
            shard_workers=1,
        )
    )
    cluster = EstimationCluster(cluster_catalog, config=config)
    try:
        with connect(cluster) as client:
            # -- phase 1: plain parity, both shards serving -------------
            answers = client.estimate_batch(parity_workload, timeout=60.0)
            for answer, want in zip(answers, expected):
                assert answer.selectivity == want.selectivity
                assert answer.error == want.error
            assert {a.snapshot_version for a in answers} == {
                cluster_catalog.version
            }
            assert {a.shard for a in answers if a.shard in (0, 1)} == {0, 1}

            # -- phase 2: hot swap mid-stream ---------------------------
            old_version = cluster_catalog.version
            cluster.notify_table_update("S")
            new_version = cluster_catalog.version
            assert new_version == old_version + 1
            swapped = client.estimate_batch(parity_workload[:60], timeout=60.0)
            for answer, want in zip(swapped, expected):
                assert answer.selectivity == want.selectivity
                assert answer.snapshot_version == new_version

            # -- phase 3: shard ejection + transparent spill ------------
            cluster.inject_crash(0)
            # keep serving; faults trip the breaker (threshold 1) and
            # the dead shard's keyspace spills to the survivors
            spilled = client.estimate_batch(parity_workload[:60], timeout=60.0)
            for answer, want in zip(spilled, expected):
                assert answer.selectivity == want.selectivity
            assert wait_until(
                lambda: cluster.stats_snapshot().cluster.get("ejections", 0.0)
                >= 1.0
            )

            # -- phase 4: background revival rejoins the ring -----------
            assert wait_until(
                lambda: cluster.stats_snapshot().cluster.get("rejoins", 0.0)
                >= 1.0
            )
            revived = client.estimate_batch(parity_workload, timeout=60.0)
            for answer, want in zip(revived, expected):
                assert answer.selectivity == want.selectivity
                assert answer.snapshot_version == new_version
    finally:
        assert cluster.close() is True


def test_cluster_serves_over_tcp_front_end(cluster_catalog, parity_workload):
    """The router duck-types EstimationService: the stock TCP server and
    SocketClient work over it unchanged, shard ids riding the wire."""
    from repro.service.server import start_in_thread

    config = ServiceConfig(
        cluster=ClusterConfig(shards=2, replicas=0, hedge_delay_s=5.0)
    )
    cluster = EstimationCluster(cluster_catalog, config=config)
    try:
        handle = start_in_thread(cluster, port=0)
        try:
            with connect(handle.address) as client:
                reference = EstimationSession(
                    cluster_catalog, database=cluster_catalog.database
                )
                for query in parity_workload[:30]:
                    answer = client.estimate(query, timeout=30.0)
                    assert (
                        answer.selectivity
                        == reference.estimate(query).selectivity
                    )
                    assert answer.shard in (0, 1)
                stats = client.stats()
                assert stats["meta"]["subsystem"] == "cluster"
                assert stats["cluster"]["routed"] >= 30.0
        finally:
            handle.close()
    finally:
        cluster.close()
