"""Router semantics over fake links: template routing, hedged requests
(winner-takes-all, observable loser cancellation, no double
completion), per-shard breaker ejection, and coherent swap holds —
all without spawning a single process."""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import pytest

from repro.cluster import EstimationCluster
from repro.service import ClusterConfig, ServiceConfig
from repro.service.client import TransportError
from repro.service.protocol import Overloaded


class FakeLink:
    """A link double: records requests, answers on demand (or auto)."""

    def __init__(self, shard_id: int, *, auto: bool = True, version: int = 1):
        self.shard_id = shard_id
        self.auto = auto
        self.version = version
        self.fail_transport = False
        self.closed = False
        self._lock = threading.Lock()
        self.log: list[tuple[dict, Future]] = []

    # -- link protocol --------------------------------------------------
    def request(self, payload: dict) -> Future:
        future: Future = Future()
        with self._lock:
            self.log.append((payload, future))
        if self.fail_transport:
            future.set_exception(
                TransportError(f"fake shard {self.shard_id} down")
            )
        elif self.auto:
            self._answer(payload, future)
        return future

    @property
    def pending_count(self) -> int:
        with self._lock:
            return sum(1 for _, future in self.log if not future.done())

    def close(self) -> None:
        self.closed = True

    # -- test controls --------------------------------------------------
    def _answer(self, payload: dict, future: Future) -> None:
        op = payload.get("op", "estimate")
        if op == "estimate":
            future.set_result(self.ok_response(payload))
        elif op == "invalidate":
            self.version = int(payload["version"])
            future.set_result(
                {"ok": True, "status": "ok", "shard": self.shard_id,
                 "version": self.version}
            )
        else:  # pragma: no cover - unused in these tests
            future.set_result({"ok": True, "status": "ok"})

    def ok_response(self, payload: dict, selectivity: float = 0.25) -> dict:
        response = {
            "ok": True,
            "status": "ok",
            "selectivity": selectivity,
            "cardinality": selectivity * 1000.0,
            "error": 0.0,
            "snapshot_version": self.version,
            "latency_ms": 1.0,
            "shard": self.shard_id,
        }
        if payload.get("hedge"):
            response["hedged"] = True
        return response

    def requests(self, op: str = "estimate") -> list[tuple[dict, Future]]:
        with self._lock:
            return [
                (payload, future)
                for payload, future in self.log
                if payload.get("op", "estimate") == op
            ]


def make_cluster(catalog, links, *, shards=None, replicas=0, **cluster_kwargs):
    shards = shards if shards is not None else len(links) - replicas
    cluster_kwargs.setdefault("hedge_delay_s", 30.0)  # effectively off
    config = ServiceConfig(
        cluster=ClusterConfig(
            shards=shards, replicas=replicas, **cluster_kwargs
        )
    )
    return EstimationCluster(catalog, config=config, _links=links)


def wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class TestRouting:
    def test_templates_split_and_stick(self, cluster_catalog, cluster_queries):
        links = [FakeLink(0), FakeLink(1)]
        with make_cluster(cluster_catalog, links) as cluster:
            answers = [
                cluster.estimate(query, timeout=5.0)
                for query in cluster_queries
            ]
            # the workload has exactly two templates: each sticks to one
            # shard for every constant binding (hot per-shard caches)
            by_shard = {answer.shard for answer in answers}
            assert by_shard <= {0, 1}
            ra_shards = {a.shard for a in answers[0::2]}
            sb_shards = {a.shard for a in answers[1::2]}
            assert len(ra_shards) == 1
            assert len(sb_shards) == 1

    def test_shards_receive_parse_free_payloads(
        self, cluster_catalog, cluster_queries
    ):
        links = [FakeLink(0), FakeLink(1)]
        with make_cluster(cluster_catalog, links) as cluster:
            cluster.estimate(cluster_queries[0], timeout=5.0)
            sent = links[0].requests() + links[1].requests()
            assert len(sent) == 1
            payload = sent[0][0]
            assert "sql" not in payload
            assert isinstance(payload["predicates"], list)

    def test_sql_is_parsed_once_at_the_router(self, cluster_catalog):
        links = [FakeLink(0), FakeLink(1)]
        sql = "SELECT * FROM R, S WHERE R.x = S.y AND R.a BETWEEN 10 AND 40"
        with make_cluster(cluster_catalog, links) as cluster:
            answer = cluster.estimate(sql, timeout=5.0)
            assert answer.shard in (0, 1)
            payloads = [p for p, _ in links[answer.shard].requests()]
            assert "predicates" in payloads[0]

    def test_closed_cluster_rejects(self, cluster_catalog, cluster_queries):
        links = [FakeLink(0), FakeLink(1)]
        cluster = make_cluster(cluster_catalog, links)
        cluster.close()
        from repro.service.protocol import ServiceClosed

        with pytest.raises(ServiceClosed):
            cluster.submit(cluster_queries[0])


class TestHedging:
    def hedged_cluster(self, catalog):
        """Two manual ring shards plus one manual replica; instant hedge."""
        links = [
            FakeLink(0, auto=False),
            FakeLink(1, auto=False),
            FakeLink(2, auto=False),
        ]
        cluster = make_cluster(
            catalog, links, replicas=1, hedge_delay_s=0.005
        )
        return cluster, links

    def test_hedge_winner_takes_all(self, cluster_catalog, cluster_queries):
        cluster, links = self.hedged_cluster(cluster_catalog)
        with cluster:
            future = cluster.submit(cluster_queries[0])
            primary = next(
                link for link in links[:2] if link.requests()
            )
            replica = links[2]
            assert wait_until(lambda: replica.requests())
            hedge_payload, hedge_future = replica.requests()[0]
            assert hedge_payload["hedge"] is True
            # the hedge answers first: it wins
            hedge_future.set_result(
                replica.ok_response(hedge_payload, selectivity=0.5)
            )
            answer = future.result(timeout=5.0)
            assert answer.hedged is True
            assert answer.shard == 2
            assert answer.selectivity == 0.5
            # the primary straggles in second: observable loser, and the
            # future's value must not change (no double completion)
            payload, primary_future = primary.requests()[0]
            primary_future.set_result(
                primary.ok_response(payload, selectivity=0.125)
            )
            assert wait_until(
                lambda: cluster.stats_snapshot().cluster.get(
                    "hedge_cancelled"
                ) == 1.0
            )
            assert future.result().selectivity == 0.5
            stats = cluster.stats_snapshot().cluster
            assert stats["hedges"] == 1.0
            assert stats["hedge_wins"] == 1.0

    def test_primary_win_cancels_hedge(self, cluster_catalog, cluster_queries):
        cluster, links = self.hedged_cluster(cluster_catalog)
        with cluster:
            future = cluster.submit(cluster_queries[0])
            primary = next(link for link in links[:2] if link.requests())
            replica = links[2]
            assert wait_until(lambda: replica.requests())
            payload, primary_future = primary.requests()[0]
            primary_future.set_result(
                primary.ok_response(payload, selectivity=0.75)
            )
            answer = future.result(timeout=5.0)
            assert answer.hedged is False
            assert answer.shard == primary.shard_id
            hedge_payload, hedge_future = replica.requests()[0]
            hedge_future.set_result(
                replica.ok_response(hedge_payload, selectivity=0.1)
            )
            assert wait_until(
                lambda: cluster.stats_snapshot().cluster.get(
                    "hedge_cancelled"
                ) == 1.0
            )
            assert future.result().selectivity == 0.75
            assert (
                cluster.stats_snapshot().cluster.get("hedge_wins", 0.0) == 0.0
            )

    def test_no_hedge_before_delay(self, cluster_catalog, cluster_queries):
        links = [FakeLink(0, auto=False), FakeLink(1, auto=False)]
        with make_cluster(
            cluster_catalog, links, hedge_delay_s=30.0
        ) as cluster:
            cluster.submit(cluster_queries[0])
            time.sleep(0.05)
            total = sum(len(link.requests()) for link in links)
            assert total == 1  # the primary only

    def test_hedge_to_ring_successor_without_replicas(
        self, cluster_catalog, cluster_queries
    ):
        links = [FakeLink(0, auto=False), FakeLink(1, auto=False)]
        with make_cluster(
            cluster_catalog, links, hedge_delay_s=0.005
        ) as cluster:
            cluster.submit(cluster_queries[0])
            assert wait_until(
                lambda: sum(len(link.requests()) for link in links) == 2
            )
            hedged = [
                (link, payload)
                for link in links
                for payload, _ in link.requests()
                if payload.get("hedge")
            ]
            assert len(hedged) == 1
            primary = next(
                link
                for link in links
                for payload, _ in link.requests()
                if not payload.get("hedge")
            )
            assert hedged[0][0].shard_id != primary.shard_id

    def test_typed_error_waits_for_inflight_hedge(
        self, cluster_catalog, cluster_queries
    ):
        """A shed primary must not fail the request while a hedge can
        still win."""
        cluster, links = self.hedged_cluster(cluster_catalog)
        with cluster:
            future = cluster.submit(cluster_queries[0])
            primary = next(link for link in links[:2] if link.requests())
            replica = links[2]
            assert wait_until(lambda: replica.requests())
            _, primary_future = primary.requests()[0]
            primary_future.set_result(
                {"ok": False, "status": "overloaded", "detail": "shed"}
            )
            time.sleep(0.02)
            assert not future.done()  # hedge still in flight
            hedge_payload, hedge_future = replica.requests()[0]
            hedge_future.set_result(
                replica.ok_response(hedge_payload, selectivity=0.3)
            )
            assert future.result(timeout=5.0).selectivity == 0.3

    def test_all_attempts_failing_raises_the_error(
        self, cluster_catalog, cluster_queries
    ):
        cluster, links = self.hedged_cluster(cluster_catalog)
        with cluster:
            future = cluster.submit(cluster_queries[0])
            primary = next(link for link in links[:2] if link.requests())
            replica = links[2]
            assert wait_until(lambda: replica.requests())
            _, primary_future = primary.requests()[0]
            primary_future.set_result(
                {"ok": False, "status": "overloaded", "detail": "shed"}
            )
            _, hedge_future = replica.requests()[0]
            hedge_future.set_result(
                {"ok": False, "status": "overloaded", "detail": "shed"}
            )
            with pytest.raises(Overloaded):
                future.result(timeout=5.0)


class TestBreakerEjection:
    def test_fault_trips_ejects_and_spills(
        self, cluster_catalog, cluster_queries
    ):
        links = [FakeLink(0), FakeLink(1)]
        with make_cluster(
            cluster_catalog, links, breaker_threshold=1
        ) as cluster:
            # find a query owned by shard 0, then kill shard 0
            owner0 = next(
                query
                for query in cluster_queries
                if cluster.estimate(query, timeout=5.0).shard == 0
            )
            links[0].fail_transport = True
            answer = cluster.estimate(owner0, timeout=5.0)
            # transparently rerouted to the survivor
            assert answer.shard == 1
            stats = cluster.stats_snapshot()
            assert stats.cluster["ejections"] == 1.0
            assert stats.cluster["spilled"] >= 1.0
            assert stats.cluster["shard_faults"] >= 1.0
            assert stats.cluster["ejected"] == 1.0
            assert links[0].closed

    def test_every_template_spills_after_ejection(
        self, cluster_catalog, cluster_queries
    ):
        links = [FakeLink(0), FakeLink(1)]
        with make_cluster(
            cluster_catalog, links, breaker_threshold=1
        ) as cluster:
            links[0].fail_transport = True
            answers = [
                cluster.estimate(query, timeout=5.0)
                for query in cluster_queries
            ]
            assert all(answer.shard == 1 for answer in answers)


class TestSwapCoherence:
    def test_requests_hold_until_the_shard_acks(
        self, cluster_catalog, cluster_queries
    ):
        """Mid-stream notify_table_update: requests admitted after the
        version bump buffer per shard and are only served once that
        shard acks the new version — never from a stale snapshot."""
        links = [FakeLink(0, auto=False), FakeLink(1, auto=False)]
        with make_cluster(cluster_catalog, links) as cluster:
            old_version = cluster_catalog.version
            cluster.notify_table_update("R")
            new_version = cluster_catalog.version
            assert new_version == old_version + 1

            future = cluster.submit(cluster_queries[0])
            time.sleep(0.02)
            # held: no estimate reached any shard yet
            assert all(not link.requests("estimate") for link in links)
            assert not future.done()
            held = cluster.stats_snapshot().cluster
            assert held["held_requests"] == 1.0
            assert held["holds"] == 2.0

            # ack the invalidates (shard adopts the new version)
            for link in links:
                for payload, ack in link.requests("invalidate"):
                    link.version = int(payload["version"])
                    ack.set_result(
                        {
                            "ok": True,
                            "status": "ok",
                            "shard": link.shard_id,
                            "version": link.version,
                        }
                    )
            # the hold flushes; the request reaches exactly one shard
            assert wait_until(
                lambda: any(link.requests("estimate") for link in links)
            )
            served = next(link for link in links if link.requests("estimate"))
            payload, raw = served.requests("estimate")[0]
            raw.set_result(served.ok_response(payload))
            answer = future.result(timeout=5.0)
            assert answer.snapshot_version == new_version
            assert answer.snapshot_version != old_version

    def test_no_stale_version_served_during_swap(
        self, cluster_catalog, cluster_queries
    ):
        """Drive a mid-stream swap with auto links and assert every
        answer accepted after the bump carries the new version."""
        links = [FakeLink(0), FakeLink(1)]
        with make_cluster(cluster_catalog, links) as cluster:
            before = [
                cluster.estimate(query, timeout=5.0)
                for query in cluster_queries[:10]
            ]
            assert {a.snapshot_version for a in before} == {
                cluster_catalog.version
            }
            cluster.notify_table_update("S")
            new_version = cluster_catalog.version
            after = [
                cluster.estimate(query, timeout=5.0)
                for query in cluster_queries
            ]
            assert {a.snapshot_version for a in after} == {new_version}
            assert cluster.stats_snapshot().cluster["swaps"] == 1.0

    def test_replicas_swap_too(self, cluster_catalog, cluster_queries):
        links = [FakeLink(0), FakeLink(1), FakeLink(2)]
        with make_cluster(cluster_catalog, links, replicas=1) as cluster:
            cluster.notify_table_update("R")
            assert wait_until(
                lambda: all(
                    link.version == cluster_catalog.version for link in links
                )
            )


class StatsLink(FakeLink):
    """A FakeLink whose ``stats`` op serves controllable counters, the
    shape a real shard's :class:`~repro.obs.StatsSnapshot` wire dict has."""

    def __init__(self, shard_id: int, *, estimates: float = 0.0, **kwargs):
        super().__init__(shard_id, **kwargs)
        self.counters = {"estimates": estimates}

    def _answer(self, payload: dict, future: Future) -> None:
        if payload.get("op") == "stats":
            future.set_result(
                {
                    "ok": True,
                    "status": "ok",
                    "stats": {
                        "counters": dict(self.counters),
                        "gauges": {"queue_depth": float(self.shard_id)},
                        "meta": {"shard": self.shard_id},
                    },
                }
            )
        else:
            super()._answer(payload, future)


class TestShardStatsAggregation:
    def test_counters_survive_eject_and_rejoin(
        self, cluster_catalog, cluster_queries
    ):
        links = [StatsLink(0, estimates=7.0), StatsLink(1, estimates=3.0)]
        with make_cluster(
            cluster_catalog, links, breaker_threshold=1
        ) as cluster:
            stats = cluster.shard_stats(timeout_s=5.0)
            assert stats[0]["counters"]["estimates"] == 7.0
            assert stats[1]["counters"]["estimates"] == 3.0

            # kill shard 0: the breaker ejects it on the next fault
            owner0 = next(
                query
                for query in cluster_queries
                if cluster.estimate(query, timeout=5.0).shard == 0
            )
            links[0].fail_transport = True
            assert cluster.estimate(owner0, timeout=5.0).shard == 1
            assert cluster.stats_snapshot().cluster["ejections"] == 1.0

            # down: member 0 still reports its banked counters
            stats = cluster.shard_stats(timeout_s=5.0)
            assert stats[0]["counters"]["estimates"] == 7.0
            assert stats[1]["counters"]["estimates"] == 3.0

            # rejoin a fresh incarnation (counters restart from 2): the
            # banked prior folds in, live gauges/meta win
            revived = StatsLink(0, estimates=2.0)
            with cluster._route_lock:
                cluster._links[0] = revived
                cluster._ring.rejoin(0)
            cluster._breaker.reset(0)
            stats = cluster.shard_stats(timeout_s=5.0)
            assert stats[0]["counters"]["estimates"] == 9.0
            assert stats[0]["gauges"]["queue_depth"] == 0.0
            assert stats[0]["meta"]["shard"] == 0

            # a second eject banks the folded total, not just the delta
            revived.fail_transport = True
            assert cluster.estimate(owner0, timeout=5.0).shard == 1
            stats = cluster.shard_stats(timeout_s=5.0)
            assert stats[0]["counters"]["estimates"] == 9.0

    def test_unpolled_member_reports_nothing_after_eject(
        self, cluster_catalog, cluster_queries
    ):
        """No poll before the crash means nothing to bank — the member
        simply disappears from shard_stats until it rejoins."""
        links = [StatsLink(0, estimates=5.0), StatsLink(1, estimates=1.0)]
        with make_cluster(
            cluster_catalog, links, breaker_threshold=1
        ) as cluster:
            links[0].fail_transport = True
            answers = [
                cluster.estimate(query, timeout=5.0)
                for query in cluster_queries
            ]
            assert all(answer.shard == 1 for answer in answers)
            stats = cluster.shard_stats(timeout_s=5.0)
            assert set(stats) == {1}


class TestLifecycle:
    def test_close_is_idempotent_and_closes_links(
        self, cluster_catalog, cluster_queries
    ):
        links = [FakeLink(0), FakeLink(1)]
        cluster = make_cluster(cluster_catalog, links)
        cluster.estimate(cluster_queries[0], timeout=5.0)
        assert cluster.close() is True
        assert cluster.close() is True
        assert all(link.closed for link in links)

    def test_seam_requires_matching_link_count(self, cluster_catalog):
        with pytest.raises(ValueError, match="_links"):
            make_cluster(cluster_catalog, [FakeLink(0)], shards=2)

    def test_stats_snapshot_meta(self, cluster_catalog):
        links = [FakeLink(0), FakeLink(1)]
        with make_cluster(cluster_catalog, links) as cluster:
            snapshot = cluster.stats_snapshot()
            assert snapshot.meta["subsystem"] == "cluster"
            assert snapshot.meta["shards"] == 2
            assert snapshot.cluster["shards"] == 2.0


class TestBoundedHolds:
    def test_holds_past_cap_shed_with_overloaded(
        self, cluster_catalog, cluster_queries
    ):
        """A write storm must not park unbounded work behind a swap:
        past ``max_held_requests`` the router sheds immediately with a
        typed Overloaded, and the bounded holds still flush on ack."""
        links = [FakeLink(0, auto=False), FakeLink(1, auto=False)]
        with make_cluster(
            cluster_catalog, links, max_held_requests=2
        ) as cluster:
            cluster.notify_table_update("R")
            query = cluster_queries[0]  # one template -> one shard
            kept = [cluster.submit(query) for _ in range(2)]
            shed = cluster.submit(query)
            with pytest.raises(Overloaded, match="max_held_requests"):
                shed.result(timeout=5.0)
            stats = cluster.stats_snapshot().cluster
            assert stats["holds_shed"] == 1.0
            assert stats["held_requests"] == 2.0

            for link in links:
                for payload, ack in link.requests("invalidate"):
                    link.version = int(payload["version"])
                    ack.set_result(
                        {
                            "ok": True,
                            "status": "ok",
                            "shard": link.shard_id,
                            "version": link.version,
                        }
                    )
            assert wait_until(
                lambda: sum(
                    len(link.requests("estimate")) for link in links
                )
                == 2
            )
            for link in links:
                for payload, raw in link.requests("estimate"):
                    if not raw.done():
                        raw.set_result(link.ok_response(payload))
            for future in kept:
                answer = future.result(timeout=5.0)
                assert answer.snapshot_version == cluster_catalog.version

    def test_cap_validates(self):
        with pytest.raises(ValueError, match="max_held_requests"):
            ClusterConfig(max_held_requests=0)


class TestSwapUnderWrite:
    def test_injected_fault_ejects_the_member_never_wedges(
        self, cluster_catalog, cluster_queries
    ):
        """A seeded ``swap_under_write`` fault at one member must not
        leave it serving the old version or wedge admission: the member
        is ejected outright and every answer accepted after the bump
        carries the new version from the surviving shard."""
        from repro.resilience.faults import (
            POINT_SWAP_UNDER_WRITE,
            FaultPlan,
            FaultRule,
            armed,
        )

        links = [FakeLink(0), FakeLink(1)]
        plan = FaultPlan(
            [FaultRule(point=POINT_SWAP_UNDER_WRITE, match="member=0")],
            seed=3,
        )
        with make_cluster(cluster_catalog, links) as cluster:
            with armed(plan):
                cluster.notify_table_update("R")
            assert plan.total_fires == 1
            new_version = cluster_catalog.version
            assert links[0].closed
            assert not links[0].requests("invalidate")
            answers = [
                cluster.estimate(query, timeout=5.0)
                for query in cluster_queries
            ]
            assert {a.snapshot_version for a in answers} == {new_version}
            assert all(a.shard == 1 for a in answers)
            stats = cluster.stats_snapshot().cluster
            assert stats["swap_faults"] == 1.0
            assert stats["ejections"] == 1.0


class TestClusterStaleness:
    def test_answers_carry_bounded_staleness(
        self, cluster_catalog, cluster_queries
    ):
        from repro.obs import StalenessTracker

        now = [100.0]
        tracker = StalenessTracker(clock=lambda: now[0])
        links = [FakeLink(0), FakeLink(1)]
        with make_cluster(cluster_catalog, links) as cluster:
            cluster.attach_staleness(tracker)
            fresh = cluster.estimate(cluster_queries[0], timeout=5.0)
            assert fresh.staleness_s == 0.0
            tracker.note_write("R", when=95.0)
            stale = cluster.estimate(cluster_queries[0], timeout=5.0)
            assert stale.staleness_s == pytest.approx(5.0)
            tracker.note_applied("R", through=95.0)
            caught_up = cluster.estimate(cluster_queries[0], timeout=5.0)
            assert caught_up.staleness_s == 0.0
