"""Shared-memory snapshot export/attach: zero copy, bit identity,
version pinning, and the stats-only shard database."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.catalog.session import EstimationSession
from repro.cluster.shm import (
    StatsOnlyDatabase,
    attach_snapshot,
    export_snapshot,
)
from repro.core.predicates import FilterPredicate
from repro.histograms.base import Histogram


@pytest.fixture()
def exported(cluster_catalog):
    export = export_snapshot(cluster_catalog.snapshot(), cluster_catalog.database)
    yield export
    export.close()
    export.unlink()


class TestExport:
    def test_descriptor_is_json_ready(self, exported):
        encoded = json.dumps(exported.descriptor)
        assert json.loads(encoded)["segment"] == exported.segment.name

    def test_descriptor_covers_every_sit(self, cluster_catalog, exported):
        assert len(exported.descriptor["sits"]) == len(cluster_catalog.pool)
        assert exported.descriptor["version"] == cluster_catalog.version

    def test_requires_a_database(self, cluster_catalog):
        snapshot = cluster_catalog.snapshot()
        object.__setattr__(snapshot, "catalog", None)
        with pytest.raises(ValueError, match="database"):
            export_snapshot(snapshot)


class TestAttach:
    def test_attached_arrays_are_views_into_the_segment(self, exported):
        attached = attach_snapshot(exported.descriptor)
        try:
            segment_view = np.ndarray(
                (int(exported.descriptor["length"]),),
                dtype=np.float64,
                buffer=attached.segment.buf,
            )
            for sit in attached.catalog.pool:
                lows, highs, freqs, dists = sit.histogram.bucket_arrays()
                for array in (lows, highs, freqs, dists):
                    assert np.shares_memory(array, segment_view)
                    assert not array.flags.writeable
        finally:
            attached.close()

    def test_estimates_are_bit_identical(
        self, cluster_catalog, cluster_queries, exported
    ):
        reference = EstimationSession(
            cluster_catalog, database=cluster_catalog.database
        )
        attached = attach_snapshot(exported.descriptor)
        try:
            session = EstimationSession(
                attached.catalog, database=attached.database
            )
            for query in cluster_queries:
                expected = reference.estimate(query)
                got = session.estimate(query)
                assert got.selectivity == expected.selectivity
                assert got.error == expected.error
        finally:
            attached.close()

    def test_attached_catalog_reports_exporter_versions(
        self, cluster_catalog, exported
    ):
        attached = attach_snapshot(exported.descriptor)
        try:
            assert attached.catalog.version == cluster_catalog.version
            assert (
                attached.catalog.table_versions
                == cluster_catalog.table_versions
            )
        finally:
            attached.close()

    def test_row_counts_survive_without_data(self, cluster_catalog, exported):
        attached = attach_snapshot(exported.descriptor)
        try:
            database = attached.database
            original = cluster_catalog.database
            for table in original.schema.tables:
                assert database.row_count(table) == original.row_count(table)
            assert database.cross_product_size(
                frozenset({"R", "S"})
            ) == original.cross_product_size(frozenset({"R", "S"}))
        finally:
            attached.close()


class TestStatsOnlyDatabase:
    def test_refuses_column_access(self, two_table_db):
        database = StatsOnlyDatabase(two_table_db.schema, {"R": 10, "S": 5})
        with pytest.raises(LookupError, match="stats-only"):
            database.table("R")

    def test_unknown_table_row_count(self, two_table_db):
        database = StatsOnlyDatabase(two_table_db.schema, {"R": 10})
        with pytest.raises(KeyError):
            database.row_count("missing")

    def test_table_names(self, two_table_db):
        database = StatsOnlyDatabase(two_table_db.schema, {"R": 10, "S": 5})
        assert database.table_names == frozenset({"R", "S"})


class TestFromArrays:
    def test_matches_bucket_construction(self, two_table_pool):
        for sit in two_table_pool:
            original = sit.histogram
            rebuilt = Histogram.from_arrays(
                *original.bucket_arrays(), null_count=original.null_count
            )
            assert rebuilt.total == original.total
            assert rebuilt.frequency == original.frequency
            assert rebuilt.buckets == original.buckets

    def test_validates_shapes_and_order(self):
        with pytest.raises(ValueError, match="identical shapes"):
            Histogram.from_arrays(
                np.zeros(2), np.ones(2), np.ones(2), np.ones(3)
            )
        with pytest.raises(ValueError, match="ordered"):
            Histogram.from_arrays(
                np.array([0.0, 1.0]),
                np.array([5.0, 2.0]),
                np.ones(2),
                np.ones(2),
            )

    def test_unknown_attribute_still_raises(self):
        histogram = Histogram.from_arrays(
            np.array([0.0]), np.array([1.0]), np.array([2.0]), np.array([1.0])
        )
        with pytest.raises(AttributeError):
            histogram.not_a_real_attribute

    def test_estimates_match_eagerly_built(self):
        lows = np.array([0.0, 10.0, 20.0])
        highs = np.array([10.0, 20.0, 30.0])
        freqs = np.array([5.0, 7.0, 3.0])
        dists = np.array([5.0, 7.0, 3.0])
        lazy = Histogram.from_arrays(lows, highs, freqs, dists)
        from repro.histograms.base import Bucket

        eager = Histogram(
            [Bucket(*row) for row in zip(lows, highs, freqs, dists)]
        )
        for low, high in ((0.0, 30.0), (5.0, 12.0), (25.0, 99.0)):
            assert lazy.estimate_range_selectivity(
                low, high
            ) == eager.estimate_range_selectivity(low, high)


def test_expression_codec_roundtrip(two_table_attrs):
    """Predicates ride the descriptor through the stats.io codec; the
    round trip must be exact (infinities included) for SIT lookups on
    the shard to hit the same pool entries."""
    from repro.stats.io import decode_predicate, encode_predicate

    predicate = FilterPredicate(two_table_attrs["Ra"], 1.5, float("inf"))
    assert decode_predicate(encode_predicate(predicate)) == predicate
