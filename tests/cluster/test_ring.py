"""Consistent-hash ring: stability, eject/spill, exact rejoin."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing


class TestLookup:
    def test_deterministic_across_instances(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        keys = [f"key-{i}" for i in range(200)]
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]

    def test_every_shard_owns_some_keyspace(self):
        ring = HashRing(range(4))
        owners = {ring.lookup(f"key-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        ring = HashRing([7])
        assert all(ring.lookup(f"k{i}") == 7 for i in range(50))

    def test_requires_a_shard(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_points_validation(self):
        with pytest.raises(ValueError):
            HashRing([0], points=0)


class TestEjectRejoin:
    def test_eject_spills_only_the_ejected_keyspace(self):
        ring = HashRing(range(4))
        keys = [f"key-{i}" for i in range(400)]
        before = {k: ring.lookup(k) for k in keys}
        assert ring.eject(2)
        after = {k: ring.lookup(k) for k in keys}
        for key in keys:
            if before[key] != 2:
                # unaffected keys keep their owner: consistent hashing
                assert after[key] == before[key]
            else:
                assert after[key] != 2
        assert ring.active == frozenset({0, 1, 3})
        assert ring.ejected == frozenset({2})
        assert ring.members == frozenset({0, 1, 2, 3})

    def test_rejoin_restores_exact_placement(self):
        ring = HashRing(range(4))
        keys = [f"key-{i}" for i in range(400)]
        before = {k: ring.lookup(k) for k in keys}
        ring.eject(1)
        assert ring.rejoin(1)
        assert {k: ring.lookup(k) for k in keys} == before

    def test_eject_is_idempotent_and_bounded(self):
        ring = HashRing(range(2))
        assert ring.eject(0)
        assert not ring.eject(0)  # already out
        assert not ring.eject(99)  # unknown
        with pytest.raises(RuntimeError):
            ring.eject(1)  # never eject the last active shard

    def test_rejoin_unknown_is_a_noop(self):
        ring = HashRing(range(2))
        assert not ring.rejoin(0)  # not ejected


class TestSuccessor:
    def test_successor_differs_from_primary(self):
        ring = HashRing(range(3))
        for i in range(100):
            key = f"key-{i}"
            primary = ring.lookup(key)
            assert ring.successor(key, primary) != primary

    def test_successor_with_single_shard_is_itself(self):
        ring = HashRing([0])
        assert ring.successor("k", 0) == 0
