"""Fixtures for the cluster tier: a catalog over the two-table database
plus predicate-set workloads that split across the template ring."""

from __future__ import annotations

import pytest

from repro.catalog import StatisticsCatalog
from repro.core.predicates import FilterPredicate


@pytest.fixture()
def cluster_catalog(two_table_db, two_table_pool) -> StatisticsCatalog:
    """A fresh catalog per test (swap tests bump its version)."""
    return StatisticsCatalog.from_pool(two_table_pool, database=two_table_db)


@pytest.fixture()
def cluster_queries(two_table_attrs, two_table_join) -> list[frozenset]:
    """Two query templates (filters on R.a and on S.b), many constants —
    the shape the fingerprint router splits across shards."""
    queries: list[frozenset] = []
    for index in range(30):
        low = float(index % 20)
        queries.append(
            frozenset(
                {
                    two_table_join,
                    FilterPredicate(two_table_attrs["Ra"], low, low + 12.0),
                }
            )
        )
        queries.append(
            frozenset(
                {
                    two_table_join,
                    FilterPredicate(two_table_attrs["Sb"], low, low + 30.0),
                }
            )
        )
    return queries
