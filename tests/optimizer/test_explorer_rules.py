"""Tests for transformation rules and the exploration fixpoint."""

import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.expressions import Query
from repro.optimizer.explorer import explore, subplan_predicate_sets
from repro.optimizer.memo import GroupKey, Operator

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
TZ = Attribute("T", "z")
SBF = Attribute("S", "bf")

JOIN_RS = JoinPredicate(RX, SY)
JOIN_ST = JoinPredicate(SB, TZ)
FILTER_A = FilterPredicate(RA, 0, 10)
FILTER_S = FilterPredicate(SBF, 5, 20)


class TestExplore:
    def test_fixpoint_reached(self):
        query = Query.of(JOIN_RS, JOIN_ST, FILTER_A)
        result = explore(query)
        # Re-exploring the explored memo must add nothing.
        before = result.memo.entry_count()
        second = explore(query)
        assert second.memo.entry_count() == before

    def test_commutativity_generates_swapped_joins(self):
        query = Query.of(JOIN_RS)
        result = explore(query)
        root_entries = result.memo.groups[result.root].entries
        joins = [e for e in root_entries if e.operator is Operator.JOIN]
        inputs = {e.inputs for e in joins}
        assert len(inputs) >= 2  # (R,S) and (S,R)

    def test_associativity_generates_both_join_orders(self):
        query = Query.of(JOIN_RS, JOIN_ST)
        result = explore(query)
        # Sub-plan S⋈T must exist even though the initial plan was
        # (R⋈S)⋈T.
        st_key = GroupKey(frozenset(("S", "T")), frozenset({JOIN_ST}))
        assert st_key in result.memo

    def test_select_pull_up_creates_filtered_join_group(self):
        """The paper's Figure 4: the top group acquires a SELECT entry over
        the join of unfiltered inputs."""
        query = Query.of(JOIN_RS, FILTER_A)
        result = explore(query)
        root_entries = result.memo.groups[result.root].entries
        operators = {entry.operator for entry in root_entries}
        assert Operator.SELECT in operators
        assert Operator.JOIN in operators

    def test_all_groups_are_subsets_of_query(self):
        query = Query.of(JOIN_RS, JOIN_ST, FILTER_A, FILTER_S)
        result = explore(query)
        for key in result.memo.groups:
            assert key.predicates <= query.predicates

    def test_entry_inputs_exist(self):
        query = Query.of(JOIN_RS, JOIN_ST, FILTER_A)
        result = explore(query)
        for group in result.memo.groups.values():
            for entry in group.entries:
                for input_key in entry.inputs:
                    assert input_key in result.memo

    def test_entry_consistency(self):
        """Each entry's parameter plus input predicates equals its group's
        predicate set — the invariant Section 4.2's decompositions need."""
        query = Query.of(JOIN_RS, JOIN_ST, FILTER_A)
        result = explore(query)
        for key, group in result.memo.groups.items():
            for entry in group.entries:
                if entry.operator is Operator.GET:
                    continue
                predicates = {entry.parameter}
                for input_key in entry.inputs:
                    predicates |= input_key.predicates
                assert frozenset(predicates) == key.predicates


class TestSubplanPredicateSets:
    def test_ordered_smallest_first(self):
        query = Query.of(JOIN_RS, JOIN_ST, FILTER_A)
        result = explore(query)
        sets = subplan_predicate_sets(result)
        sizes = [len(s) for s in sets]
        assert sizes == sorted(sizes)
        assert query.predicates in sets

    def test_empty_sets_excluded(self):
        query = Query.of(JOIN_RS)
        sets = subplan_predicate_sets(explore(query))
        assert all(sets)
