"""Tests for the Cascades-style memo and initial plan construction."""

import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.optimizer.memo import (
    Entry,
    GroupKey,
    Memo,
    Operator,
    initial_plan,
)

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
TZ = Attribute("T", "z")

JOIN_RS = JoinPredicate(RX, SY)
JOIN_ST = JoinPredicate(SB, TZ)
FILTER_A = FilterPredicate(RA, 0, 10)


class TestMemoBasics:
    def test_group_creation_idempotent(self):
        memo = Memo()
        key = GroupKey(frozenset(("R",)), frozenset())
        assert memo.group(key) is memo.group(key)
        assert len(memo) == 1

    def test_entry_dedup(self):
        memo = Memo()
        key = memo.add_get("R")
        assert not memo.group(key).add(
            Entry(Operator.GET, None, (), table="R")
        )
        assert memo.entry_count() == 1

    def test_add_select_extends_key(self):
        memo = Memo()
        base = memo.add_get("R")
        selected = memo.add_select(FILTER_A, base)
        assert selected.predicates == frozenset({FILTER_A})
        assert selected.tables == frozenset(("R",))

    def test_add_join_unions(self):
        memo = Memo()
        left = memo.add_get("R")
        right = memo.add_get("S")
        joined = memo.add_join(JOIN_RS, left, right)
        assert joined.tables == frozenset(("R", "S"))
        assert joined.predicates == frozenset({JOIN_RS})


class TestInitialPlan:
    def test_single_table_query(self):
        memo = Memo()
        root = initial_plan(memo, frozenset(("R",)), frozenset({FILTER_A}))
        assert root.predicates == frozenset({FILTER_A})
        assert memo.groups[root].entries[0].operator is Operator.SELECT

    def test_join_query_root_covers_everything(self):
        memo = Memo()
        predicates = frozenset({JOIN_RS, JOIN_ST, FILTER_A})
        root = initial_plan(memo, frozenset(), predicates)
        assert root.predicates == predicates
        assert root.tables == frozenset(("R", "S", "T"))

    def test_filters_pushed_to_leaves(self):
        memo = Memo()
        predicates = frozenset({JOIN_RS, FILTER_A})
        initial_plan(memo, frozenset(), predicates)
        filtered_leaf = GroupKey(frozenset(("R",)), frozenset({FILTER_A}))
        assert filtered_leaf in memo

    def test_disconnected_rejected(self):
        memo = Memo()
        far = FilterPredicate(Attribute("Z", "q"), 0, 1)
        with pytest.raises(ValueError):
            initial_plan(memo, frozenset(), frozenset({FILTER_A, far}))

    def test_join_free_multi_table_rejected(self):
        memo = Memo()
        far = FilterPredicate(Attribute("Z", "q"), 0, 1)
        with pytest.raises(ValueError):
            initial_plan(
                memo, frozenset(("R", "Z")), frozenset({FILTER_A, far})
            )
