"""Edge cases for the memo-coupled estimator."""

import pytest

from repro.core.errors import NIndError
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.expressions import Query
from repro.optimizer.explorer import explore
from repro.optimizer.integration import MemoCoupledEstimator
from repro.stats.pool import SITPool
from repro.stats.sit import SIT
from repro.histograms.base import Bucket, Histogram


def uniform():
    return Histogram([Bucket(0, 100, 1000, 100)])


class TestMemoCoupledEdgeCases:
    def test_missing_statistics_surface_as_infinite_error(self, two_table_db):
        # Pool covers only R.a: join groups cannot be estimated.
        pool = SITPool([SIT(Attribute("R", "a"), frozenset(), uniform())])
        estimator = MemoCoupledEstimator(two_table_db, pool, NIndError())
        query = Query.of(
            JoinPredicate(Attribute("R", "x"), Attribute("S", "y"))
        )
        exploration = explore(query)
        estimates = estimator.estimate_memo(exploration)
        root = estimates[exploration.root]
        assert root.error == float("inf")
        assert root.best_entry is None

    def test_filter_only_query(self, two_table_db, two_table_pool):
        estimator = MemoCoupledEstimator(
            two_table_db, two_table_pool, NIndError()
        )
        query = Query.of(FilterPredicate(Attribute("R", "a"), 0, 20))
        selectivity = estimator.selectivity(query)
        assert 0.0 < selectivity < 1.0

    def test_leaf_groups_are_free(self, two_table_db, two_table_pool):
        estimator = MemoCoupledEstimator(
            two_table_db, two_table_pool, NIndError()
        )
        query = Query.of(
            JoinPredicate(Attribute("R", "x"), Attribute("S", "y"))
        )
        exploration = explore(query)
        estimates = estimator.estimate_memo(exploration)
        for key, estimate in estimates.items():
            if not key.predicates:
                assert estimate.selectivity == 1.0
                assert estimate.error == 0.0

    def test_best_entries_recorded(self, two_table_db, two_table_pool):
        estimator = MemoCoupledEstimator(
            two_table_db, two_table_pool, NIndError()
        )
        query = Query.of(
            JoinPredicate(Attribute("R", "x"), Attribute("S", "y")),
            FilterPredicate(Attribute("R", "a"), 0, 20),
        )
        exploration = explore(query)
        estimates = estimator.estimate_memo(exploration)
        root = estimates[exploration.root]
        assert root.best_entry is not None
        assert root.best_entry in exploration.memo.groups[exploration.root].entries
