"""Tests for physical plan execution.

The central invariant: every plan the optimizer can extract from an
explored memo produces exactly the same result cardinality as the
canonical predicate-set executor — i.e. exploration is semantics-
preserving end to end.
"""

import pytest

from repro.estimators import make_gs_diff, make_nosit
from repro.core.predicates import FilterPredicate
from repro.engine.executor import Executor
from repro.engine.expressions import Query
from repro.optimizer.cost import CostModel
from repro.optimizer.execution import execute_plan
from repro.optimizer.explorer import explore
from repro.optimizer.memo import Entry, GroupKey, Operator
from repro.workload.queries import WorkloadConfig, WorkloadGenerator


@pytest.fixture()
def query(two_table_join, two_table_attrs):
    return Query.of(
        two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
    )


def best_plan_for(db, pool, query, factory=make_gs_diff):
    exploration = explore(query)
    estimator = factory(db, pool)
    model = CostModel(
        db, lambda predicates: estimator.algorithm(predicates).selectivity
    )
    return model.best_plan(exploration.memo, exploration.root), exploration


class TestExecutePlan:
    def test_plan_matches_canonical_executor(
        self, two_table_db, two_table_pool, query
    ):
        plan, _ = best_plan_for(two_table_db, two_table_pool, query)
        result = execute_plan(two_table_db, plan)
        true = Executor(two_table_db).cardinality(query.predicates)
        assert result.row_count == true

    def test_every_root_entry_plan_agrees(
        self, two_table_db, two_table_pool, query
    ):
        """Not just the best plan: every alternative in the root group is
        semantically equivalent."""
        exploration = explore(query)
        estimator = make_gs_diff(two_table_db, two_table_pool)
        model = CostModel(
            two_table_db,
            lambda predicates: estimator.algorithm(predicates).selectivity,
        )
        true = Executor(two_table_db).cardinality(query.predicates)
        root_group = exploration.memo.groups[exploration.root]
        for entry in root_group.entries:
            plan = model._plan_for(exploration.memo, exploration.root, entry)
            assert execute_plan(two_table_db, plan).row_count == true

    def test_snowflake_workload_plans_execute_correctly(self, tiny_snowflake):
        from repro.stats.builder import SITBuilder
        from repro.stats.pool import build_workload_pool

        generator = WorkloadGenerator(
            tiny_snowflake, WorkloadConfig(join_count=3, filter_count=2, seed=8)
        )
        queries = generator.generate(3)
        pool = build_workload_pool(SITBuilder(tiny_snowflake), queries, max_joins=1)
        executor = Executor(tiny_snowflake)
        for query in queries:
            plan, _ = best_plan_for(tiny_snowflake, pool, query)
            result = execute_plan(tiny_snowflake, plan)
            assert result.row_count == executor.cardinality(query.predicates)

    def test_plan_choice_independent_of_estimator_correctness(
        self, two_table_db, two_table_pool, query
    ):
        """Different estimators may pick different plans, but every picked
        plan returns the right answer."""
        true = Executor(two_table_db).cardinality(query.predicates)
        for factory in (make_nosit, make_gs_diff):
            plan, _ = best_plan_for(two_table_db, two_table_pool, query, factory)
            assert execute_plan(two_table_db, plan).row_count == true

    def test_result_columns_accessible(self, two_table_db, two_table_pool, query):
        plan, _ = best_plan_for(two_table_db, two_table_pool, query)
        result = execute_plan(two_table_db, plan)
        from repro.core.predicates import Attribute

        values = result.column(Attribute("R", "a"))
        assert len(values) == result.row_count
        assert (values <= 20).all()

    def test_disconnected_join_plan_rejected(self, two_table_db):
        from repro.core.predicates import Attribute, JoinPredicate
        from repro.engine.executor import JoinResult
        import numpy as np

        from repro.optimizer.cost import PlanNode

        bad_join = Entry(
            Operator.JOIN,
            JoinPredicate(Attribute("R", "x"), Attribute("S", "y")),
            (
                GroupKey(frozenset(("S",)), frozenset()),
                GroupKey(frozenset(("S",)), frozenset()),
            ),
        )
        scan = Entry(Operator.GET, None, (), table="S")
        child = PlanNode(scan, (), 50, 50)
        plan = PlanNode(bad_join, (child, child), 1, 1)
        with pytest.raises(ValueError):
            execute_plan(two_table_db, plan)
