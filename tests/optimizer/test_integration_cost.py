"""Tests for the memo-coupled estimator (Section 4.2) and the cost model."""

import pytest

from repro.core.errors import DiffError, NIndError
from repro.estimators import make_gs_diff
from repro.core.predicates import FilterPredicate
from repro.engine.executor import Executor
from repro.engine.expressions import Query
from repro.optimizer.cost import CostModel
from repro.optimizer.explorer import explore
from repro.optimizer.integration import MemoCoupledEstimator


@pytest.fixture()
def query(two_table_join, two_table_attrs):
    return Query.of(
        two_table_join, FilterPredicate(two_table_attrs["Ra"], 0, 20)
    )


class TestMemoCoupledEstimator:
    def test_estimates_every_group(self, two_table_db, two_table_pool, query):
        estimator = MemoCoupledEstimator(
            two_table_db, two_table_pool, DiffError(two_table_pool)
        )
        exploration = explore(query)
        estimates = estimator.estimate_memo(exploration)
        assert set(estimates) == set(exploration.memo.groups)

    def test_root_close_to_truth(self, two_table_db, two_table_pool, query):
        estimator = MemoCoupledEstimator(
            two_table_db, two_table_pool, DiffError(two_table_pool)
        )
        true = Executor(two_table_db).cardinality(query.predicates)
        assert estimator.cardinality(query) == pytest.approx(true, rel=0.25)

    def test_never_better_than_full_dp(self, two_table_db, two_table_pool, query):
        """The memo restricts the decomposition space, so its best error is
        at least the full DP's best error."""
        error_function = NIndError()
        coupled = MemoCoupledEstimator(two_table_db, two_table_pool, error_function)
        exploration = explore(query)
        estimates = coupled.estimate_memo(exploration)
        from repro.core.get_selectivity import GetSelectivity

        full = GetSelectivity(two_table_pool, error_function)
        assert estimates[exploration.root].error >= full(query.predicates).error - 1e-9

    def test_selectivity_in_unit_interval(self, two_table_db, two_table_pool, query):
        estimator = MemoCoupledEstimator(
            two_table_db, two_table_pool, DiffError(two_table_pool)
        )
        assert 0.0 <= estimator.selectivity(query) <= 1.0


class TestCostModel:
    def test_plan_extraction(self, two_table_db, two_table_pool, query):
        exploration = explore(query)
        estimator = make_gs_diff(two_table_db, two_table_pool)
        model = CostModel(
            two_table_db,
            lambda predicates: estimator.algorithm(predicates).selectivity,
        )
        plan = model.best_plan(exploration.memo, exploration.root)
        assert plan.cost > 0
        assert plan.cardinality >= 0
        rendered = plan.render()
        assert "JOIN" in rendered

    def test_costs_monotone_in_children(self, two_table_db, two_table_pool, query):
        exploration = explore(query)
        estimator = make_gs_diff(two_table_db, two_table_pool)
        model = CostModel(
            two_table_db,
            lambda predicates: estimator.algorithm(predicates).selectivity,
        )
        plan = model.best_plan(exploration.memo, exploration.root)
        for child in plan.children:
            assert plan.cost >= child.cost

    def test_group_cardinality_empty_predicates(self, two_table_db, two_table_pool):
        model = CostModel(two_table_db, lambda predicates: 1.0)
        from repro.optimizer.memo import GroupKey

        key = GroupKey(frozenset(("R",)), frozenset())
        assert model.group_cardinality(key) == two_table_db.row_count("R")
