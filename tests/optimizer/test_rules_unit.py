"""Direct unit tests for individual transformation rules."""

import pytest

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.optimizer.memo import Entry, GroupKey, Memo, Operator
from repro.optimizer.rules import (
    JoinAssociativity,
    JoinCommutativity,
    SelectCommutativity,
    SelectPullUp,
    SelectPushDown,
)

RA = Attribute("R", "a")
RX = Attribute("R", "x")
SY = Attribute("S", "y")
SB = Attribute("S", "b")
TZ = Attribute("T", "z")

JOIN_RS = JoinPredicate(RX, SY)
JOIN_ST = JoinPredicate(SB, TZ)
FILTER_A = FilterPredicate(RA, 0, 10)
FILTER_A2 = FilterPredicate(RA, 5, 20)


def seeded_memo():
    memo = Memo()
    r = memo.add_get("R")
    s = memo.add_get("S")
    t = memo.add_get("T")
    return memo, r, s, t


class TestJoinCommutativity:
    def test_swaps_inputs(self):
        memo, r, s, _ = seeded_memo()
        key = memo.add_join(JOIN_RS, r, s)
        group = memo.groups[key]
        entry = group.entries[0]
        derived = list(JoinCommutativity().apply(memo, group, entry))
        assert len(derived) == 1
        assert derived[0].entry.inputs == (s, r)
        assert derived[0].key == key

    def test_ignores_non_joins(self):
        memo, r, _, _ = seeded_memo()
        key = memo.add_select(FILTER_A, r)
        group = memo.groups[key]
        assert list(JoinCommutativity().apply(memo, group, group.entries[0])) == []


class TestJoinAssociativity:
    def test_rotates_left_deep_to_right_deep(self):
        memo, r, s, t = seeded_memo()
        rs = memo.add_join(JOIN_RS, r, s)
        root = memo.add_join(JOIN_ST, rs, t)
        group = memo.groups[root]
        entry = group.entries[0]
        derived = list(JoinAssociativity().apply(memo, group, entry))
        # Produces the S⋈T group and the rotated root entry.
        st_key = GroupKey(frozenset(("S", "T")), frozenset({JOIN_ST}))
        assert any(d.key == st_key for d in derived)
        assert any(
            d.key == root and d.entry.inputs[0] == r for d in derived
        )

    def test_requires_predicate_fit(self):
        # Outer join predicate touching A cannot rotate to (B⋈C).
        memo, r, s, t = seeded_memo()
        st = memo.add_join(JOIN_ST, s, t)
        root = memo.add_join(JOIN_RS, st, r)  # outer predicate touches S
        group = memo.groups[root]
        entry = group.entries[0]
        derived = list(JoinAssociativity().apply(memo, group, entry))
        # Rotation valid only when outer ⊆ tables(B ∪ C) = {T, R}:
        # JOIN_RS touches R and S -> no derivation from this shape.
        assert all(d.key.tables != frozenset(("T", "R")) for d in derived)


class TestSelectPullUp:
    def test_filter_moves_above_join(self):
        memo, r, s, _ = seeded_memo()
        filtered_r = memo.add_select(FILTER_A, r)
        root = memo.add_join(JOIN_RS, filtered_r, s)
        group = memo.groups[root]
        entry = group.entries[0]
        derived = list(SelectPullUp().apply(memo, group, entry))
        selects = [
            d for d in derived if d.entry.operator is Operator.SELECT
        ]
        assert selects
        assert all(d.key == root for d in selects)
        joins = [d for d in derived if d.entry.operator is Operator.JOIN]
        assert any(d.key.predicates == frozenset({JOIN_RS}) for d in joins)


class TestSelectPushDown:
    def test_filter_moves_below_join(self):
        memo, r, s, _ = seeded_memo()
        rs = memo.add_join(JOIN_RS, r, s)
        root = memo.add_select(FILTER_A, rs)
        group = memo.groups[root]
        entry = group.entries[0]
        derived = list(SelectPushDown().apply(memo, group, entry))
        pushed = GroupKey(frozenset(("R",)), frozenset({FILTER_A}))
        assert any(d.key == pushed for d in derived)
        assert any(
            d.key == root and d.entry.operator is Operator.JOIN for d in derived
        )

    def test_no_push_when_tables_do_not_fit(self):
        memo, r, s, _ = seeded_memo()
        rs = memo.add_join(JOIN_RS, r, s)
        cross_filter = FilterPredicate(Attribute("Q", "c"), 0, 1)
        key = GroupKey(rs.tables, rs.predicates | {cross_filter})
        memo.group(key).add(Entry(Operator.SELECT, cross_filter, (rs,)))
        group = memo.groups[key]
        derived = list(SelectPushDown().apply(memo, group, group.entries[0]))
        assert derived == []


class TestSelectCommutativity:
    def test_reorders_adjacent_filters(self):
        memo, r, _, _ = seeded_memo()
        inner = memo.add_select(FILTER_A, r)
        root = memo.add_select(FILTER_A2, inner)
        group = memo.groups[root]
        entry = group.entries[0]
        derived = list(SelectCommutativity().apply(memo, group, entry))
        swapped_inner = GroupKey(frozenset(("R",)), frozenset({FILTER_A2}))
        assert any(d.key == swapped_inner for d in derived)
        assert any(
            d.key == root and d.entry.parameter == FILTER_A for d in derived
        )
