"""The estimator-plurality contract: every backend answers the shared
workload within its documented error envelope, the SIT backend stays
bit-identical to the pre-refactor class, and ``backend``/``error_bound``
provenance survives the wire."""

from __future__ import annotations

import warnings

import pytest

from repro.estimators import (
    BACKENDS,
    BayesianNetworkEstimator,
    Estimator,
    GuaranteedSampleEstimator,
    SITEstimator,
    create_estimator,
)

#: documented error envelopes on the shared parity workload:
#: * ``sit``  — exact DP over the conditioned pool (matches the paper)
#: * ``bn``   — per-table Chow-Liu trees: absolute error below 0.1
#: * ``sample`` — within its own distribution-free ``error_bound``
BN_ABS_ENVELOPE = 0.1


def backend_for(name, db, pool) -> Estimator:
    return create_estimator(name, db, pool)


class TestRegistry:
    def test_backend_names(self):
        assert BACKENDS == ("sit", "bn", "sample")

    def test_unknown_backend_rejected(self, two_table_db, two_table_pool):
        with pytest.raises(ValueError, match="unknown estimator backend"):
            create_estimator("oracle", two_table_db, two_table_pool)

    def test_sit_only_kwargs_rejected_on_peers(
        self, two_table_db, two_table_pool
    ):
        for name in ("bn", "sample"):
            with pytest.raises(TypeError, match="does not accept"):
                create_estimator(
                    name, two_table_db, two_table_pool, engine="bitmask"
                )

    def test_factory_types_and_tags(self, two_table_db, two_table_pool):
        made = {
            name: backend_for(name, two_table_db, two_table_pool)
            for name in BACKENDS
        }
        assert isinstance(made["sit"], SITEstimator)
        assert isinstance(made["bn"], BayesianNetworkEstimator)
        assert isinstance(made["sample"], GuaranteedSampleEstimator)
        for name, estimator in made.items():
            assert isinstance(estimator, Estimator)
            assert estimator.backend == name
            assert estimator.stats_snapshot().meta["backend"] == name


class TestParity:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_results_are_tagged_and_bounded(
        self, name, two_table_db, two_table_pool, parity_queries
    ):
        estimator = backend_for(name, two_table_db, two_table_pool)
        for predicates in parity_queries:
            result = estimator.estimate_predicates(predicates)
            assert result.backend == name
            assert 0.0 <= result.selectivity <= 1.0
            if name == "sample":
                assert result.error_bound is not None
                assert 0.0 < result.error_bound <= 1.0
            else:
                assert result.error_bound is None

    def test_sample_estimates_within_their_guarantee(
        self, two_table_db, two_table_pool, parity_queries, parity_truth
    ):
        estimator = backend_for("sample", two_table_db, two_table_pool)
        for predicates, truth in zip(parity_queries, parity_truth):
            result = estimator.estimate_predicates(predicates)
            assert abs(result.selectivity - truth) <= result.error_bound

    def test_bn_estimates_within_the_documented_envelope(
        self, two_table_db, two_table_pool, parity_queries, parity_truth
    ):
        estimator = backend_for("bn", two_table_db, two_table_pool)
        for predicates, truth in zip(parity_queries, parity_truth):
            result = estimator.estimate_predicates(predicates)
            assert abs(result.selectivity - truth) <= BN_ABS_ENVELOPE

    def test_estimates_are_deterministic(
        self, two_table_db, two_table_pool, parity_queries
    ):
        for name in BACKENDS:
            first = backend_for(name, two_table_db, two_table_pool)
            second = backend_for(name, two_table_db, two_table_pool)
            for predicates in parity_queries:
                assert (
                    first.estimate_predicates(predicates).selectivity
                    == second.estimate_predicates(predicates).selectivity
                )


class TestSITBitIdentity:
    def test_create_estimator_sit_matches_direct_construction(
        self, two_table_db, two_table_pool, parity_queries
    ):
        made = backend_for("sit", two_table_db, two_table_pool)
        direct = SITEstimator(two_table_db, two_table_pool)
        for predicates in parity_queries:
            assert (
                made.estimate_predicates(predicates).selectivity
                == direct.estimate_predicates(predicates).selectivity
            )


class TestInvalidation:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_notify_table_update_bumps_versions(
        self, name, two_table_db, two_table_pool, parity_queries
    ):
        estimator = backend_for(name, two_table_db, two_table_pool)
        estimator.estimate_predicates(parity_queries[0])
        first = estimator.notify_table_update("R")
        second = estimator.notify_table_update("R")
        assert second == first + 1

    def test_sample_reservoir_rebuilds_after_invalidate(
        self, two_table_db, two_table_pool, parity_queries
    ):
        estimator = backend_for("sample", two_table_db, two_table_pool)
        estimator.estimate_predicates(parity_queries[3])
        built = estimator.stats_snapshot().counters["samples_built"]
        estimator.notify_table_update("R")
        estimator.estimate_predicates(parity_queries[3])
        rebuilt = estimator.stats_snapshot().counters["samples_built"]
        assert rebuilt == built + 1  # only R re-sampled, S kept

    def test_bn_model_rebuilds_after_invalidate(
        self, two_table_db, two_table_pool, parity_queries
    ):
        estimator = backend_for("bn", two_table_db, two_table_pool)
        estimator.estimate_predicates(parity_queries[3])
        built = estimator.stats_snapshot().counters["models_built"]
        estimator.notify_table_update("R")
        estimator.estimate_predicates(parity_queries[3])
        rebuilt = estimator.stats_snapshot().counters["models_built"]
        assert rebuilt == built + 1

    def test_catalog_backed_peer_sees_catalog_invalidation(
        self, two_table_db, two_table_pool, parity_queries
    ):
        """An invalidation issued on the *catalog* (the single event
        path) is observed lazily by a catalog-backed peer backend."""
        from repro.catalog import StatisticsCatalog

        catalog = StatisticsCatalog.from_pool(
            two_table_pool, database=two_table_db
        )
        estimator = backend_for("sample", two_table_db, catalog)
        estimator.estimate_predicates(parity_queries[3])
        built = estimator.stats_snapshot().counters["samples_built"]
        catalog.notify_table_update("R")
        estimator.estimate_predicates(parity_queries[3])
        rebuilt = estimator.stats_snapshot().counters["samples_built"]
        assert rebuilt == built + 1


class TestDeprecationShim:
    def test_old_import_path_is_removed(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.core.estimator  # noqa: F401

    def test_modern_class_does_not_warn(self, two_table_db, two_table_pool):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SITEstimator(two_table_db, two_table_pool)


class TestWireProvenance:
    def test_backend_and_bound_round_trip(self):
        from repro.service.protocol import ServedEstimate

        answer = ServedEstimate(
            selectivity=0.25,
            cardinality=1000.0,
            error=0.1,
            snapshot_version=3,
            latency_ms=1.5,
            backend="sample",
            error_bound=0.0625,
        )
        payload = answer.to_wire(request_id=7)
        assert payload["backend"] == "sample"
        assert payload["error_bound"] == 0.0625
        decoded = ServedEstimate.from_wire(payload)
        assert decoded.backend == "sample"
        assert decoded.error_bound == 0.0625

    def test_default_backend_stays_off_the_wire(self):
        """SIT answers keep the exact pre-plurality payload key set, so
        old clients (and the 400-pair parity goldens) see no new keys."""
        from repro.service.protocol import ServedEstimate

        answer = ServedEstimate(
            selectivity=0.25,
            cardinality=1000.0,
            error=0.1,
            snapshot_version=3,
            latency_ms=1.5,
        )
        payload = answer.to_wire()
        assert "backend" not in payload
        assert "error_bound" not in payload
        decoded = ServedEstimate.from_wire(payload)
        assert decoded.backend == "sit"
        assert decoded.error_bound is None

    def test_explain_json_emits_backend_conditionally(
        self, two_table_db, two_table_pool, parity_queries
    ):
        from repro.engine.expressions import Query

        query = Query(parity_queries[3])
        sit = backend_for("sit", two_table_db, two_table_pool).explain(query)
        assert "backend" not in sit.to_dict()
        sampled = backend_for("sample", two_table_db, two_table_pool).explain(
            query
        )
        payload = sampled.to_dict()
        assert payload["backend"] == "sample"
        assert payload["error_bound"] > 0.0
        assert "backend:     sample" in sampled.render_text()


class TestServiceRouting:
    def test_connect_selects_the_backend(self, two_table_db, two_table_pool):
        from repro.catalog import StatisticsCatalog
        from repro.service import connect

        catalog = StatisticsCatalog.from_pool(
            two_table_pool, database=two_table_db
        )
        sql = (
            "SELECT * FROM R, S WHERE R.x = S.y AND R.a BETWEEN 10 AND 40"
        )
        with connect(catalog, backend="sample") as client:
            answer = client.estimate(sql)
            assert answer.backend == "sample"
            assert answer.error_bound is not None

    def test_config_rejects_unknown_backend(self):
        from repro.service import ServiceConfig

        with pytest.raises(ValueError, match="backend"):
            ServiceConfig(backend="oracle")

    def test_config_round_trips_backend(self):
        from repro.service import ServiceConfig

        config = ServiceConfig(backend="bn")
        assert ServiceConfig.from_dict(config.to_dict()).backend == "bn"

    @pytest.mark.parametrize("backend", ["bn", "sample"])
    def test_cluster_tier_is_sit_only(self, backend):
        # shards attach a row-free stats snapshot; the peer backends
        # build their models from rows, so the combination must be
        # rejected at validation, not fail on every shard answer
        from repro.service import ClusterConfig, ServiceConfig

        with pytest.raises(ValueError, match="stats-only"):
            ServiceConfig(backend=backend, cluster=ClusterConfig(shards=2))
        assert ServiceConfig(
            backend="sit", cluster=ClusterConfig(shards=2)
        ).cluster is not None


class TestLadderFallback:
    def histogram_storm(self):
        from repro.resilience.faults import (
            POINT_HISTOGRAM_JOIN,
            FaultPlan,
            FaultRule,
        )

        return FaultPlan(
            [
                FaultRule(
                    point=POINT_HISTOGRAM_JOIN,
                    probability=1.0,
                    max_fires=None,
                    fault="histogram_corrupt",
                )
            ],
            seed=0,
        )

    def test_level3_degrades_to_the_sampling_backend(
        self, two_table_db, two_table_pool, parity_queries, parity_truth
    ):
        """With the factory-wired fallback, the ladder's last rung is a
        guaranteed sample, not the 1/3-1/10 magic constants."""
        from repro.resilience.faults import armed
        from repro.resilience.ladder import LEVEL_FALLBACK, magic_selectivity

        estimator = backend_for("sit", two_table_db, two_table_pool)
        assert isinstance(
            estimator.fallback_estimator, GuaranteedSampleEstimator
        )
        predicates = parity_queries[3]
        with armed(self.histogram_storm()):
            result = estimator.estimate_predicates(predicates)
        assert result.degradation_level == LEVEL_FALLBACK
        assert result.backend == "sample"
        assert result.error_bound is not None
        assert abs(result.selectivity - parity_truth[3]) <= result.error_bound
        assert result.selectivity != magic_selectivity(predicates)

    def test_bare_estimator_still_lands_on_magic_constants(
        self, two_table_db, two_table_pool, parity_queries
    ):
        """Without a wired fallback the pre-existing behaviour is
        untouched: level 3 answers with the magic constants."""
        from repro.resilience.faults import armed
        from repro.resilience.ladder import LEVEL_MAGIC, magic_selectivity

        estimator = SITEstimator(two_table_db, two_table_pool)
        assert estimator.fallback_estimator is None
        predicates = parity_queries[3]
        with armed(self.histogram_storm()):
            result = estimator.estimate_predicates(predicates)
        assert result.degradation_level == LEVEL_MAGIC
        assert result.backend == "magic"
        assert result.selectivity == magic_selectivity(predicates)
