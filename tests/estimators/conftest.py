"""Fixtures for the backend parity suite: one query workload shared by
every estimator backend, plus its exact truth."""

from __future__ import annotations

import pytest

from repro.core.predicates import FilterPredicate


@pytest.fixture(scope="session")
def parity_queries(two_table_attrs, two_table_join) -> list[frozenset]:
    """Filters, a join, and join+filter combinations on R ⋈ S — the
    predicate shapes every backend must answer."""
    ra, sb = two_table_attrs["Ra"], two_table_attrs["Sb"]
    return [
        frozenset({FilterPredicate(ra, 10.0, 40.0)}),
        frozenset({FilterPredicate(sb, 20.0, 60.0)}),
        frozenset({two_table_join}),
        frozenset({two_table_join, FilterPredicate(ra, 10.0, 40.0)}),
        frozenset({two_table_join, FilterPredicate(sb, 20.0, 60.0)}),
        frozenset(
            {
                two_table_join,
                FilterPredicate(ra, 0.0, 30.0),
                FilterPredicate(sb, 0.0, 50.0),
            }
        ),
    ]


@pytest.fixture(scope="session")
def parity_truth(two_table_executor, parity_queries) -> list[float]:
    return [two_table_executor.selectivity(q) for q in parity_queries]
