"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import SUBCOMMANDS, main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SIGMOD 2004" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "true cardinality" in out
        assert "GS-Diff" in out

    def test_estimate(self, capsys):
        sql = (
            "SELECT * FROM sales, customer "
            "WHERE sales.customer_id = customer.customer_id "
            "AND customer.age BETWEEN 20 AND 40"
        )
        assert main(["estimate", "--sql", sql, "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "GS-Diff" in out
        assert "true" in out

    def test_explain_text(self, capsys):
        sql = (
            "SELECT * FROM sales, customer "
            "WHERE sales.customer_id = customer.customer_id "
            "AND customer.age BETWEEN 20 AND 40"
        )
        assert main(["explain", sql, "--scale", "0.05", "--error", "diff"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ESTIMATE" in out
        assert "decomposition" in out
        assert "SIT(" in out

    def test_explain_json(self, capsys):
        import json

        sql = (
            "SELECT * FROM sales, customer "
            "WHERE sales.customer_id = customer.customer_id"
        )
        assert main(["explain", sql, "--scale", "0.05", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["estimator"] == "GS-Diff"
        assert payload["factors"]
        for factor in payload["factors"]:
            assert {"factor", "selectivity", "error_contribution"} <= set(factor)

    def test_explain_legacy_engine_and_nind(self, capsys):
        sql = (
            "SELECT * FROM sales, customer "
            "WHERE sales.customer_id = customer.customer_id"
        )
        command = ["explain", sql, "--scale", "0.05"]
        command += ["--engine", "legacy", "--error", "nind"]
        assert main(command) == 0
        out = capsys.readouterr().out
        assert "engine=legacy" in out
        assert "error=nInd" in out

    def test_explain_sql_flag_spelling(self, capsys):
        sql = (
            "SELECT * FROM sales, customer "
            "WHERE sales.customer_id = customer.customer_id"
        )
        assert main(["explain", "--sql", sql, "--scale", "0.05"]) == 0
        assert "EXPLAIN ESTIMATE" in capsys.readouterr().out

    def test_explain_requires_sql(self):
        with pytest.raises(SystemExit):
            main(["explain"])

    def test_figures_quick(self, capsys):
        assert (
            main(["figures", "--scale", "0.05", "--queries", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "J0" in out and "J3" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_estimate_requires_sql(self):
        with pytest.raises(SystemExit):
            main(["estimate"])


class TestSubcommandRegistry:
    def test_subcommand_set_is_pinned(self):
        assert set(SUBCOMMANDS) == {
            "info",
            "demo",
            "estimate",
            "explain",
            "figures",
            "catalog",
            "serve",
            "advisor",
        }
        for description in SUBCOMMANDS.values():
            assert description  # every entry carries a help line

    def test_top_level_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in SUBCOMMANDS:
            assert name in out

    @pytest.mark.parametrize("name", sorted(SUBCOMMANDS))
    def test_each_subcommand_has_help(self, name, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([name, "--help"])
        assert excinfo.value.code == 0
        assert "usage" in capsys.readouterr().out.lower()
