"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SIGMOD 2004" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "true cardinality" in out
        assert "GS-Diff" in out

    def test_estimate(self, capsys):
        sql = (
            "SELECT * FROM sales, customer "
            "WHERE sales.customer_id = customer.customer_id "
            "AND customer.age BETWEEN 20 AND 40"
        )
        assert main(["estimate", "--sql", sql, "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "GS-Diff" in out
        assert "true" in out

    def test_figures_quick(self, capsys):
        assert (
            main(["figures", "--scale", "0.05", "--queries", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "J0" in out and "J3" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_estimate_requires_sql(self):
        with pytest.raises(SystemExit):
            main(["estimate"])
