"""Workload-scale accuracy study on the synthetic snowflake database.

A miniature of the paper's Section 5 evaluation: generate a random SPJ
workload, build the ``J_i`` SIT pools, and compare noSit / GVM / GS-nInd /
GS-Diff across pools — the Figure 7 sweep as a table.

Run:  python examples/workload_accuracy.py            (small, ~1 minute)
      REPRO_SCALE=0.5 python examples/workload_accuracy.py   (bigger)
"""

import os

from repro.bench.harness import Harness
from repro.bench.reporting import render_figure7
from repro.estimators import make_gs_diff, make_gs_nind, make_nosit
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.15"))
    query_count = int(os.environ.get("REPRO_QUERIES", "6"))
    join_count = 3

    print(f"generating snowflake database (scale={scale}) ...")
    db = generate_snowflake(SnowflakeConfig(scale=scale, seed=42))
    generator = WorkloadGenerator(
        db, WorkloadConfig(join_count=join_count, filter_count=3, seed=1)
    )
    queries = generator.generate(query_count)
    print(f"workload: {query_count} queries, {join_count} joins + 3 filters each")

    print("building the J_3 SIT pool (every smaller pool is a restriction) ...")
    full_pool = build_workload_pool(SITBuilder(db), queries, max_joins=join_count)

    harness = Harness(db)
    by_pool = {}
    for limit in range(join_count + 1):
        pool = full_pool.restrict_joins(limit)
        print(f"  evaluating with pool J{limit} ({len(pool)} SITs) ...")
        by_pool[f"J{limit}"] = harness.evaluate(
            queries,
            pool,
            {
                "noSit": make_nosit,
                "GS-nInd": make_gs_nind,
                "GS-Diff": make_gs_diff,
            },
            max_subqueries=30,
        )

    print()
    print(
        render_figure7(
            by_pool, ["noSit", "GVM", "GS-nInd", "GS-Diff"], join_count
        )
    )


if __name__ == "__main__":
    main()
