"""The paper's motivating example (Figures 1 and 2) end to end.

Reproduces the Section 1 narrative on a skewed TPC-H-style database:

* expensive orders consist of many line-items (Zipfian skew), so the
  filter ``total_price > 100K`` interacts with ``lineitem ⋈ orders``;
* most customers live in the USA and busy customers are mostly American,
  so ``nation = 'USA'`` interacts with ``orders ⋈ customer``;
* a single SIT fixes one interaction (Figures 1(b)/1(c)); only the
  conditional-selectivity framework combines both (Figure 2); greedy view
  matching (GVM) cannot, because the two SITs are mutually exclusive from
  a view-matching perspective.

Run:  python examples/tpch_skew.py
"""

from repro import (
    Attribute,
    Executor,
    GreedyViewMatching,
    SITBuilder,
    SITPool,
    make_gs_diff,
    make_nosit,
)
from repro.workload.tpch import TPCHConfig, generate_tpch, motivating_query


def main() -> None:
    db = generate_tpch(TPCHConfig())
    query = motivating_query(db)
    executor = Executor(db)
    true = executor.cardinality(query.predicates)

    joins = sorted(query.joins, key=str)
    join_lo = next(j for j in joins if "lineitem" in str(j))
    join_oc = next(j for j in joins if "customer" in str(j))

    builder = SITBuilder(db)
    base = []
    for table in db.schema.tables.values():
        for attribute in table.attributes:
            base.append(builder.build_base(attribute))
    sit_lo = builder.build(Attribute("orders", "total_price"), frozenset({join_lo}))
    sit_oc = builder.build(Attribute("customer", "nation"), frozenset({join_oc}))

    print("database: mini TPC-H with Zipfian line-items and skewed nations")
    print(f"query:    {query}")
    print(f"true cardinality: {true:,}\n")
    print(f"available SITs:")
    print(f"  {sit_lo}  (diff={sit_lo.diff:.3f})")
    print(f"  {sit_oc}  (diff={sit_oc.diff:.3f})\n")

    header = f"{'technique':<34}{'estimate':>12}{'abs error':>12}"
    print(header)
    print("-" * len(header))

    def report(name: str, estimate: float) -> None:
        print(f"{name:<34}{estimate:>12,.0f}{abs(estimate - true):>12,.0f}")

    pool_none = SITPool(list(base))
    report("noSit (traditional)", make_nosit(db, pool_none).cardinality(query))

    pool_lo = SITPool(list(base) + [sit_lo])
    report("GS-Diff + SIT(LO) [Fig 1(b)]", make_gs_diff(db, pool_lo).cardinality(query))

    pool_oc = SITPool(list(base) + [sit_oc])
    report("GS-Diff + SIT(OC) [Fig 1(c)]", make_gs_diff(db, pool_oc).cardinality(query))

    pool_both = SITPool(list(base) + [sit_lo, sit_oc])
    report("GS-Diff + both SITs [Fig 2]", make_gs_diff(db, pool_both).cardinality(query))

    gvm = GreedyViewMatching(pool_both)
    size = db.cross_product_size(query.tables)
    report("GVM + both SITs (view matching)", gvm.estimate(query).selectivity * size)

    print(
        "\nGVM cannot combine the two SITs: their expressions share the\n"
        "orders table but neither contains the other, so no single\n"
        "rewritten plan exploits both — the Figure 1 vs Figure 2 gap."
    )


if __name__ == "__main__":
    main()
