"""Quickstart: statistics on query expressions in ~60 lines.

Builds a two-table database with a skewed foreign key, creates base
histograms plus one SIT, and shows how ``getSelectivity`` uses the SIT to
fix the classic independence-assumption underestimate.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Attribute,
    Database,
    Executor,
    FilterPredicate,
    JoinPredicate,
    Query,
    Schema,
    SITBuilder,
    SITPool,
    Table,
    TableSchema,
    make_gs_diff,
    make_nosit,
)


def build_database() -> Database:
    """orders(customer_id, amount) joining customer(id, vip).

    VIP customers place most orders AND their orders are large: the join
    and the filter on ``amount`` are correlated.
    """
    rng = np.random.default_rng(7)
    schema = Schema()
    schema.add_table(TableSchema("customer", ("id", "vip"), primary_key="id"))
    schema.add_table(TableSchema("orders", ("customer_id", "amount")))
    db = Database(schema)

    customers = 100
    vip = (np.arange(customers) < 10).astype(float)  # first 10 are VIPs
    db.add_table(
        Table(
            schema.table("customer"),
            {"id": np.arange(customers, dtype=float), "vip": vip},
        )
    )
    # VIPs get 50x the order volume, and VIP orders are 10x larger.
    weights = np.where(vip == 1.0, 50.0, 1.0)
    weights /= weights.sum()
    customer_id = rng.choice(customers, size=5000, p=weights).astype(float)
    amount = np.round(
        rng.lognormal(3.0, 0.4, 5000) * np.where(vip[customer_id.astype(int)] == 1, 10, 1)
    )
    db.add_table(
        Table(schema.table("orders"), {"customer_id": customer_id, "amount": amount})
    )
    return db


def main() -> None:
    db = build_database()
    executor = Executor(db)

    join = JoinPredicate(
        Attribute("orders", "customer_id"), Attribute("customer", "id")
    )
    vip_filter = FilterPredicate(Attribute("customer", "vip"), 1, 1)
    query = Query.of(join, vip_filter)
    true_cardinality = executor.cardinality(query.predicates)

    # Base statistics for every column...
    builder = SITBuilder(db)
    pool = SITPool()
    for table in db.schema.tables.values():
        for attribute in table.attributes:
            pool.add(builder.build_base(attribute))

    print(f"query: {query}")
    print(f"true cardinality:          {true_cardinality:>10,}")

    no_sit = make_nosit(db, pool)
    print(f"traditional optimizer:     {no_sit.cardinality(query):>10,.0f}")

    # ... plus one statistic on a query expression: the distribution of
    # customer.vip over the join result.
    sit = builder.build(Attribute("customer", "vip"), frozenset({join}))
    pool.add(sit)
    print(f"created {sit} with diff={sit.diff:.3f}")

    with_sit = make_gs_diff(db, pool)
    print(f"getSelectivity with SIT:   {with_sit.cardinality(query):>10,.0f}")


if __name__ == "__main__":
    main()
