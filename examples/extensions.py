"""Extensions beyond the paper's core: Group-By estimation & sampled SITs.

* **Group-By** (deferred to [3] in the paper): the number of groups of
  ``GROUP BY a`` over an SPJ query, estimated from the best-conditioned
  SIT for ``a`` plus Cardenas' correction.
* **Sample-based SITs** (the abstract's "other statistical estimators"):
  SITs built from a uniform sample of the expression result instead of a
  full scan, trading accuracy for construction cost.

Run:  python examples/extensions.py
"""

import numpy as np

from repro import Executor, Query, make_gs_diff
from repro.core.groupby import estimate_group_count
from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool
from repro.stats.sampling import SamplingSITBuilder
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake


def main() -> None:
    db = generate_snowflake(SnowflakeConfig(scale=0.3, seed=5))
    executor = Executor(db)

    join = JoinPredicate(
        Attribute("sales", "customer_id"), Attribute("customer", "customer_id")
    )
    price = db.column(Attribute("sales", "price"))
    cheap = FilterPredicate(
        Attribute("sales", "price"), 0, float(np.quantile(price, 0.3))
    )
    query = Query.of(join, cheap)
    group_attr = Attribute("customer", "nation_id")

    # --- Group-By estimation ------------------------------------------
    builder = SITBuilder(db)
    pool = build_workload_pool(builder, [query], max_joins=1)
    # Workload pools only cover attributes the queries mention; grouping
    # needs a statistic on the grouping attribute too.
    pool.add(builder.build_base(group_attr))
    pool.add(builder.build(group_attr, frozenset({join})))
    estimator = make_gs_diff(db, pool)

    result = executor.execute(query.predicates)
    values = result.column(group_attr)
    true_groups = len(np.unique(values[~np.isnan(values)]))
    estimate = estimate_group_count(estimator, query, group_attr)
    print(f"query: {query}")
    print(f"GROUP BY {group_attr}:")
    print(f"  true group count:      {true_groups}")
    print(f"  estimated group count: {estimate:.1f}\n")

    # --- Sampled SITs --------------------------------------------------
    true_card = executor.cardinality(query.predicates)
    print(f"cardinality estimation (true = {true_card:,}):")
    print(f"  exact-scan SITs:  {estimator.cardinality(query):>12,.0f}")
    for rate in (0.25, 0.05):
        sampled_builder = SamplingSITBuilder(
            db, sample_fraction=rate, min_sample_rows=100
        )
        sampled_pool = build_workload_pool(sampled_builder, [query], max_joins=1)
        sampled = make_gs_diff(db, sampled_pool)
        print(f"  {rate:>4.0%} sample SITs: {sampled.cardinality(query):>12,.0f}")


if __name__ == "__main__":
    main()
