"""Coupling getSelectivity with a Cascades-style optimizer (Section 4).

Explores a query into a memo, estimates every equivalence class with the
memo-coupled estimator, and shows how cardinality quality changes the
chosen execution plan: with base statistics only, the optimizer puts the
selective-looking (but actually non-selective) filter branch on the build
side; with SITs it re-orders the plan.

Run:  python examples/optimizer_integration.py
"""

from repro import Executor, SITBuilder, SITPool, make_gs_diff, make_nosit
from repro.core.errors import DiffError
from repro.optimizer import CostModel, MemoCoupledEstimator, explore
from repro.stats.pool import build_workload_pool
from repro.workload.tpch import generate_tpch, motivating_query


def main() -> None:
    db = generate_tpch()
    query = motivating_query(db)
    executor = Executor(db)
    true = executor.cardinality(query.predicates)

    print(f"query: {query}")
    exploration = explore(query)
    print(
        f"memo: {len(exploration.memo)} groups, "
        f"{exploration.memo.entry_count()} entries, "
        f"{exploration.rule_applications} rule applications\n"
    )

    builder = SITBuilder(db)
    pool = build_workload_pool(builder, [query], max_joins=2)
    print(f"SIT pool built from the query's expressions: {len(pool)} SITs\n")

    # Section 4.2: estimate every memo group through entry-induced
    # decompositions.
    coupled = MemoCoupledEstimator(db, pool, DiffError(pool))
    estimates = coupled.estimate_memo(exploration)
    root = estimates[exploration.root]
    size = db.cross_product_size(query.tables)
    print(f"memo-coupled estimate: {root.selectivity * size:,.0f}")
    print(f"full-DP estimate:      {make_gs_diff(db, pool).cardinality(query):,.0f}")
    print(f"true cardinality:      {true:,}\n")

    # Plan choice under each estimator.
    for name, factory in (("noSit", make_nosit), ("GS-Diff", make_gs_diff)):
        estimator = factory(db, pool)
        model = CostModel(
            db, lambda predicates: estimator.algorithm(predicates).selectivity
        )
        plan = model.best_plan(exploration.memo, exploration.root)
        print(f"best plan under {name} cardinalities "
              f"(estimated cost {plan.cost:,.0f}):")
        print(plan.render())
        print()


if __name__ == "__main__":
    main()
