"""Choosing which SITs to build: the workload-driven advisor.

The paper assumes a pool of SITs exists; this example shows the companion
decision — given a workload and a budget, which statistics on query
expressions are worth materializing?  The advisor ranks candidates by
``diff_H x applicability / cost`` and the example verifies the chosen few
capture most of the full pool's accuracy.

Run:  python examples/statistics_advisor.py
"""

from repro.bench.harness import Harness
from repro.estimators import make_gs_diff
from repro.stats.advisor import AdvisorConfig, SITAdvisor
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake


def main() -> None:
    db = generate_snowflake(SnowflakeConfig(scale=0.2, seed=9))
    generator = WorkloadGenerator(
        db, WorkloadConfig(join_count=3, filter_count=3, seed=2)
    )
    queries = generator.generate(6)
    builder = SITBuilder(db)
    harness = Harness(db)

    advisor = SITAdvisor(builder, AdvisorConfig(max_sits=8, max_joins=2))
    recommendations = advisor.recommend(queries)
    print("top recommended SITs for the workload:")
    for recommendation in recommendations:
        print(f"  {recommendation}")

    def mean_error(pool):
        evaluation = harness.evaluate(
            queries,
            pool,
            {"GS-Diff": make_gs_diff},
            include_gvm=False,
            max_subqueries=30,
        )
        return evaluation.report("GS-Diff").mean_absolute_error

    print("\nGS-Diff mean absolute error over all sub-queries (paper metric):")
    base_pool = build_workload_pool(builder, queries, max_joins=0)
    print(f"  base histograms only:   {mean_error(base_pool):>8.1f}")
    advisor_pool = advisor.build_pool(queries)
    print(
        f"  advisor pool ({len(recommendations):>2} SITs): {mean_error(advisor_pool):>8.1f}"
    )
    full_pool = build_workload_pool(builder, queries, max_joins=2)
    conditioned = sum(1 for s in full_pool if not s.is_base)
    print(f"  full J2 pool ({conditioned:>3} SITs): {mean_error(full_pool):>8.1f}")


if __name__ == "__main__":
    main()
