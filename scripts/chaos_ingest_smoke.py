"""CI chaos smoke for streaming ingestion under a write storm.

Drives a continuous table-update storm through the
:class:`~repro.ingest.IngestPipeline` while 100 queries flow through the
TCP front-end, with a seeded :class:`~repro.resilience.faults.FaultPlan`
firing at the three storm injection points (``ingest_apply``,
``refresh_during_storm``, ``swap_under_write``).  The acceptance bar:

* **zero client-visible errors** — every one of the 100 TCP queries
  returns a well-formed :class:`~repro.service.protocol.ServedEstimate`;
  ingest faults retry/requeue on the apply path, refresh faults roll the
  refresh back, neither ever reaches a client;
* **staleness is reported** — answers carry ``staleness_s`` provenance
  and the ``ingest`` stats namespace surfaces the staleness gauges over
  the wire;
* **clean drain** — the pipeline quiesces (every acked write applied),
  the service drains and closes clean;
* **bit-identical once quiesced** — after the storm settles and one
  quiet refresh catches the catalog up, estimates match the pre-storm
  baseline exactly;
* **swap-under-write never wedges** — a cluster hot swap faulted
  mid-fan-out ejects the member instead of serving a version-straddling
  answer, with zero client-visible errors.

Exits non-zero on any violation::

    PYTHONPATH=src python scripts/chaos_ingest_smoke.py

The ``__main__`` guard is load-bearing: the cluster section spawns
shard processes via the ``spawn`` method, which re-imports this file.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.catalog import EstimationSession, StatisticsCatalog
from repro.catalog.catalog import RefreshConflict
from repro.cluster import EstimationCluster
from repro.engine.executor import Executor
from repro.ingest import (
    EstimateDriftProbe,
    IngestConfig,
    IngestOverloaded,
    IngestPipeline,
)
from repro.obs import StalenessTracker
from repro.resilience.faults import FaultPlan, FaultRule, armed
from repro.service import (
    ClusterConfig,
    EstimationService,
    ServiceConfig,
    connect,
)
from repro.service.protocol import ServedEstimate
from repro.service.server import start_in_thread
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

QUERY_COUNT = 100
STORM_EVENTS = 400
WALL_CLOCK_BUDGET_S = 300.0
SQL_TEMPLATE = (
    "SELECT * FROM sales, customer "
    "WHERE sales.customer_id = customer.customer_id "
    "AND customer.age BETWEEN {low} AND {high}"
)


def build_catalog() -> StatisticsCatalog:
    database = generate_snowflake(SnowflakeConfig(scale=0.05, seed=11))
    queries = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=11)
    ).generate(2)
    catalog = StatisticsCatalog.build(database, queries, max_joins=1)
    present = {sit.attribute for sit in catalog if sit.is_base}
    for table in database.schema.tables.values():
        for attribute in table.attributes:
            if attribute not in present:
                catalog.add(catalog.builder.build_base(attribute))
    return catalog


def storm_plan() -> FaultPlan:
    """Deterministic faults at the storm points: three apply faults
    (retried, then requeued — never dropped) and two mid-rebuild
    refresh faults (refresh aborts with nothing published)."""
    return FaultPlan(
        [
            FaultRule(point="ingest_apply", probability=1.0, max_fires=3),
            FaultRule(
                point="refresh_during_storm", probability=1.0, max_fires=2
            ),
        ],
        seed=2004,
    )


def queries() -> list[str]:
    return [
        SQL_TEMPLATE.format(low=18 + (i % 23), high=18 + (i % 23) + 20)
        for i in range(QUERY_COUNT)
    ]


def smoke_ingest_storm(catalog: StatisticsCatalog) -> None:
    """Storm + chaos + 100 TCP queries; quiesce; bit-identical gate."""
    config = ServiceConfig(workers=2, queue_depth=64, batch_window_s=0.002)
    sample = queries()[:10]
    started = time.monotonic()

    # pre-storm baseline off a clean serve
    with EstimationService(catalog, config=config) as service:
        baseline = [service.estimate(sql, timeout=None) for sql in sample]

    tracker = StalenessTracker()
    probe_queries = [
        frozenset(query.predicates)
        for query in WorkloadGenerator(
            catalog.database,
            WorkloadConfig(join_count=2, filter_count=2, seed=11),
        ).generate(2)
    ]
    probe_session = EstimationSession(catalog)
    executor = Executor(catalog.database)
    drift_probe = EstimateDriftProbe(
        estimate=probe_session.selectivity,
        truth=executor.selectivity,
        queries=probe_queries,
    )

    tables = sorted(catalog.database.tables)
    plan = storm_plan()
    shed = refresh_aborts = 0
    errors: list[BaseException] = []
    with armed(plan):
        service = EstimationService(catalog, config=config)
        service.attach_staleness(tracker)
        pipeline = IngestPipeline(
            catalog,
            config=IngestConfig(queue_depth=256, drift_every=3),
            tracker=tracker,
            drift_probe=drift_probe,
        )
        storm_done = threading.Event()

        def storm() -> None:
            nonlocal shed
            try:
                for index in range(STORM_EVENTS):
                    try:
                        pipeline.submit(tables[index % len(tables)])
                    except IngestOverloaded:
                        shed += 1  # typed backpressure, not an error
                    if index % 25 == 0:
                        time.sleep(0.001)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                storm_done.set()

        def refresher() -> None:
            nonlocal refresh_aborts
            for _ in range(6):
                try:
                    catalog.refresh()
                except (RefreshConflict, Exception):
                    # injected mid-rebuild fault or membership race:
                    # rolled back, nothing published — count and retry
                    refresh_aborts += 1
                if storm_done.wait(timeout=0.02):
                    break

        workers = [
            threading.Thread(target=storm, name="storm"),
            threading.Thread(target=refresher, name="refresher"),
        ]
        for worker in workers:
            worker.start()

        answers: list[ServedEstimate] = []
        with start_in_thread(service, port=0) as handle:
            with connect(handle.address, timeout_s=60.0) as client:
                for sql in queries():
                    answer = client.estimate(sql)  # zero-error bar:
                    assert isinstance(answer, ServedEstimate), answer
                    assert 0.0 <= answer.selectivity <= 1.0, answer
                    answers.append(answer)
                for worker in workers:
                    worker.join(timeout=60.0)
                    assert not worker.is_alive(), worker.name
                assert pipeline.quiesce(timeout=60.0), "pipeline never drained"
                stats = client.stats()
            clean = handle.close()
        pipeline.close()

    assert not errors, errors
    assert clean, "drain/shutdown under the storm was not clean"
    assert tracker.quiesced(), "acked writes left unapplied"
    elapsed = time.monotonic() - started
    assert elapsed < WALL_CLOCK_BUDGET_S, f"possible deadlock: {elapsed:.0f}s"

    # the seeded plan really exercised the storm points
    fired = plan.stats()
    assert any(key.startswith("ingest_apply.") for key in fired), fired
    assert any(
        key.startswith("refresh_during_storm.") for key in fired
    ), fired

    # staleness provenance: on answers and over the stats wire
    stamped = [a for a in answers if a.staleness_s is not None]
    assert stamped, "no answer carried staleness provenance"
    ingest_stats = stats.get("ingest", {})
    assert "staleness_s_max" in ingest_stats, stats
    snapshot = pipeline.stats_snapshot().ingest
    assert snapshot["events"] + float(shed) == float(STORM_EVENTS)
    assert snapshot["events_applied"] == snapshot["events"]
    assert snapshot["epochs_applied"] < snapshot["events_applied"], (
        "storm did not coalesce"
    )
    assert snapshot["apply_faults"] == 3.0, snapshot
    assert snapshot.get("drift_probes", 0.0) >= 1.0, snapshot

    # quiesced + one quiet refresh -> nothing stale, bit-identical
    catalog.refresh()
    assert catalog.stale_sits() == []
    with EstimationService(catalog, config=config) as settled_service:
        settled = [
            settled_service.estimate(sql, timeout=None) for sql in sample
        ]
    for before, after in zip(baseline, settled):
        assert after.selectivity == before.selectivity, (before, after)
        assert after.cardinality == before.cardinality, (before, after)

    print(
        f"ingest storm: {len(answers)} served, {shed} shed, "
        f"{refresh_aborts} refresh aborts, "
        f"{snapshot['events_applied']:.0f} events in "
        f"{snapshot['epochs_applied']:.0f} epochs "
        f"(ratio {snapshot['coalesce_ratio']:.1f}), "
        f"{len(stamped)} stamped answers, "
        f"{snapshot['drift_probes']:.0f} drift probes, "
        f"plan fired {fired} in {elapsed:.1f}s"
    )


def smoke_swap_under_write(catalog: StatisticsCatalog) -> None:
    """A faulted cluster hot swap ejects the member — never a
    version-straddling answer, never a wedge, zero client errors."""
    workload = WorkloadGenerator(
        catalog.database, WorkloadConfig(join_count=2, filter_count=2, seed=11)
    ).generate(4)
    plan = FaultPlan(
        [
            FaultRule(
                point="swap_under_write",
                probability=1.0,
                max_fires=1,
                match="member=0",
            )
        ],
        seed=7,
    )
    config = ServiceConfig(cluster=ClusterConfig(shards=2, replicas=0))
    with EstimationCluster(catalog, config=config) as cluster:
        for query in workload:
            cluster.estimate(query, timeout=30.0)
        with armed(plan):
            for table in ("sales", "customer", "product"):
                cluster.notify_table_update(table)
        version = catalog.version
        answers = [
            cluster.estimate(query, timeout=30.0)
            for query in workload * 5
        ]
        assert {answer.snapshot_version for answer in answers} == {
            version
        }, "a version-straddling answer escaped the faulted swap"
        stats = cluster.stats_snapshot().cluster
        assert plan.total_fires == 1, plan.stats()
        assert stats["swap_faults"] == 1.0, stats
        assert stats["ejections"] >= 1.0, stats
        clean = cluster.close()
    assert clean, "cluster drain after the faulted swap was not clean"
    print(
        f"swap under write: {len(answers)} answers at v{version}, "
        f"1 member ejected, clean close"
    )


def main() -> int:
    catalog = build_catalog()
    print(f"catalog: {len(catalog)} SITs")
    smoke_ingest_storm(catalog)
    smoke_swap_under_write(catalog)
    print("chaos ingest smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
