"""CI chaos smoke for the resilience subsystem.

Arms a seeded mixed :class:`~repro.resilience.faults.FaultPlan` (three
fault kinds: SIT unavailability, histogram corruption, worker crashes),
drives 100 queries through the TCP front-end and asserts the issue's
acceptance bar:

* every request receives a *typed* response — a (possibly degraded)
  :class:`~repro.service.protocol.ServedEstimate`, a typed shed
  (:class:`Overloaded`) or a typed :class:`ServiceError` — never a hang
  and never an untyped crash;
* degradation levels show up in the ``resilience`` snapshot namespace;
* shutdown drains cleanly with the plan still armed;
* a zero-fault armed run stays bit-identical to the disarmed estimates
  (the <=5% overhead half of the gate lives in ``repro.bench.perf``).

Exits non-zero on any violation::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import sys
import time

from repro.catalog import StatisticsCatalog
from repro.resilience.faults import FaultPlan, FaultRule, armed
from repro.service import (
    HealingConfig,
    EstimationService,
    Overloaded,
    ServiceConfig,
    ServiceError,
    connect,
)
from repro.service.protocol import ServedEstimate
from repro.service.server import start_in_thread
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

QUERY_COUNT = 100
WALL_CLOCK_BUDGET_S = 300.0
SQL_TEMPLATE = (
    "SELECT * FROM sales, customer "
    "WHERE sales.customer_id = customer.customer_id "
    "AND customer.age BETWEEN {low} AND {high}"
)


def build_catalog() -> StatisticsCatalog:
    database = generate_snowflake(SnowflakeConfig(scale=0.05, seed=11))
    queries = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=11)
    ).generate(2)
    catalog = StatisticsCatalog.build(database, queries, max_joins=1)
    present = {sit.attribute for sit in catalog if sit.is_base}
    for table in database.schema.tables.values():
        for attribute in table.attributes:
            if attribute not in present:
                catalog.add(catalog.builder.build_base(attribute))
    return catalog


def mixed_plan() -> FaultPlan:
    """Three fault kinds active at three injection points, seeded."""
    return FaultPlan(
        [
            FaultRule(
                point="sit_match",
                fault="sit_unavailable",
                probability=0.15,
                max_fires=None,
            ),
            FaultRule(
                point="histogram_join",
                fault="histogram_corrupt",
                probability=0.03,
                max_fires=None,
            ),
            FaultRule(
                point="worker_batch",
                fault="worker_crash",
                probability=0.03,
                max_fires=None,
            ),
        ],
        seed=2004,
    )


def queries() -> list[str]:
    return [
        SQL_TEMPLATE.format(low=18 + (i % 23), high=18 + (i % 23) + 20)
        for i in range(QUERY_COUNT)
    ]


def smoke_chaos(catalog: StatisticsCatalog) -> None:
    """100 queries under the mixed plan; 100 typed answers; clean drain."""
    config = ServiceConfig(
        workers=2,
        queue_depth=32,
        batch_window_s=0.002,
        healing=HealingConfig(
            requeue_limit=2,
            breaker_threshold=1_000,  # crashes are version-independent here
            max_worker_restarts=200,
        ),
    )
    plan = mixed_plan()
    started = time.monotonic()
    served = degraded = shed = failed = 0
    with armed(plan):
        service = EstimationService(catalog, config=config)
        with start_in_thread(service, port=0) as handle:
            host, port = handle.address
            with connect((host, port), timeout_s=60.0) as client:
                for sql in queries():
                    try:
                        answer = client.estimate(sql)
                    except Overloaded:
                        shed += 1
                        continue
                    except ServiceError as exc:
                        assert str(exc), "untyped empty failure"
                        failed += 1
                        continue
                    assert isinstance(answer, ServedEstimate), answer
                    assert 0.0 <= answer.selectivity <= 1.0, answer
                    served += 1
                    if answer.degradation_level:
                        degraded += 1
                        assert answer.excluded_sits or (
                            answer.degradation_level >= 2
                        ), answer
                stats = client.stats()
            clean = handle.close()

    elapsed = time.monotonic() - started
    answered = served + shed + failed
    assert answered == QUERY_COUNT, f"{answered}/{QUERY_COUNT} typed answers"
    assert clean, "drain/shutdown under chaos was not clean"
    assert service.closed
    assert elapsed < WALL_CLOCK_BUDGET_S, f"possible deadlock: {elapsed:.0f}s"
    assert plan.total_fires > 0, "the chaos plan never fired"
    fired_kinds = {key.split(".", 1)[1] for key in plan.stats()}
    assert len(fired_kinds) >= 2, f"too few fault kinds fired: {fired_kinds}"

    resilience = stats.get("resilience", {})
    if degraded:
        level_keys = [
            key for key in resilience if key.startswith("degraded_level")
        ]
        assert level_keys, f"no degradation levels in snapshot: {resilience}"
    crash_count = resilience.get("worker_crashes", 0)
    print(
        f"chaos smoke: {served} served ({degraded} degraded), "
        f"{shed} shed, {failed} typed failures, "
        f"{crash_count:.0f} worker crashes, "
        f"plan fired {plan.stats()} in {elapsed:.1f}s"
    )


def smoke_zero_fault_parity(catalog: StatisticsCatalog) -> None:
    """An armed-but-silent plan must not perturb a single bit."""
    config = ServiceConfig(workers=1, queue_depth=64, batch_window_s=0.002)
    sample = queries()[:10]
    with EstimationService(catalog, config=config) as service:
        baseline = [service.estimate(sql, timeout=None) for sql in sample]
        silent = FaultPlan(
            [FaultRule(point="sit_match", after=10**9, max_fires=None)],
            seed=0,
        )
        with armed(silent):
            under_plan = [
                service.estimate(sql, timeout=None) for sql in sample
            ]
        assert silent.total_fires == 0
    for before, after in zip(baseline, under_plan):
        assert after.selectivity == before.selectivity, (before, after)
        assert after.cardinality == before.cardinality, (before, after)
        assert after.degradation_level == 0, after
    print(f"zero-fault parity: {len(sample)} queries bit-identical")


def main() -> int:
    catalog = build_catalog()
    print(f"catalog: {len(catalog)} SITs")
    smoke_chaos(catalog)
    smoke_zero_fault_parity(catalog)
    print("chaos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
