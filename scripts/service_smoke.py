"""CI smoke for the estimation-serving subsystem.

Starts the JSON-lines server on an ephemeral port, drives 50 queries
through ``repro.service.connect``, forces load shedding against a
depth-1 queue, and asserts a clean drain/shutdown.  Exits non-zero on
any violation::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import sys

from repro.catalog import StatisticsCatalog
from repro.service import (
    EstimationService,
    Overloaded,
    ServiceConfig,
    connect,
)
from repro.service.server import start_in_thread
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

QUERY_COUNT = 50
SQL_TEMPLATE = (
    "SELECT * FROM sales, customer "
    "WHERE sales.customer_id = customer.customer_id "
    "AND customer.age BETWEEN {low} AND {high}"
)


def build_catalog() -> StatisticsCatalog:
    database = generate_snowflake(SnowflakeConfig(scale=0.05, seed=11))
    queries = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=11)
    ).generate(2)
    catalog = StatisticsCatalog.build(database, queries, max_joins=1)
    # base histograms for every schema attribute, so ad-hoc SQL filters
    # outside the build workload stay answerable (mirrors `repro serve`)
    present = {sit.attribute for sit in catalog if sit.is_base}
    for table in database.schema.tables.values():
        for attribute in table.attributes:
            if attribute not in present:
                catalog.add(catalog.builder.build_base(attribute))
    return catalog


def smoke_tcp(catalog: StatisticsCatalog) -> None:
    """50 queries through the TCP front-end; every answer well-formed."""
    service = EstimationService(
        catalog,
        config=ServiceConfig(workers=2, queue_depth=256, batch_window_s=0.002),
    )
    with start_in_thread(service, port=0) as handle:
        host, port = handle.address
        with connect((host, port)) as client:
            assert client.ping(), "server did not answer ping"
            versions = set()
            for index in range(QUERY_COUNT):
                low = 18 + (index % 10)
                sql = SQL_TEMPLATE.format(low=low, high=low + 25)
                answer = client.estimate(sql)
                assert 0.0 <= answer.selectivity <= 1.0, answer
                assert answer.cardinality >= 0.0, answer
                versions.add(answer.snapshot_version)
            stats = client.stats()
            served = stats["service"]["served"]
            assert served >= QUERY_COUNT, f"served {served} < {QUERY_COUNT}"
        clean = handle.close()
    assert clean, "drain/shutdown was not clean"
    assert service.closed
    print(f"tcp smoke: {QUERY_COUNT} queries ok, versions={sorted(versions)}")


def smoke_shed(catalog: StatisticsCatalog) -> None:
    """A burst against a depth-1 queue must shed with typed Overloaded —
    and everything admitted must still be answered."""
    config = ServiceConfig(workers=1, queue_depth=1, batch_window_s=0.0)
    query = SQL_TEMPLATE.format(low=20, high=40)
    with EstimationService(catalog, config=config) as service:
        shed = 0
        futures = []
        for attempt in range(5):  # retry bursts until the queue fills
            for _ in range(200):
                try:
                    futures.append(service.submit(query))
                except Overloaded:
                    shed += 1
            if shed:
                break
        for future in futures:
            answer = future.result(timeout=60.0)
            assert 0.0 <= answer.selectivity <= 1.0, answer
        clean = service.close()
    assert shed > 0, "burst against depth-1 queue never shed"
    assert clean, "drain after shedding was not clean"
    print(f"shed smoke: admitted {len(futures)}, shed {shed}, clean drain")


def main() -> int:
    catalog = build_catalog()
    print(f"catalog: {len(catalog)} SITs")
    smoke_tcp(catalog)
    smoke_shed(catalog)
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
