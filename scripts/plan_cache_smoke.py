"""CI smoke for the compiled-plan cache behind the TCP front-end.

Drives a *templated* workload — a handful of SQL shapes, each
instantiated with many fresh constants — through
:class:`~repro.service.EstimationService` and asserts the steady-state
contract the plan cache promises production:

* the session-level ``plan_cache`` :class:`~repro.obs.snapshot.
  StatsSnapshot` namespace reports a hit rate above 80% (each shape
  compiles once; every other instantiation replays);
* every response is a full-fidelity level-0 estimate and repeating an
  identical request returns the bit-identical selectivity (replay
  determinism end to end);
* a ``notify_table_update`` mid-stream is survived: the very next
  request recompiles instead of serving the stale plan, and the hit
  rate recovers;
* shutdown drains cleanly with the cache enabled.

Exits non-zero on any violation::

    PYTHONPATH=src python scripts/plan_cache_smoke.py
"""

from __future__ import annotations

import sys
import time

from repro.catalog import StatisticsCatalog
from repro.service import EstimationService, ServiceConfig, connect
from repro.service.protocol import ServedEstimate
from repro.service.server import start_in_thread
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

#: instantiations per template (constants vary, the shape never does)
VARIANTS = 40
HIT_RATE_BAR = 0.80
WALL_CLOCK_BUDGET_S = 300.0

#: three shapes over the snowflake star: numeric constants sort ahead of
#: the join token, so varying them never permutes the predicate order —
#: every instantiation of a template lands on one fingerprint
TEMPLATES = (
    "SELECT * FROM sales, customer "
    "WHERE sales.customer_id = customer.customer_id "
    "AND customer.age BETWEEN {low} AND {high}",
    "SELECT * FROM sales, customer "
    "WHERE sales.customer_id = customer.customer_id "
    "AND customer.income BETWEEN {low} AND {high}",
    "SELECT * FROM sales, product "
    "WHERE sales.product_id = product.product_id "
    "AND product.weight BETWEEN {low} AND {high}",
)


def build_catalog() -> StatisticsCatalog:
    database = generate_snowflake(SnowflakeConfig(scale=0.05, seed=11))
    queries = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=11)
    ).generate(2)
    catalog = StatisticsCatalog.build(database, queries, max_joins=1)
    present = {sit.attribute for sit in catalog if sit.is_base}
    for table in database.schema.tables.values():
        for attribute in table.attributes:
            if attribute not in present:
                catalog.add(catalog.builder.build_base(attribute))
    return catalog


def workload() -> list[str]:
    return [
        template.format(low=5 + 3 * i, high=5 + 3 * i + 25)
        for i in range(VARIANTS)
        for template in TEMPLATES
    ]


def main() -> int:
    catalog = build_catalog()
    print(f"catalog: {len(catalog)} SITs")
    config = ServiceConfig(workers=2, queue_depth=64, batch_window_s=0.002)
    started = time.monotonic()
    service = EstimationService(catalog, config=config)
    with start_in_thread(service, port=0) as handle:
        host, port = handle.address
        with connect((host, port), timeout_s=60.0) as client:
            answers: dict[str, ServedEstimate] = {}
            for sql in workload():
                answer = client.estimate(sql)
                assert isinstance(answer, ServedEstimate), answer
                assert answer.degradation_level == 0, answer
                assert 0.0 <= answer.selectivity <= 1.0, answer
                answers[sql] = answer

            # replay determinism end to end: repeating a request must
            # return the bit-identical selectivity (and hit the cache)
            for sql in list(answers)[:: len(answers) // 6 or 1]:
                again = client.estimate(sql)
                assert again.selectivity == answers[sql].selectivity, sql
                assert again.plan_cache_hit, sql

            stats = client.stats()
            block = stats.get("plan_cache", {})
            assert block, f"no plan_cache namespace in stats: {sorted(stats)}"
            hit_rate = block.get("hit_rate", 0.0)
            assert hit_rate > HIT_RATE_BAR, (
                f"plan-cache hit rate {hit_rate:.3f} <= {HIT_RATE_BAR}: {block}"
            )
            assert block.get("plans", 0) >= len(TEMPLATES), block
            print(
                f"steady state: {len(answers)} unique requests, "
                f"hit rate {hit_rate:.3f}, "
                f"{block.get('plans', 0):.0f} plans "
                f"({block.get('compiles', 0):.0f} compiles, "
                f"{block.get('bytes', 0):.0f} bytes)"
            )

            # coherence mid-stream: an update must force a recompile, not
            # serve the stale plan — then steady state resumes.  Every
            # worker owns a session (and cache), so each needs one miss
            # to recompile before the probe is guaranteed to hit.
            catalog.notify_table_update("customer")
            probe = TEMPLATES[0].format(low=5, high=30)
            first = client.estimate(probe)
            assert not first.plan_cache_hit, "stale plan served after update"
            recompiles = 1
            for _ in range(4 * config.workers):
                if client.estimate(probe).plan_cache_hit:
                    break
                recompiles += 1
            else:
                raise AssertionError("cache never refilled after the update")
            assert recompiles <= config.workers, (
                f"{recompiles} recompiles for {config.workers} workers"
            )
            # post-update telemetry: the namespace reflects the recompile
            # (workers either evict in place or retire the whole session,
            # so the observable invariant is a fresh miss + compile, never
            # a served stale hit)
            after = client.stats().get("plan_cache", {})
            assert after.get("misses", 0) >= 1, after
            assert after.get("compiles", 0) >= 1, after
            print(
                f"coherence: update forced {recompiles} per-worker "
                f"recompiles (pool_version "
                f"{after.get('pool_version', 0):.0f}), steady state resumed"
            )
        clean = handle.close()

    elapsed = time.monotonic() - started
    assert clean, "drain/shutdown with the plan cache enabled was not clean"
    assert service.closed
    assert elapsed < WALL_CLOCK_BUDGET_S, f"possible hang: {elapsed:.0f}s"
    print(f"plan-cache smoke: OK in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
