"""CI smoke for the multi-process estimation cluster.

Spawns a 3-shard + 1-replica :class:`~repro.cluster.EstimationCluster`
over one shared-memory snapshot, serves it through the stock TCP
front-end, and exercises the full lifecycle:

* 100 routed queries, every answer bit-identical to a single
  :class:`~repro.catalog.EstimationSession` over the same catalog;
* one hot swap mid-stream (``notify_table_update``): answers after the
  swap carry the new snapshot version on every shard;
* one forced shard crash: the breaker ejects it, its keyspace spills to
  the ring successors with zero client-visible errors, and the shard is
  respawned, caught up, and rejoined;
* a clean drain/close — no leaked processes, no leaked shared memory.

Exits non-zero on any violation::

    PYTHONPATH=src python scripts/cluster_smoke.py

The ``__main__`` guard is load-bearing: shard processes start via the
``spawn`` method, which re-imports this file.
"""

from __future__ import annotations

import sys
import time

from repro.catalog import EstimationSession, StatisticsCatalog
from repro.cluster import EstimationCluster
from repro.service import ClusterConfig, ServiceConfig, connect
from repro.service.server import start_in_thread
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

QUERY_COUNT = 100


def build_catalog() -> StatisticsCatalog:
    database = generate_snowflake(SnowflakeConfig(scale=0.05, seed=11))
    queries = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=11)
    ).generate(4)
    return StatisticsCatalog.build(database, queries, max_joins=1)


def build_workload(catalog: StatisticsCatalog) -> list:
    database = catalog.database
    generator = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=11)
    )
    distinct = generator.generate(4)
    return [distinct[index % len(distinct)] for index in range(QUERY_COUNT)]


def wait_until(predicate, timeout_s: float = 60.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def main() -> int:
    catalog = build_catalog()
    workload = build_workload(catalog)
    reference = EstimationSession(catalog, database=catalog.database)
    expected = [reference.estimate(query) for query in workload]
    print(f"catalog: {len(catalog)} SITs, workload: {len(workload)} queries")

    config = ServiceConfig(
        cluster=ClusterConfig(
            shards=3, replicas=1, breaker_threshold=1, shard_workers=1
        )
    )
    cluster = EstimationCluster(catalog, config=config)
    try:
        with start_in_thread(cluster, port=0) as handle:
            with connect(handle.address) as client:
                # -- routed parity --------------------------------------
                answers = client.estimate_batch(workload, timeout=120.0)
                shards_seen = set()
                for answer, want in zip(answers, expected):
                    assert answer.selectivity == want.selectivity, (
                        answer,
                        want,
                    )
                    assert answer.error == want.error
                    shards_seen.add(answer.shard)
                assert len(shards_seen) >= 2, (
                    f"workload never spread across shards: {shards_seen}"
                )
                print(
                    f"parity: {len(answers)} bit-identical answers "
                    f"across shards {sorted(shards_seen)}"
                )

                # -- hot swap mid-stream --------------------------------
                before = catalog.version
                cluster.notify_table_update("customer")
                after = catalog.version
                assert after == before + 1
                swapped = client.estimate_batch(workload[:30], timeout=120.0)
                for answer, want in zip(swapped, expected):
                    assert answer.selectivity == want.selectivity
                    assert answer.snapshot_version == after, answer
                print(f"hot swap: version {before} -> {after}, coherent")

                # -- crash, eject, spill, revive ------------------------
                cluster.inject_crash(0)
                spilled = client.estimate_batch(workload[:30], timeout=120.0)
                for answer, want in zip(spilled, expected):
                    assert answer.selectivity == want.selectivity

                def counter(name: str) -> float:
                    return cluster.stats_snapshot().cluster.get(name, 0.0)

                assert wait_until(lambda: counter("ejections") >= 1.0), (
                    "crashed shard was never ejected"
                )
                assert wait_until(lambda: counter("rejoins") >= 1.0), (
                    "ejected shard never rejoined the ring"
                )
                revived = client.estimate_batch(workload, timeout=120.0)
                for answer, want in zip(revived, expected):
                    assert answer.selectivity == want.selectivity
                    assert answer.snapshot_version == after, answer
                print(
                    f"chaos: ejections={counter('ejections'):.0f}, "
                    f"rejoins={counter('rejoins'):.0f}, "
                    "parity held at the post-swap version"
                )
    finally:
        clean = cluster.close()
    assert clean, "cluster drain/close was not clean"
    print("cluster smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
