"""CI smoke for estimator plurality: every backend served over TCP.

For each backend in :data:`repro.estimators.BACKENDS`, starts the
JSON-lines server with ``ServiceConfig(backend=...)`` on an ephemeral
port, drives 50 queries through ``repro.service.connect``, checks every
answer is well-formed and carries the right ``backend`` provenance (and,
for the sampling backend, a positive ``error_bound``), and asserts a
clean drain/shutdown.  Exits non-zero on any violation::

    PYTHONPATH=src python scripts/estimator_smoke.py
"""

from __future__ import annotations

import sys

from repro.catalog import StatisticsCatalog
from repro.estimators import BACKENDS
from repro.service import EstimationService, ServiceConfig, connect
from repro.service.server import start_in_thread
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

QUERY_COUNT = 50
SQL_TEMPLATE = (
    "SELECT * FROM sales, customer "
    "WHERE sales.customer_id = customer.customer_id "
    "AND customer.age BETWEEN {low} AND {high}"
)


def build_catalog() -> StatisticsCatalog:
    database = generate_snowflake(SnowflakeConfig(scale=0.05, seed=11))
    queries = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=11)
    ).generate(2)
    catalog = StatisticsCatalog.build(database, queries, max_joins=1)
    present = {sit.attribute for sit in catalog if sit.is_base}
    for table in database.schema.tables.values():
        for attribute in table.attributes:
            if attribute not in present:
                catalog.add(catalog.builder.build_base(attribute))
    return catalog


def smoke_backend(catalog: StatisticsCatalog, backend: str) -> None:
    """50 queries through the TCP front-end against one backend."""
    service = EstimationService(
        catalog,
        config=ServiceConfig(
            workers=2, queue_depth=256, batch_window_s=0.002, backend=backend
        ),
    )
    with start_in_thread(service, port=0) as handle:
        host, port = handle.address
        with connect((host, port)) as client:
            assert client.ping(), "server did not answer ping"
            for index in range(QUERY_COUNT):
                low = 18 + (index % 10)
                sql = SQL_TEMPLATE.format(low=low, high=low + 25)
                answer = client.estimate(sql)
                assert 0.0 <= answer.selectivity <= 1.0, answer
                assert answer.cardinality >= 0.0, answer
                assert answer.backend == backend, (
                    f"expected backend {backend!r}, got {answer.backend!r}"
                )
                if backend == "sample":
                    assert (
                        answer.error_bound is not None
                        and answer.error_bound > 0.0
                    ), answer
                else:
                    assert answer.error_bound is None, answer
        clean = handle.close()
    assert clean, f"{backend}: drain/shutdown was not clean"
    assert service.closed
    print(f"{backend} smoke: {QUERY_COUNT} queries ok, clean drain")


def main() -> int:
    catalog = build_catalog()
    print(f"catalog: {len(catalog)} SITs")
    for backend in BACKENDS:
        smoke_backend(catalog, backend)
    print("estimator smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
