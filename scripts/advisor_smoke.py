"""CI smoke for the self-tuning advisor (:mod:`repro.advisor`).

Serves a skewed snowflake workload through an :class:`EstimationService`
with the advisor enabled, under a space budget covering only the smaller
half of the candidate conditioned SITs, then asserts:

* feedback flows from served estimates into the advisor;
* at least one tuning proposal is **accepted** and applied through the
  catalog's refresh path;
* the safety constraints hold on a *fresh* holdout workload the tuning
  never saw (q-error bound, space budget, refresh budget);
* an impossible constraint (``max_q_error=0``) always reports
  ``no-solution-found`` and leaves the catalog untouched;
* the service drains cleanly with the tuning thread joined.

Exits non-zero on any violation::

    PYTHONPATH=src python scripts/advisor_smoke.py
"""

from __future__ import annotations

import sys

from repro.advisor import AdvisorConfig, SelfTuningAdvisor
from repro.advisor.loop import ACCEPTED
from repro.advisor.safety import NO_SOLUTION_FOUND
from repro.advisor.search import q_error, sit_space_bytes
from repro.catalog import EstimationSession, StatisticsCatalog
from repro.core.predicates import attributes_of
from repro.engine.executor import Executor
from repro.service import EstimationService, ServiceConfig
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

SCALE = 0.1
SEED = 42
FEEDBACK_QUERIES = 20
HOLDOUT_QUERIES = 10
MAX_Q_ERROR = 1000.0
REFRESH_BUDGET_S = 60.0


def build_setup():
    database = generate_snowflake(SnowflakeConfig(scale=SCALE, seed=SEED))
    stream = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=SEED)
    ).generate(FEEDBACK_QUERIES + HOLDOUT_QUERIES)
    feedback, holdout = stream[:FEEDBACK_QUERIES], stream[FEEDBACK_QUERIES:]
    catalog = StatisticsCatalog.build(database, feedback, max_joins=2)
    present = {sit.attribute for sit in catalog.pool if sit.is_base}
    needed = set()
    for query in stream:
        needed |= attributes_of(query.predicates)
    for attribute in sorted(needed - present):
        catalog.add(catalog.builder.build_base(attribute))
    return database, catalog, feedback, holdout


def half_pool_budget(catalog) -> float:
    spaces = sorted(
        sit_space_bytes(sit) for sit in catalog.pool if not sit.is_base
    )
    budget = sum(spaces[: len(spaces) // 2])
    assert budget < sum(spaces), "budget must exclude part of the pool"
    return budget


def smoke_tuned_service(database, catalog, feedback, holdout) -> None:
    budget = half_pool_budget(catalog)
    config = ServiceConfig(
        workers=2,
        queue_depth=256,
        batch_window_s=0.002,
        advisor=AdvisorConfig(
            max_q_error=MAX_Q_ERROR,
            space_budget_bytes=budget,
            refresh_budget_s=REFRESH_BUDGET_S,
            min_feedback=8,
            min_interval_s=3600.0,  # the explicit tune() below drives it
        ),
    )
    service = EstimationService(catalog, config=config)
    advisor = service.advisor
    assert advisor is not None, "advisor was not constructed"

    for query in feedback:
        answer = service.estimate(query)
        assert 0.0 <= answer.selectivity <= 1.0, answer
    appended = advisor.log.counters()["feedback_appended"]
    assert appended >= FEEDBACK_QUERIES, (
        f"feedback did not flow: {appended} < {FEEDBACK_QUERIES}"
    )

    report = service.tune()
    assert report is not None, "tune() found no advisor"
    assert report.status == ACCEPTED, f"tuning not accepted: {report.reason}"
    accepts = advisor.metrics.counter("advisor.accepts").value
    assert accepts >= 1, "no accepted proposal recorded"
    decision = report.decision
    assert decision.worst_q_error <= MAX_Q_ERROR, decision
    assert decision.space_bytes <= budget, decision
    assert decision.refresh_seconds <= REFRESH_BUDGET_S, decision

    # the installed configuration: space and refresh budgets must hold on
    # the catalog itself, not just on the gate's bookkeeping
    installed = [sit for sit in catalog.pool if not sit.is_base]
    assert {str(sit) for sit in installed} == set(report.chosen)
    assert sum(sit_space_bytes(sit) for sit in installed) <= budget

    # serving keeps working on the tuned catalog, and the q-error bound
    # generalizes to a fresh holdout workload the tuning never saw
    executor = Executor(database)
    session = EstimationSession(catalog)
    worst = 0.0
    for query in holdout:
        estimated = session.estimate(query).selectivity
        truth = executor.selectivity(query.predicates)
        worst = max(worst, q_error(estimated, truth))
    assert worst <= MAX_Q_ERROR, (
        f"holdout q-error {worst:.1f} breaks the {MAX_Q_ERROR} bound"
    )

    clean = service.close()
    assert clean, "drain/shutdown was not clean"
    print(
        f"tuned-service smoke: {len(report.chosen)} SITs accepted "
        f"(safety worst q-err {decision.worst_q_error:.2f}, "
        f"holdout worst q-err {worst:.2f}), clean drain"
    )


def smoke_no_solution(database, catalog, feedback) -> None:
    """``max_q_error=0`` is unsatisfiable (q-error >= 1): every tick
    must report no-solution-found and change nothing."""
    fingerprint = (
        catalog.version,
        tuple(sorted(str(sit) for sit in catalog.pool)),
    )
    advisor = SelfTuningAdvisor(
        catalog,
        config=AdvisorConfig(
            max_q_error=0.0, min_feedback=8, min_interval_s=0.0
        ),
    )
    session = EstimationSession(catalog)
    session.feedback_sink = advisor.record_result
    for query in feedback:
        session.estimate(query)
    report = advisor.tick()
    assert report.status == NO_SOLUTION_FOUND, report.status
    assert not report.applied
    after = (
        catalog.version,
        tuple(sorted(str(sit) for sit in catalog.pool)),
    )
    assert after == fingerprint, "no-solution-found mutated the catalog"
    print("no-solution smoke: impossible constraint rejected, catalog intact")


def main() -> int:
    database, catalog, feedback, holdout = build_setup()
    conditioned = sum(1 for sit in catalog.pool if not sit.is_base)
    print(f"catalog: {len(catalog)} SITs ({conditioned} conditioned)")
    smoke_tuned_service(database, catalog, feedback, holdout)
    smoke_no_solution(database, catalog, feedback)
    print("advisor smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
