"""Section 4.2 ablation: full getSelectivity versus the memo-coupled
restriction.

The paper proposes coupling getSelectivity with the optimizer's own search
so only memo-entry-induced decompositions are scored.  This ablation
measures what that restriction costs in accuracy and what it saves in
view-matching calls, on the 3-way join workload.
"""

import time

from repro.bench.reporting import render_table
from repro.core.errors import DiffError
from repro.estimators import make_gs_diff
from repro.optimizer.explorer import explore
from repro.optimizer.integration import MemoCoupledEstimator


def test_memo_coupling_ablation(
    benchmark, database, harness, workloads, pools, write_result
):
    queries = workloads[3][:6]
    pool = pools[3]

    def run():
        rows = []
        for index, query in enumerate(queries):
            true = harness.true_cardinality(query.predicates)
            size = database.cross_product_size(query.tables)

            full = make_gs_diff(database, pool)
            started = time.perf_counter()
            full_card = full.cardinality(query)
            full_seconds = time.perf_counter() - started
            full_calls = full.view_matching_calls

            coupled = MemoCoupledEstimator(database, pool, DiffError(pool))
            started = time.perf_counter()
            exploration = explore(query)
            estimates = coupled.estimate_memo(exploration)
            coupled_seconds = time.perf_counter() - started
            coupled_card = estimates[exploration.root].selectivity * size

            rows.append(
                (
                    index,
                    true,
                    full_card,
                    coupled_card,
                    full_calls,
                    coupled.matcher.calls,
                    full_seconds,
                    coupled_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = render_table(
        "Section 4.2 ablation - full DP vs memo-coupled getSelectivity (GS-Diff)",
        [
            "query",
            "true",
            "full DP",
            "memo-coupled",
            "DP vm calls",
            "memo vm calls",
            "DP s",
            "memo s",
        ],
        [
            [
                str(i),
                f"{true:,}",
                f"{full_card:,.0f}",
                f"{coupled_card:,.0f}",
                f"{full_calls:,}",
                f"{coupled_calls:,}",
                f"{full_s:.3f}",
                f"{coupled_s:.3f}",
            ]
            for i, true, full_card, coupled_card, full_calls, coupled_calls, full_s, coupled_s in rows
        ],
    )
    write_result("section4_memo_coupling", table)

    # The coupled search is much cheaper in view-matching calls...
    total_full = sum(r[4] for r in rows)
    total_coupled = sum(r[5] for r in rows)
    assert total_coupled < total_full
    # ... and its estimates stay in the same ballpark as the full DP.
    for _, true, full_card, coupled_card, *_ in rows:
        full_error = abs(full_card - true)
        coupled_error = abs(coupled_card - true)
        assert coupled_error <= max(4 * full_error, 0.25 * true + 10)
