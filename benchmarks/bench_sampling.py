"""Extension ablation: histogram SITs versus sample-based SITs.

The paper notes SITs generalize to other estimators such as samples.
This ablation builds the J_2 pool (i) exactly and (ii) from uniform
samples of the expression results at several sampling rates, and compares
GS-Diff accuracy — quantifying how much statistic fidelity the framework
actually needs.
"""

from repro.bench.reporting import render_table
from repro.estimators import make_gs_diff
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool
from repro.stats.sampling import SamplingSITBuilder

RATES = (0.25, 0.1, 0.05)


def test_sampling_sits_ablation(
    benchmark, database, harness, workloads, write_result
):
    queries = workloads[3][:6]

    def run():
        rows = []
        exact_pool = build_workload_pool(
            SITBuilder(database), queries, max_joins=2
        )
        evaluation = harness.evaluate(
            queries,
            exact_pool,
            {"GS-Diff": make_gs_diff},
            include_gvm=False,
            max_subqueries=30,
        )
        rows.append(("exact scan", evaluation.report("GS-Diff").mean_absolute_error))
        for rate in RATES:
            builder = SamplingSITBuilder(
                database, sample_fraction=rate, min_sample_rows=100
            )
            pool = build_workload_pool(builder, queries, max_joins=2)
            evaluation = harness.evaluate(
                queries,
                pool,
                {"GS-Diff": make_gs_diff},
                include_gvm=False,
                max_subqueries=30,
            )
            rows.append(
                (f"{rate:.0%} sample", evaluation.report("GS-Diff").mean_absolute_error)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "Extension ablation - exact vs sampled SITs (GS-Diff, pool J2, 3-way joins)",
        ["SIT construction", "mean |error|"],
        [[name, f"{error:,.1f}"] for name, error in rows],
    )
    table += (
        "\n(sampled synopses replace exact point buckets with gap-free"
        "\n range buckets; each histogram join loses ~25-30% accuracy per"
        "\n sampled side, which compounds over multi-join sub-queries)"
    )
    write_result("ablation_sampled_sits", table)

    errors = dict(rows)
    # Sampling trades accuracy for construction cost; it must stay within
    # a bounded factor of exact statistics and far from useless.
    assert errors["5% sample"] <= errors["exact scan"] * 30 + 20
    assert errors["25% sample"] <= errors["exact scan"] * 30 + 20
