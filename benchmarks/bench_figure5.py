"""Figure 5: per-query absolute error, GVM (x) versus GS-nInd (y).

The paper's scatter plot over 3- to 7-way join workloads: getSelectivity
with the *same* error function as GVM dominates it because it searches the
full decomposition space instead of the view-matching-reachable subset.
Reported here as the (x, y) pairs plus the fraction of points on or under
the x = y line.
"""

from repro.bench.reporting import figure5_rows, render_table
from repro.estimators import make_gs_nind


def test_figure5_scatter(benchmark, figure7_sweep, write_result, database, pools, workloads):
    def collect():
        pairs = []
        for join_count, by_pool in figure7_sweep.items():
            # The paper evaluates with SITs available; use the J2 pool.
            evaluation = by_pool["J2"]
            for x, y in figure5_rows(evaluation, "GVM", "GS-nInd"):
                pairs.append((join_count, x, y))
        return pairs

    pairs = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert pairs
    under = sum(1 for _, x, y in pairs if y <= x * 1.05 + 1e-9)
    fraction = under / len(pairs)

    rows = [
        [str(join_count), f"{x:,.1f}", f"{y:,.1f}", "yes" if y <= x * 1.05 + 1e-9 else "NO"]
        for join_count, x, y in pairs
    ]
    table = render_table(
        "Figure 5 - per-query absolute error: GVM (x) vs GS-nInd (y), pool J2",
        ["joins", "GVM error", "GS-nInd error", "y <= x"],
        rows,
    )
    table += (
        f"\npoints on/under x=y: {under}/{len(pairs)}"
        f" ({fraction:.0%}; paper: all points under the line — see"
        f"\n EXPERIMENTS.md: our GVM baseline is stronger than [4],"
        f"\n which compresses the gap for the tie-prone nInd ranking)"
    )
    write_result("figure5_gvm_vs_gsnind", table)

    # Shape checks: GS-nInd wins pointwise for the clear majority, wins in
    # aggregate on the 3-way workload, and GS-Diff (the paper's actual
    # proposal) dominates GVM in aggregate on the smaller workloads.
    assert fraction >= 0.55
    sweep_3 = figure7_sweep[3]["J2"]
    assert (
        sweep_3.report("GS-nInd").mean_absolute_error
        <= sweep_3.report("GVM").mean_absolute_error * 1.05 + 1e-9
    )
    for join_count in (3, 5):
        evaluation = figure7_sweep[join_count]["J2"]
        assert (
            evaluation.report("GS-Diff").mean_absolute_error
            <= evaluation.report("GVM").mean_absolute_error * 1.05 + 1e-9
        )
