"""Figures 1 and 2: the motivating example as a benchmark.

Regenerates the introduction's numbers: a traditional optimizer badly
underestimates the skewed TPC-H query; each SIT fixes one skew source
(the Figure 1(b)/1(c) rewritings); getSelectivity combines both (the
Figure 2 intersection decomposition); GVM cannot.
"""

import pytest

from repro.bench.reporting import render_table
from repro.estimators import make_gs_diff, make_nosit
from repro.core.gvm import GreedyViewMatching
from repro.core.predicates import Attribute
from repro.engine.executor import Executor
from repro.stats.builder import SITBuilder
from repro.stats.pool import SITPool
from repro.workload.tpch import generate_tpch, motivating_query


@pytest.fixture(scope="module")
def setting():
    db = generate_tpch()
    query = motivating_query(db)
    true = Executor(db).cardinality(query.predicates)
    joins = sorted(query.joins, key=str)
    join_lo = next(j for j in joins if "lineitem" in str(j))
    join_oc = next(j for j in joins if "customer" in str(j))
    builder = SITBuilder(db)
    base = [
        builder.build_base(attribute)
        for table in db.schema.tables.values()
        for attribute in table.attributes
    ]
    sit_lo = builder.build(Attribute("orders", "total_price"), frozenset({join_lo}))
    sit_oc = builder.build(Attribute("customer", "nation"), frozenset({join_oc}))
    return db, query, true, base, sit_lo, sit_oc


def test_motivating_example(benchmark, setting, write_result):
    db, query, true, base, sit_lo, sit_oc = setting
    size = db.cross_product_size(query.tables)

    def estimates():
        rows = []
        rows.append(
            ("noSit (traditional optimizer)",
             make_nosit(db, SITPool(list(base))).cardinality(query))
        )
        rows.append(
            ("GS + SIT(LO)  [Figure 1(b)]",
             make_gs_diff(db, SITPool(list(base) + [sit_lo])).cardinality(query))
        )
        rows.append(
            ("GS + SIT(OC)  [Figure 1(c)]",
             make_gs_diff(db, SITPool(list(base) + [sit_oc])).cardinality(query))
        )
        both = SITPool(list(base) + [sit_lo, sit_oc])
        rows.append(
            ("GS + both SITs  [Figure 2]",
             make_gs_diff(db, both).cardinality(query))
        )
        gvm = GreedyViewMatching(both)
        rows.append(
            ("GVM + both SITs (view matching)",
             gvm.estimate(query).selectivity * size)
        )
        return rows

    rows = benchmark.pedantic(estimates, rounds=1, iterations=1)
    estimate = dict(rows)

    # The paper's claims, as assertions on the shape:
    assert estimate["noSit (traditional optimizer)"] < true / 3
    assert abs(estimate["GS + both SITs  [Figure 2]"] - true) < min(
        abs(estimate["GS + SIT(LO)  [Figure 1(b)]"] - true),
        abs(estimate["GS + SIT(OC)  [Figure 1(c)]"] - true),
    )
    assert abs(estimate["GS + both SITs  [Figure 2]"] - true) < abs(
        estimate["GVM + both SITs (view matching)"] - true
    )

    table = render_table(
        f"Figures 1-2 - motivating example (true cardinality {true:,})",
        ["technique", "estimate", "abs error"],
        [
            [name, f"{value:,.0f}", f"{abs(value - true):,.0f}"]
            for name, value in rows
        ],
    )
    write_result("figure1_2_motivating", table)
