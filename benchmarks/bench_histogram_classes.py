"""Histogram-class ablation: MaxDiff versus equi-depth versus equi-width.

The paper standardizes on maxDiff histograms [22] with 200 buckets.  The
framework is agnostic to the bucketing scheme; this ablation rebuilds the
J_2 pool under each scheme and compares GS-Diff accuracy, isolating how
much of the gain comes from the SIT machinery versus the histogram class.
"""

from repro.bench.reporting import render_table
from repro.estimators import make_gs_diff
from repro.histograms.equidepth import build_equidepth
from repro.histograms.equiwidth import build_equiwidth
from repro.histograms.maxdiff import build_maxdiff
from repro.histograms.wavelet import build_wavelet
from repro.stats.builder import SITBuilder
from repro.stats.pool import build_workload_pool

SCHEMES = [
    ("maxdiff", build_maxdiff),
    ("equi-depth", build_equidepth),
    ("equi-width", build_equiwidth),
    ("haar-wavelet", build_wavelet),
]


def test_histogram_class_ablation(
    benchmark, database, harness, workloads, write_result
):
    queries = workloads[3][:6]

    def run():
        rows = []
        for name, scheme in SCHEMES:
            builder = SITBuilder(database, histogram_builder=scheme)
            pool = build_workload_pool(builder, queries, max_joins=2)
            evaluation = harness.evaluate(
                queries,
                pool,
                {"GS-Diff": make_gs_diff},
                include_gvm=False,
                max_subqueries=30,
            )
            rows.append((name, evaluation.report("GS-Diff").mean_absolute_error))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = render_table(
        "Histogram-class ablation - GS-Diff, pool J2, 3-way joins",
        ["scheme", "mean |error|"],
        [[name, f"{error:,.1f}"] for name, error in rows],
    )
    write_result("ablation_histogram_class", table)

    errors = dict(rows)
    # All schemes must work; maxDiff should be competitive with the best.
    best = min(errors.values())
    assert errors["maxdiff"] <= best * 2.0 + 1.0
