"""Lemma 1: the decomposition search space versus the DP's effort.

Regenerates the paper's combinatorial argument as a table: the number of
decompositions ``T(n)`` with its Lemma 1 bounds, against the ``O(3^n)``
work bound of ``getSelectivity`` — the exponential-vs-factorial gap that
motivates the dynamic program.
"""

import math

from repro.bench.reporting import render_table
from repro.core.decompose import count_decompositions, lemma1_bounds


def test_lemma1_search_space(benchmark, write_result):
    rows = []

    def compute():
        out = []
        for n in range(1, 11):
            lower, upper = lemma1_bounds(n)
            t_n = count_decompositions(n)
            out.append(
                [
                    str(n),
                    f"{lower:,.0f}",
                    f"{t_n:,}",
                    f"{upper:,.0f}",
                    f"{3 ** n:,}",
                    f"{t_n / 3 ** n:,.1f}x",
                ]
            )
        return out

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    for row in rows:
        n = int(row[0])
        lower, upper = lemma1_bounds(n)
        assert lower <= count_decompositions(n) <= upper

    table = render_table(
        "Lemma 1 - decompositions T(n) vs getSelectivity's O(3^n)",
        ["n", "0.5*(n+1)!", "T(n)", "1.5^n*n!", "3^n", "T(n)/3^n"],
        rows,
    )
    write_result("lemma1_search_space", table)
