"""Core-DP and histogram-kernel speedup benchmark (bitmask vs. seed).

Runs the :mod:`repro.bench.perf` suite — legacy (frozenset DP + loop
kernels, the seed configuration) against the bitmask DP + vectorized
kernels — and regenerates the repo-root ``BENCH_core.json`` artifact.
The assertions are deliberately conservative (well under the measured
speedups) so the benchmark is robust to noisy machines; the acceptance
numbers live in ``BENCH_core.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_core_dp.py -q
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench import perf

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def perf_result():
    return perf.run(repeats=7)


def test_dp_steady_state_speedup(perf_result, write_result):
    """Reset-per-query regime (the optimizer inner loop): the bitmask DP
    must comfortably beat the seed on every workload size."""
    rows = perf_result["get_selectivity"]
    for key, row in rows.items():
        assert row["steady_speedup"] >= 2.0, (key, row["steady_speedup"])
    assert rows["n7"]["steady_speedup"] >= 3.0
    write_result("core_dp", perf.render(perf_result))


def test_dp_cold_not_regressed(perf_result):
    """A fresh-instance call is matching-layer bound (shared by both
    paths); the bitmask machinery must not make it materially slower."""
    for key, row in perf_result["get_selectivity"].items():
        assert row["cold_speedup"] >= 0.6, (key, row["cold_speedup"])


def test_histogram_kernel_speedups(perf_result):
    histograms = perf_result["histograms"]
    assert histograms["histogram_join"]["speedup"] >= 3.0
    assert histograms["variation_distance"]["speedup"] >= 5.0


def test_results_are_identical_across_paths(perf_result):
    """The benchmark must compare equal work: both paths answer the same
    query with the same selectivity (parity is exhaustively tested in
    tests/core/test_bitmask_parity.py; this is the bench-level guard)."""
    from repro.core.errors import NIndError
    from repro.core.get_selectivity import GetSelectivity

    for size in perf.PREDICATE_COUNTS:
        predicates, pool = perf.build_scenario(size)
        fast = GetSelectivity.create(pool, NIndError(), engine="bitmask")(
            predicates
        )
        oracle = GetSelectivity.create(pool, NIndError(), engine="legacy")(
            predicates
        )
        assert fast.selectivity == oracle.selectivity
        assert fast.error == oracle.error
        assert fast.decomposition == oracle.decomposition


def test_tracing_overhead_disabled_configuration(perf_result):
    """The observability layer's production configuration (tracing
    disabled) must stay in the same ballpark as the untraced steady
    run; the per-run acceptance number (<=5% vs. the pre-observability
    baseline) is recorded in ``BENCH_core.json``'s observability block.
    The bound here is conservative to tolerate noisy CI machines."""
    tracing = perf_result["observability"]["n7_tracing"]
    steady = perf_result["get_selectivity"]["n7"]["bitmask"]["steady_ms"]
    assert tracing["disabled_ms"] <= steady * 1.5
    # enabled tracing is allowed to cost more, but not pathologically so
    assert tracing["enabled_ms"] <= tracing["disabled_ms"] * 3.0
    assert tracing["trace_stage_ms"].get("dp_enumeration", 0.0) > 0.0


def test_fault_guard_overhead_and_parity(perf_result):
    """The resilience layer's production configuration (no plan armed)
    must stay in the same ballpark as the bare steady run, and an armed
    zero-fault plan must be bit-identical to it; the per-run <=5%
    acceptance number is recorded in ``BENCH_core.json``'s resilience
    block.  The bounds here are conservative for noisy CI machines."""
    guards = perf_result["resilience"]["n7_fault_guards"]
    assert guards["zero_fault_bit_identical"] is True
    steady = perf_result["get_selectivity"]["n7"]["bitmask"]["steady_ms"]
    assert guards["disarmed_ms"] <= steady * 1.5
    assert guards["armed_zero_fault_ms"] <= guards["disarmed_ms"] * 1.5


def test_write_bench_core_json(perf_result):
    """Regenerate the repo-root artifact so CI keeps it fresh."""
    payload = json.dumps(perf_result, indent=2) + "\n"
    (REPO_ROOT / "BENCH_core.json").write_text(payload)
    reread = json.loads(payload)
    assert reread["gates"]["n7_steady_speedup"] >= 3.0
