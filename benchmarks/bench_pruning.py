"""Section 3.4 ablation: SIT-driven pruning of the decomposition space.

With a sparse SIT pool, most atomic decompositions cannot be approximated
by any non-base SIT; the paper suggests letting the available SITs drive
the search.  This ablation verifies the pruned search returns the same
estimates with fewer view-matching calls, and quantifies the savings as
the pool shrinks.
"""

from repro.bench.reporting import render_table
from repro.core.errors import NIndError
from repro.core.get_selectivity import GetSelectivity


def test_sit_driven_pruning(benchmark, workloads, pools, write_result):
    queries = workloads[5][:4]
    full_pool = pools[5]

    def run():
        rows = []
        for limit in (0, 1, 2):
            pool = full_pool.restrict_joins(limit)
            plain = GetSelectivity(pool, NIndError())
            pruned = GetSelectivity(pool, NIndError(), sit_driven_pruning=True)
            plain_calls = 0
            pruned_calls = 0
            max_deviation = 0.0
            for query in queries:
                plain.reset()
                pruned.reset()
                plain_result = plain(query.predicates)
                pruned_result = pruned(query.predicates)
                plain_calls += plain.matcher.calls
                pruned_calls += pruned.matcher.calls
                if plain_result.selectivity > 0:
                    max_deviation = max(
                        max_deviation,
                        abs(pruned_result.selectivity - plain_result.selectivity)
                        / plain_result.selectivity,
                    )
            rows.append((limit, len(pool), plain_calls, pruned_calls, max_deviation))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = render_table(
        "Section 3.4 ablation - SIT-driven pruning (GS-nInd, 5-way joins)",
        ["pool", "SITs", "vm calls (full)", "vm calls (pruned)", "max rel. deviation"],
        [
            [f"J{limit}", str(size), f"{full:,}", f"{pruned:,}", f"{dev:.2%}"]
            for limit, size, full, pruned, dev in rows
        ],
    )
    write_result("section34_pruning", table)

    for limit, _, full_calls, pruned_calls, deviation in rows:
        assert pruned_calls <= full_calls
        # Sparse pools prune hardest.
        if limit == 0:
            assert pruned_calls < full_calls / 2
