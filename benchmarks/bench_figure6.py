"""Figure 6: efficiency — view-matching calls, getSelectivity versus GVM.

Both techniques share the same view-matching routine, and the paper
measures how often each invokes it while serving the optimizer's
selectivity requests for every explored sub-plan.  As in the paper's
implementation (Section 4.2), getSelectivity is coupled with the memo:
one view-matching call per memo entry answers *all* sub-plan requests.
GVM, lacking cross-sub-plan reuse, re-runs its greedy procedure for every
sub-plan — ending up with several times more calls, and the gap grows
with the join count.
"""

from repro.bench.reporting import render_table
from repro.core.errors import NIndError
from repro.core.gvm import GreedyViewMatching
from repro.optimizer.explorer import explore, subplan_predicate_sets
from repro.optimizer.integration import MemoCoupledEstimator

#: queries per workload (the memo universe is the expensive part)
FIGURE6_QUERIES = {3: 6, 5: 4, 7: 2}


def test_figure6_view_matching_calls(
    benchmark, database, workloads, pools, write_result
):
    def evaluate():
        rows = []
        for join_count, queries in workloads.items():
            pool = pools[join_count].restrict_joins(2)
            subset = queries[: FIGURE6_QUERIES[join_count]]
            gs_calls = 0
            gvm_calls = 0
            for query in subset:
                exploration = explore(query)
                coupled = MemoCoupledEstimator(database, pool, NIndError())
                coupled.estimate_memo(exploration)
                gs_calls += coupled.matcher.calls
                gvm = GreedyViewMatching(pool)
                for predicates in subplan_predicate_sets(exploration):
                    gvm.estimate_selectivity(predicates)
                gvm_calls += gvm.matcher.calls
            rows.append(
                (
                    join_count,
                    gs_calls / len(subset),
                    gvm_calls / len(subset),
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = render_table(
        "Figure 6 - avg. view-matching calls per query (all memo sub-plans)",
        ["joins", "getSelectivity", "GVM", "GVM/GS"],
        [
            [str(j), f"{gs:,.0f}", f"{gvm:,.0f}", f"{gvm / gs:.2f}x"]
            for j, gs, gvm in rows
        ],
    )
    table += "\n(paper: GVM issues up to ~5x more view-matching calls)"
    write_result("figure6_vm_calls", table)

    ratios = [gvm / gs for _, gs, gvm in rows]
    # GVM always needs more calls and the gap widens with the join count.
    assert all(ratio > 1.5 for ratio in ratios)
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 3.0
