"""Figure 8: execution time of GS-Diff, split into decomposition analysis
and histogram manipulation, across SIT pools.

The paper's claims: the per-query overhead is small (milliseconds on their
hardware; our pure-Python substrate is slower in absolute terms), the
decomposition-analysis component dominates, and the cost scales gracefully
with the number of available SITs.
"""

from repro.bench.reporting import render_figure8


def test_figure8_time_breakdown(benchmark, figure7_sweep, write_result):
    sweep = benchmark.pedantic(lambda: figure7_sweep, rounds=1, iterations=1)

    sections = []
    for join_count, by_pool in sweep.items():
        sections.append(render_figure8(by_pool, "GS-Diff", join_count))
    table = "\n\n".join(sections)
    table += (
        "\n(paper: a few ms/query on 2004 hardware inside a C++ optimizer;"
        "\n shape to check: analysis >= manipulation, graceful growth with"
        "\n pool size)"
    )
    write_result("figure8_time_breakdown", table)

    for join_count, by_pool in sweep.items():
        for evaluation in by_pool.values():
            report = evaluation.report("GS-Diff")
            assert report.mean_analysis_ms > 0.0
            # Histogram manipulation is the smaller component (line 16
            # estimation happens once per memoized subset).
            assert report.mean_estimation_ms <= report.mean_analysis_ms * 1.5
        # Cost scales sub-linearly with pool size: the largest pool costs
        # at most ~4x the base pool despite having far more SITs.
        names = list(by_pool)
        base_ms = by_pool[names[0]].report("GS-Diff").mean_analysis_ms
        top_ms = by_pool[names[-1]].report("GS-Diff").mean_analysis_ms
        assert top_ms < base_ms * 4.0 + 5.0
