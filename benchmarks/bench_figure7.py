"""Figure 7: average absolute error across SIT pools J0..Jmax.

One sub-figure per workload (3-, 5- and 7-way joins), comparing noSit,
GVM, GS-nInd, GS-Diff and (3-way workload) GS-Opt.  The paper's shape:
error collapses by roughly an order of magnitude as join SITs become
available, GS-Diff tracks GS-Opt closely and beats GS-nInd, and most of
the gain arrives with the 1- and 2-join SITs.
"""

from repro.bench.reporting import render_figure7

TECHNIQUES = ["noSit", "GVM", "GS-nInd", "GS-Diff", "GS-Opt"]


def test_figure7_accuracy_sweep(benchmark, figure7_sweep, write_result):
    sweep = benchmark.pedantic(lambda: figure7_sweep, rounds=1, iterations=1)

    sections = []
    for join_count, by_pool in sweep.items():
        sections.append(render_figure7(by_pool, TECHNIQUES, join_count))
    table = "\n\n".join(sections)
    write_result("figure7_accuracy", table)

    for join_count, by_pool in sweep.items():
        pool_names = list(by_pool)
        first, last = by_pool[pool_names[0]], by_pool[pool_names[-1]]
        # SITs drastically reduce error relative to base statistics.
        assert (
            last.report("GS-Diff").mean_absolute_error
            < first.report("GS-Diff").mean_absolute_error
        )
        # GS-Diff is at least as good as noSit everywhere.
        for evaluation in by_pool.values():
            assert (
                evaluation.report("GS-Diff").mean_absolute_error
                <= evaluation.report("noSit").mean_absolute_error * 1.05 + 1e-9
            )

    # GS-Opt (3-way workload) lower-bounds the heuristics, and GS-Diff
    # stays within a modest factor of it at the richest pool.
    by_pool = sweep[3]
    last = by_pool[list(by_pool)[-1]]
    opt = last.report("GS-Opt").mean_absolute_error
    diff = last.report("GS-Diff").mean_absolute_error
    assert opt <= diff * 1.05 + 1e-9
