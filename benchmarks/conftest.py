"""Shared fixtures for the figure-regeneration benchmarks.

Scale is controlled by environment variables (see
:mod:`repro.bench.config`).  Heavy artifacts — the snowflake database, the
workloads, the SIT pools and the Figure 7 sweep — are session-scoped so
the per-figure benchmark files share them.

Every benchmark writes its paper-style table to
``benchmarks/results/<name>.txt`` and the tables are echoed in the
terminal summary, so ``pytest benchmarks/ --benchmark-only`` output
contains the regenerated figures.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.config import BenchConfig
from repro.bench.harness import Harness, WorkloadEvaluation
from repro.estimators import (
    make_gs_diff,
    make_gs_nind,
    make_gs_opt,
    make_nosit,
)
from repro.stats.builder import SITBuilder
from repro.stats.pool import SITPool, build_workload_pool
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: join counts evaluated, as in the paper's 3-/5-/7-way join workloads
JOIN_COUNTS = (3, 5, 7)

_written: list[pathlib.Path] = []


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    return BenchConfig.from_env()


@pytest.fixture(scope="session")
def database(config):
    return generate_snowflake(SnowflakeConfig(scale=config.scale, seed=config.seed))


@pytest.fixture(scope="session")
def harness(database):
    return Harness(database)


def _query_budget(config: BenchConfig, join_count: int) -> int:
    """Fewer queries for the larger joins (the DP is O(3^n) per query)."""
    if join_count <= 3:
        return config.queries_per_workload
    if join_count <= 5:
        return max(3, config.queries_per_workload * 2 // 3)
    return max(2, config.queries_per_workload // 3)


@pytest.fixture(scope="session")
def workloads(database, config):
    out = {}
    for join_count in JOIN_COUNTS:
        generator = WorkloadGenerator(
            database,
            WorkloadConfig(
                join_count=join_count, filter_count=3, seed=config.seed + join_count
            ),
        )
        out[join_count] = generator.generate(_query_budget(config, join_count))
    return out


@pytest.fixture(scope="session")
def pools(database, workloads):
    """The full J_{join_count} pool per workload; sub-pools by restriction."""
    builder = SITBuilder(database)
    return {
        join_count: build_workload_pool(builder, queries, max_joins=join_count)
        for join_count, queries in workloads.items()
    }


def pool_limits(join_count: int) -> list[int]:
    """The J_i sweep evaluated for one workload."""
    limits = [0, 1, 2]
    if join_count > 2:
        limits.append(join_count)
    return limits


@pytest.fixture(scope="session")
def figure7_sweep(harness, workloads, pools, config):
    """The full accuracy sweep behind Figures 5, 7 and 8.

    Maps join_count -> pool name ('J0', 'J1', ...) -> WorkloadEvaluation.
    GS-Opt runs on the 3-way workload only (it executes query expressions
    exactly, which is meaningful but slow — the paper calls it "only of
    theoretical interest").
    """
    sweep: dict[int, dict[str, WorkloadEvaluation]] = {}
    for join_count in JOIN_COUNTS:
        queries = workloads[join_count]
        sweep[join_count] = {}
        for limit in pool_limits(join_count):
            pool = pools[join_count].restrict_joins(limit)
            factories = {
                "noSit": make_nosit,
                "GS-nInd": make_gs_nind,
                "GS-Diff": make_gs_diff,
            }
            if join_count == 3:
                factories["GS-Opt"] = make_gs_opt
            sweep[join_count][f"J{limit}"] = harness.evaluate(
                queries,
                pool,
                factories,
                max_subqueries=config.subqueries_per_query,
            )
    return sweep


@pytest.fixture(scope="session")
def write_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        _written.append(path)

    return write


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _written:
        return
    terminalreporter.write_sep("=", "regenerated paper figures")
    for path in _written:
        terminalreporter.write_line("")
        terminalreporter.write_line(path.read_text())
