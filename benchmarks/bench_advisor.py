"""SIT-selection ablation: advisor-chosen pools versus arbitrary pools.

The paper shows 1-2-join SITs deliver most of the accuracy; the advisor
(``repro.stats.advisor``) turns that finding into a selection policy:
rank candidates by ``diff_H x applicability / cost``.  This ablation
compares, at equal SIT budgets, the advisor's pool against a pool of the
same size chosen arbitrarily (first-come) and against the full ``J_2``
pool, measured by GS-Diff accuracy on the 3-way join workload.
"""

from repro.bench.reporting import render_table
from repro.estimators import make_gs_diff
from repro.stats.advisor import AdvisorConfig, SITAdvisor
from repro.stats.builder import SITBuilder
from repro.stats.pool import SITPool, build_workload_pool

BUDGETS = (4, 8, 16)


def test_advisor_ablation(benchmark, database, harness, workloads, write_result):
    queries = workloads[3][:6]

    def run():
        builder = SITBuilder(database)
        full_pool = build_workload_pool(builder, queries, max_joins=2)
        base_sits = [sit for sit in full_pool if sit.is_base]
        conditioned = [sit for sit in full_pool if not sit.is_base]

        def evaluate(pool):
            evaluation = harness.evaluate(
                queries,
                pool,
                {"GS-Diff": make_gs_diff},
                include_gvm=False,
                max_subqueries=30,
            )
            return evaluation.report("GS-Diff").mean_absolute_error

        rows = [("base only (J0)", len(base_sits), evaluate(SITPool(list(base_sits))))]
        for budget in BUDGETS:
            advisor = SITAdvisor(builder, AdvisorConfig(max_sits=budget, max_joins=2))
            advisor_pool = advisor.build_pool(queries)
            arbitrary = SITPool(
                list(base_sits) + sorted(conditioned, key=str)[:budget]
            )
            rows.append(
                (
                    f"advisor, budget {budget}",
                    len(advisor_pool),
                    evaluate(advisor_pool),
                )
            )
            rows.append(
                (
                    f"arbitrary, budget {budget}",
                    len(arbitrary),
                    evaluate(arbitrary),
                )
            )
        rows.append(("full J2 pool", len(full_pool), evaluate(full_pool)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = render_table(
        "SIT-selection ablation - GS-Diff accuracy at equal budgets (3-way joins)",
        ["pool", "SITs", "mean |error|"],
        [[name, str(size), f"{error:,.1f}"] for name, size, error in rows],
    )
    write_result("ablation_advisor", table)

    errors = {name: error for name, _, error in rows}
    # Advisor pools beat arbitrary pools of the same budget (or tie), and
    # budgeted advisor pools approach the full pool.
    for budget in BUDGETS:
        assert (
            errors[f"advisor, budget {budget}"]
            <= errors[f"arbitrary, budget {budget}"] * 1.10 + 1e-9
        )
    assert errors["advisor, budget 16"] <= errors["base only (J0)"]
