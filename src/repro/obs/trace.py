"""Zero-dependency tracing for the estimation path.

Design contract
---------------
A *disabled* trace is ``None``.  Instrumented call sites therefore follow
the pattern::

    trace = self.trace
    if trace is not None:
        trace.count("masks_explored")

which costs exactly one attribute load and one branch when tracing is off
— the overhead budget the ``BENCH_core.json`` steady-state gate enforces.
Nothing is allocated, no dict keys appear anywhere (in particular not in
the DP memo), and results are bit-identical with tracing on or off.

When *enabled*, a :class:`Trace` aggregates per-stage wall-clock time and
invocation counts (:meth:`Trace.span` / :meth:`Trace.add_time`) plus named
counters (:meth:`Trace.count`).  The canonical stage names used across the
stack are listed in :data:`STAGES`; they map one-to-one onto the paper's
cost taxonomy (see DESIGN.md):

====================  ====================================================
stage                 meaning
====================  ====================================================
``parse_bind``        SQL text → bound :class:`repro.engine.Query`
``dp_enumeration``    the Figure 3 search itself (memo + submask loop)
``factor_matching``   Section 3.3 view matching of ``Sel(P|Q)`` factors
``histogram_join``    numeric factor estimation (histogram manipulation)
``error_scoring``     error-function evaluation of candidate matches
====================  ====================================================
"""

from __future__ import annotations

import json
import time
from typing import Iterator

#: canonical stage names, in pipeline order
STAGES = (
    "parse_bind",
    "dp_enumeration",
    "factor_matching",
    "histogram_join",
    "error_scoring",
)


class Span:
    """One timed region; a context manager that reports into its trace.

    Spans are cheap, single-use objects.  Nested spans simply accumulate
    into their own stage bucket — stage buckets are additive, which is all
    the Figure 8-style breakdowns need.
    """

    __slots__ = ("trace", "stage", "started", "seconds")

    def __init__(self, trace: "Trace", stage: str):
        self.trace = trace
        self.stage = stage
        self.started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Span":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self.started
        self.trace.add_time(self.stage, self.seconds)


class Trace:
    """Aggregating recorder of per-stage timings and named counters."""

    __slots__ = ("timings", "calls", "counters")

    def __init__(self) -> None:
        #: stage -> accumulated seconds
        self.timings: dict[str, float] = {}
        #: stage -> number of spans recorded
        self.calls: dict[str, int] = {}
        #: counter name -> accumulated value
        self.counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    def span(self, stage: str) -> Span:
        """A context manager timing one region into ``stage``."""
        return Span(self, stage)

    def add_time(self, stage: str, seconds: float, calls: int = 1) -> None:
        """Record ``seconds`` of work in ``stage`` (``calls`` invocations)."""
        timings = self.timings
        timings[stage] = timings.get(stage, 0.0) + seconds
        self.calls[stage] = self.calls.get(stage, 0) + calls

    def count(self, name: str, n: int = 1) -> None:
        """Bump the named counter by ``n``."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    # ------------------------------------------------------------------
    def merge(self, other: "Trace") -> None:
        """Fold another trace's aggregates into this one."""
        for stage, seconds in other.timings.items():
            self.add_time(stage, seconds, other.calls.get(stage, 0))
        for name, value in other.counters.items():
            self.count(name, value)

    def clear(self) -> None:
        self.timings.clear()
        self.calls.clear()
        self.counters.clear()

    # ------------------------------------------------------------------
    def stages(self) -> Iterator[tuple[str, float, int]]:
        """``(stage, seconds, calls)`` rows, canonical stages first."""
        seen = []
        for stage in STAGES:
            if stage in self.timings:
                seen.append(stage)
        for stage in self.timings:
            if stage not in STAGES:
                seen.append(stage)
        for stage in seen:
            yield stage, self.timings[stage], self.calls.get(stage, 0)

    def snapshot(self) -> dict:
        """Plain-dict view: ``{"timings": ..., "calls": ..., "counters": ...}``."""
        return {
            "timings": dict(self.timings),
            "calls": dict(self.calls),
            "counters": dict(self.counters),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stages = ", ".join(f"{s}={t * 1e3:.2f}ms" for s, t, _ in self.stages())
        return f"Trace({stages or 'empty'})"
