"""Estimation observability: tracing, metrics and the decomposition explainer.

This subsystem makes the estimation stack introspectable without touching
its numeric behaviour:

* :mod:`repro.obs.trace` — a zero-dependency :class:`Trace`/:class:`Span`
  recorder with per-stage timers (parse/bind → DP enumeration → factor
  matching → histogram join → error scoring) and counters (decompositions
  explored, Section 3.4 prunes, cache hits/misses, SIT candidates filtered
  vs. matched).  Tracing is *opt-in*: a disabled trace is literally
  ``None``, so every instrumented call site costs one ``is not None``
  branch (the acceptance budget is <5% overhead on the ``BENCH_core.json``
  steady-state workload).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with labeled
  counter/gauge/histogram primitives, snapshot-able to dict/JSON; the
  single substrate behind every observability surface.
* :mod:`repro.obs.snapshot` — the documented :class:`StatsSnapshot`
  schema (nested ``timings`` / ``counters`` / ``caches`` / ``catalog``
  namespaces) shared by ``GetSelectivity``, ``SITEstimator``,
  ``MemoCoupledEstimator``, the :class:`repro.catalog.StatisticsCatalog`
  and :class:`repro.catalog.EstimationSession`; the ``catalog`` namespace
  carries statistics-lifecycle state (snapshot/catalog versions, stale
  counts, refresh and invalidation metrics).
* :mod:`repro.obs.staleness` — :class:`StalenessTracker`: per-table
  serving-snapshot staleness (age of acked-but-unapplied writes) and
  measured estimate drift vs. fresh truth on a sampled probe stream;
  the source of the ``ingest`` StatsSnapshot namespace fed by
  :mod:`repro.ingest`.
* :mod:`repro.obs.explain` — ``EXPLAIN ESTIMATE``: a structured
  :class:`ExplainResult` capturing the winning decomposition, the SIT
  matched per conditional factor ``Sel(P|Q)`` (or the independence
  fallback), each factor's error contribution and selectivity; renderable
  as a text tree and as JSON (``python -m repro explain``).
"""

from repro.obs.metrics import Counter, Gauge, HistogramMetric, MetricsRegistry
from repro.obs.snapshot import StatsSnapshot, deprecated
from repro.obs.staleness import StalenessTracker
from repro.obs.trace import Span, Trace

#: explainer names resolved lazily (PEP 562): ``repro.obs.explain`` imports
#: :mod:`repro.core.matching`, which itself depends on modules that import
#: ``repro.obs.snapshot`` — an eager import here would close that cycle.
_EXPLAIN_EXPORTS = (
    "AttributeExplanation",
    "ExplainResult",
    "FactorExplanation",
    "build_explain",
)


def __getattr__(name: str):
    if name in _EXPLAIN_EXPORTS:
        from repro.obs import explain

        value = getattr(explain, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AttributeExplanation",
    "Counter",
    "ExplainResult",
    "FactorExplanation",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "Span",
    "StalenessTracker",
    "StatsSnapshot",
    "Trace",
    "build_explain",
    "deprecated",
]
