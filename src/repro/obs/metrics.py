"""Labeled counter/gauge/histogram primitives and the registry behind
every ``stats()`` surface.

The registry is intentionally tiny and dependency-free — Prometheus-style
semantics without Prometheus:

* a :class:`Counter` only goes up (:meth:`Counter.inc`);
* a :class:`Gauge` is set to the latest value (:meth:`Gauge.set`);
* a :class:`HistogramMetric` summarises observations
  (count/sum/min/max plus p50/p95/p99 quantiles from a bounded
  reservoir, :meth:`HistogramMetric.observe` /
  :meth:`HistogramMetric.quantile`).

Instrument names are dotted — the segment before the first ``.`` is the
*namespace* (``timings`` / ``counters`` / ``caches`` are the conventional
ones, see :class:`repro.obs.snapshot.StatsSnapshot`).  Labels are
free-form keyword pairs; the same name with different labels addresses
different time series, exactly like the usual metrics systems::

    registry = MetricsRegistry()
    registry.counter("counters.matcher_calls", engine="bitmask").inc()
    registry.gauge("timings.analysis_seconds").set(0.0123)
    registry.snapshot()
    # {"counters": {"matcher_calls{engine=bitmask}": 1.0},
    #  "timings": {"analysis_seconds": 0.0123}}

``snapshot()`` nests by namespace and is JSON-ready; ``to_json()`` dumps
it.  Registries are also mergeable (:meth:`MetricsRegistry.merge`), which
is how per-query registries roll up into workload-level BENCH output.
"""

from __future__ import annotations

import json
import math
import random
import zlib
from typing import Iterator, Sequence

LabelKey = tuple[tuple[str, str], ...]

#: how many raw observations a :class:`HistogramMetric` retains for
#: quantile estimation.  Below this count quantiles are *exact*; beyond
#: it the histogram keeps a uniform reservoir sample (Vitter's algorithm
#: R) so memory stays bounded under serving traffic.
RESERVOIR_SIZE = 512

#: the quantiles rendered in :meth:`HistogramMetric.value_view`
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return "{" + inner + "}"


class _Instrument:
    __slots__ = ("name", "labels")
    kind = "instrument"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels

    @property
    def full_name(self) -> str:
        return self.name + _render_labels(self.labels)

    def value_view(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += n

    def value_view(self) -> float:
        return self.value


class Gauge(_Instrument):
    """Last-written value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def value_view(self) -> float:
        return self.value


class HistogramMetric(_Instrument):
    """Streaming summary (count / sum / min / max / quantiles).

    Besides the exact streaming aggregates, the histogram keeps a
    bounded uniform reservoir of raw observations
    (:data:`RESERVOIR_SIZE`); :meth:`quantile` reads p50/p95/p99-style
    order statistics off it.  Until the reservoir fills the quantiles
    are exact; after that they are an unbiased sample estimate.  The
    reservoir's RNG is seeded per instrument so snapshots are
    deterministic for a fixed observation sequence.
    """

    __slots__ = ("count", "sum", "min", "max", "_reservoir", "_rng")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey):
        super().__init__(name, labels)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        # stable across processes (unlike hash()) so overflowing
        # reservoirs sample identically run to run
        seed = zlib.crc32((name + _render_labels(labels)).encode("utf-8"))
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Vitter's algorithm R: keep each of the first `count`
        # observations with probability RESERVOIR_SIZE / count.
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) of the retained reservoir,
        linearly interpolated between order statistics; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        samples = self._reservoir
        if not samples:
            return 0.0
        ordered = sorted(samples)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def quantiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for the given qs."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}

    def _absorb(self, other: "HistogramMetric") -> None:
        """Fold another histogram in (used by registry merging)."""
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for value in other._reservoir:
            if len(self._reservoir) < RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(len(self._reservoir) * 2)
                if slot < RESERVOIR_SIZE:
                    self._reservoir[slot] = value

    def value_view(self) -> dict[str, float]:
        if not self.count:
            return {
                "count": 0,
                "sum": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        view = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        view.update(self.quantiles())
        return view


class MetricsRegistry:
    """Get-or-create home of named, labeled instruments."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelKey], _Instrument] = {}

    # ------------------------------------------------------------------
    def _get(self, cls: type, name: str, labels: dict[str, object]) -> _Instrument:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1])
            self._instruments[key] = instrument
        elif type(instrument) is not cls:
            raise TypeError(
                f"{name!r} is already registered as a {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: object) -> HistogramMetric:
        return self._get(HistogramMetric, name, labels)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one (counters and
        histograms accumulate, gauges take the other's value)."""
        for (name, labels), instrument in other._instruments.items():
            kw = dict(labels)
            if isinstance(instrument, Counter):
                self.counter(name, **kw).inc(instrument.value)
            elif isinstance(instrument, HistogramMetric):
                self.histogram(name, **kw)._absorb(instrument)
            else:
                self.gauge(name, **kw).set(instrument.value)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, object]]:
        """Nested ``{namespace: {name{labels}: value}}`` view.

        The namespace is the dotted prefix of the instrument name (bare
        names land in ``"metrics"``).  Values are floats for counters and
        gauges, ``{count, sum, min, max, mean}`` dicts for histograms.
        """
        out: dict[str, dict[str, object]] = {}
        for instrument in sorted(
            self._instruments.values(), key=lambda i: i.full_name
        ):
            name = instrument.name
            namespace, _, rest = name.partition(".")
            if not rest:
                namespace, rest = "metrics", name
            entry = rest + _render_labels(instrument.labels)
            out.setdefault(namespace, {})[entry] = instrument.value_view()
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
