"""Staleness and drift accounting for streaming ingestion.

When base tables churn while the stack serves, two questions decide
whether an answer can be trusted:

* **How old is the serving snapshot?**  :class:`StalenessTracker` keeps,
  per table, the admission times of every *acked but not yet applied*
  write.  ``staleness_s(table)`` is the age of the oldest such write —
  zero once the serving snapshot has absorbed every acked write for the
  table.  The ingest pipeline (:mod:`repro.ingest`) feeds the tracker:
  :meth:`note_write` on admission (*before* the event becomes visible to
  the apply loop, so apply can never race ahead of the ack),
  :meth:`retract_write` when bounded admission sheds the event after
  all, and :meth:`note_applied` when a coalesced invalidation epoch
  lands on the catalog's ``notify_table_update`` path.  The pending set
  is exact, and bounded by the pipeline's admission depth.
* **How wrong are served estimates while stale?**  ``staleness_s`` is an
  upper bound on *exposure*, not on *error* — a table can churn without
  moving any histogram.  :meth:`record_drift` therefore accumulates
  *measured* drift: on a sampled sub-stream of applied epochs the
  pipeline re-estimates a probe query against fresh engine (or
  guaranteed-sample) truth and records the q-error between the served
  estimate and that truth.  ``drift_quantile`` exposes p50/p95 over a
  bounded rolling window.

The tracker is thread-safe and clock-injectable (tests pass a fake
monotonic clock).  Its :meth:`metrics` form is the source of the
``ingest`` :class:`~repro.obs.snapshot.StatsSnapshot` namespace;
:meth:`status` is the compact block ``catalog status`` prints.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Callable, Iterable, Mapping

__all__ = ["StalenessTracker"]


class _TableState:
    __slots__ = ("pending", "writes", "applied")

    def __init__(self) -> None:
        #: sorted admission times of acked-but-unapplied writes
        self.pending: list[float] = []
        self.writes = 0
        self.applied = 0


class StalenessTracker:
    """Per-table serving-snapshot staleness plus measured estimate drift."""

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        drift_window: int = 256,
    ):
        if drift_window < 1:
            raise ValueError("drift_window must be >= 1")
        self._clock = clock
        self._lock = threading.Lock()
        self._tables: dict[str, _TableState] = {}
        self._drift: deque[float] = deque(maxlen=int(drift_window))
        self._drift_probes = 0

    # -- write/apply bookkeeping ----------------------------------------
    def note_write(self, table: str, when: float | None = None) -> float:
        """Record one acked write for ``table``; returns its admission time."""
        when = self._clock() if when is None else float(when)
        with self._lock:
            state = self._tables.setdefault(table, _TableState())
            state.writes += 1
            bisect.insort(state.pending, when)
        return when

    def retract_write(self, table: str, when: float) -> None:
        """Un-record a write that was shed after :meth:`note_write`
        (bounded admission refused it, so it was never acked)."""
        with self._lock:
            state = self._tables.get(table)
            if state is None:
                return
            index = bisect.bisect_left(state.pending, when)
            if index < len(state.pending) and state.pending[index] == when:
                state.pending.pop(index)
                state.writes -= 1

    def note_applied(self, table: str, through: float) -> None:
        """The serving snapshot now reflects every acked write for
        ``table`` admitted at or before ``through``."""
        with self._lock:
            state = self._tables.get(table)
            if state is None:
                return
            state.applied += 1
            cut = bisect.bisect_right(state.pending, through)
            if cut:
                del state.pending[:cut]

    # -- staleness gauges -----------------------------------------------
    def staleness_s(self, table: str) -> float:
        """Age of the oldest acked write the snapshot does not reflect."""
        now = self._clock()
        with self._lock:
            state = self._tables.get(table)
            if state is None or not state.pending:
                return 0.0
            return max(0.0, now - state.pending[0])

    def staleness_for(self, tables: Iterable[str]) -> float:
        """Worst-case staleness over ``tables`` (answer provenance)."""
        now = self._clock()
        worst = 0.0
        with self._lock:
            for table in tables:
                state = self._tables.get(table)
                if state is None or not state.pending:
                    continue
                worst = max(worst, now - state.pending[0])
        return worst

    def max_staleness_s(self) -> float:
        now = self._clock()
        with self._lock:
            oldest = [
                s.pending[0] for s in self._tables.values() if s.pending
            ]
        if not oldest:
            return 0.0
        return max(0.0, now - min(oldest))

    def tables_pending(self) -> int:
        with self._lock:
            return sum(1 for s in self._tables.values() if s.pending)

    def quiesced(self) -> bool:
        """True when no table has an acked-but-unapplied write."""
        return self.tables_pending() == 0

    # -- measured drift --------------------------------------------------
    def record_drift(self, q_error: float) -> None:
        """Record one probe measurement (q-error ≥ 1 between the served
        estimate and fresh truth on the sampled sub-stream)."""
        value = max(1.0, float(q_error))
        with self._lock:
            self._drift.append(value)
            self._drift_probes += 1

    def drift_quantile(self, q: float) -> float:
        """Rolling-window drift quantile; 1.0 (no drift) when unprobed."""
        with self._lock:
            window = sorted(self._drift)
        if not window:
            return 1.0
        index = min(len(window) - 1, int(q * len(window)))
        return window[index]

    @property
    def drift_probes(self) -> int:
        with self._lock:
            return self._drift_probes

    # -- surfacing --------------------------------------------------------
    def metrics(self) -> dict[str, float]:
        """The ``ingest`` namespace entries this tracker contributes."""
        now = self._clock()
        with self._lock:
            out: dict[str, float] = {
                "tables_tracked": float(len(self._tables)),
                "drift_probes": float(self._drift_probes),
            }
            pending = 0
            worst = 0.0
            for table, state in sorted(self._tables.items()):
                if not state.pending:
                    age = 0.0
                else:
                    pending += 1
                    age = max(0.0, now - state.pending[0])
                    worst = max(worst, age)
                out[f"staleness_s.{table}"] = age
            out["tables_pending"] = float(pending)
            out["staleness_s_max"] = worst
            window = sorted(self._drift)
        if window:
            for q, key in ((0.5, "drift_q_error_p50"), (0.95, "drift_q_error_p95")):
                index = min(len(window) - 1, int(q * len(window)))
                out[key] = window[index]
        return out

    def status(self) -> dict[str, object]:
        """Compact block for ``catalog status`` / the service status view."""
        now = self._clock()
        with self._lock:
            per_table: dict[str, Mapping[str, object]] = {}
            pending = 0
            worst = 0.0
            for table, state in sorted(self._tables.items()):
                if not state.pending:
                    age = 0.0
                else:
                    pending += 1
                    age = max(0.0, now - state.pending[0])
                    worst = max(worst, age)
                per_table[table] = {
                    "writes": state.writes,
                    "applied_epochs": state.applied,
                    "staleness_s": round(age, 6),
                }
            probes = self._drift_probes
            window = sorted(self._drift)
        out: dict[str, object] = {
            "tables_pending": pending,
            "staleness_s_max": round(worst, 6),
            "drift_probes": probes,
            "tables": per_table,
        }
        if window:
            index = min(len(window) - 1, int(0.95 * len(window)))
            out["drift_q_error_p95"] = round(window[index], 6)
        return out
