"""``EXPLAIN ESTIMATE``: structured explanations of ``getSelectivity``.

When ``nInd`` and ``Diff`` disagree (the heart of the paper's Section 5
experiments) the numbers alone do not say *why*.  :func:`build_explain`
re-walks the winning decomposition of an estimate and captures, per
conditional factor ``Sel(P|Q)``:

* the SIT matched to each attribute (or the base-histogram *independence
  fallback*), with the conditioning it actually covers and the predicates
  it assumes independence from;
* the factor's error contribution under the estimator's error function
  (an ``nInd`` assumption count or a ``diff_H`` weight);
* the factor's estimated selectivity.

The result renders as a text tree (:meth:`ExplainResult.render_text`) and
as JSON (:meth:`ExplainResult.to_json`); ``python -m repro explain``
exposes both.  ``explain`` is a pure *view*: it reuses the DP's memo and
caches, so ``explain(q).selectivity == estimate(q).selectivity`` exactly,
for both engines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.matching import FactorMatch, estimate_factor
from repro.core.selectivity import Factor
from repro.obs.snapshot import StatsSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.expressions import Query
    from repro.estimators.base import Estimator


def _sorted_strs(predicates) -> tuple[str, ...]:
    return tuple(sorted(str(p) for p in predicates))


def _fmt(value: float) -> str:
    """Stable float rendering for the text tree (golden-file friendly)."""
    return f"{value:.6g}"


@dataclass(frozen=True)
class AttributeExplanation:
    """How one attribute of a factor's ``P`` was approximated."""

    attribute: str
    weight: float
    sit: str
    is_base: bool
    diff: float
    conditioning: tuple[str, ...]
    covered: tuple[str, ...]
    assumed: tuple[str, ...]

    @property
    def independence_fallback(self) -> bool:
        """True when a base histogram stands in for a conditioned factor."""
        return self.is_base and bool(self.conditioning)

    def to_dict(self) -> dict:
        return {
            "attribute": self.attribute,
            "weight": self.weight,
            "sit": self.sit,
            "is_base": self.is_base,
            "independence_fallback": self.independence_fallback,
            "diff": self.diff,
            "conditioning": list(self.conditioning),
            "covered": list(self.covered),
            "assumed": list(self.assumed),
        }


@dataclass(frozen=True)
class FactorExplanation:
    """One factor ``Sel(P|Q)`` of the winning decomposition."""

    factor: str
    p: tuple[str, ...]
    q: tuple[str, ...]
    selectivity: float
    error_contribution: float
    attributes: tuple[AttributeExplanation, ...]

    @property
    def conditioned(self) -> bool:
        return bool(self.q)

    def to_dict(self) -> dict:
        return {
            "factor": self.factor,
            "p": list(self.p),
            "q": list(self.q),
            "selectivity": self.selectivity,
            "error_contribution": self.error_contribution,
            "attributes": [a.to_dict() for a in self.attributes],
        }


@dataclass(frozen=True)
class ExplainResult:
    """The full ``EXPLAIN ESTIMATE`` payload for one query."""

    estimator: str
    error_function: str
    engine: str
    query: str
    tables: tuple[str, ...]
    selectivity: float
    error: float
    cardinality: float
    factors: tuple[FactorExplanation, ...]
    #: graceful-degradation ladder level that produced the estimate
    #: (0 = normal; see :mod:`repro.resilience.ladder`)
    degradation_level: int = 0
    #: SIT names excluded by level-1 re-planning
    excluded_sits: tuple[str, ...] = ()
    #: True when the underlying estimate was replayed from a compiled
    #: template plan (:mod:`repro.core.plancache`); replay is
    #: bit-identical, so the explanation itself is unaffected
    plan_cache_hit: bool = False
    #: estimator backend that produced the estimate (``"sit"``, ``"bn"``,
    #: ``"sample"``; see :mod:`repro.estimators`)
    backend: str = "sit"
    #: the sampling backend's distribution-free additive guarantee
    #: (``None`` for backends without one)
    error_bound: float | None = None
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    # ------------------------------------------------------------------
    def to_dict(self, include_stats: bool = True) -> dict:
        out = {
            "estimator": self.estimator,
            "error_function": self.error_function,
            "engine": self.engine,
            "query": self.query,
            "tables": list(self.tables),
            "selectivity": self.selectivity,
            "error": self.error,
            "cardinality": self.cardinality,
            "degradation_level": self.degradation_level,
            "excluded_sits": list(self.excluded_sits),
            "plan_cache_hit": self.plan_cache_hit,
            "factors": [f.to_dict() for f in self.factors],
        }
        # emitted conditionally so default-backend payloads (and their
        # golden files) keep the exact pre-plurality key set
        if self.backend != "sit":
            out["backend"] = self.backend
        if self.error_bound is not None:
            out["error_bound"] = self.error_bound
        if include_stats:
            out["stats"] = self.stats.to_dict()
        return out

    def to_json(self, indent: int | None = 2, include_stats: bool = True) -> str:
        return json.dumps(
            self.to_dict(include_stats=include_stats), indent=indent, sort_keys=True
        )

    # ------------------------------------------------------------------
    def render_text(self, include_stats: bool = False) -> str:
        """Human-readable tree, deterministic for golden-file testing."""
        lines = [
            f"EXPLAIN ESTIMATE  {self.estimator}  "
            f"(engine={self.engine}, error={self.error_function})",
            f"query:       {self.query}",
            f"tables:      {', '.join(self.tables)}",
            f"selectivity: {_fmt(self.selectivity)}",
            f"cardinality: {_fmt(self.cardinality)}",
            f"error({self.error_function}): {_fmt(self.error)}",
        ]
        if self.degradation_level:
            from repro.resilience.ladder import LEVEL_NAMES

            name = LEVEL_NAMES.get(self.degradation_level, "?")
            line = f"degraded:    level {self.degradation_level} ({name})"
            if self.excluded_sits:
                line += f", excluded: {', '.join(self.excluded_sits)}"
            lines.append(line)
        if self.backend != "sit":
            line = f"backend:     {self.backend}"
            if self.error_bound is not None:
                line += f"  (guaranteed |est-true| <= {_fmt(self.error_bound)})"
            lines.append(line)
        if self.plan_cache_hit:
            lines.append("plan cache:  hit (replayed compiled plan)")
        lines.append(
            f"decomposition ({len(self.factors)} "
            f"factor{'s' if len(self.factors) != 1 else ''}):"
        )
        for index, factor in enumerate(self.factors):
            last = index == len(self.factors) - 1
            head = "└─" if last else "├─"
            stem = "  " if last else "│ "
            lines.append(
                f"{head} [{index + 1}] {factor.factor}  "
                f"sel={_fmt(factor.selectivity)}  "
                f"error={_fmt(factor.error_contribution)}"
            )
            for attribute in factor.attributes:
                if attribute.independence_fallback:
                    note = "base histogram: independence fallback"
                elif attribute.is_base:
                    note = "base histogram"
                else:
                    note = f"conditioned, diff={_fmt(attribute.diff)}"
                lines.append(
                    f"{stem}    {attribute.attribute} <- {attribute.sit}  [{note}]"
                )
                if attribute.assumed:
                    lines.append(
                        f"{stem}      assumed independent of: "
                        f"{', '.join(attribute.assumed)}"
                    )
        if include_stats:
            from repro.obs.snapshot import NAMESPACES

            lines.append("stats:")
            for namespace in NAMESPACES:
                entries = self.stats.namespace(namespace)
                for name in sorted(entries):
                    lines.append(f"  {namespace}.{name} = {entries[name]}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render_text()


# ----------------------------------------------------------------------
def _explain_factor(
    factor: Factor, match: FactorMatch, error_function
) -> FactorExplanation:
    attributes = tuple(
        AttributeExplanation(
            attribute=str(am.attribute),
            weight=am.weight,
            sit=str(am.sit),
            is_base=am.sit.is_base,
            diff=am.sit.diff,
            conditioning=_sorted_strs(am.conditioning),
            covered=_sorted_strs(am.sit.expression),
            assumed=_sorted_strs(am.assumed),
        )
        for am in sorted(match.attribute_matches, key=lambda am: str(am.attribute))
    )
    return FactorExplanation(
        factor=str(factor),
        p=_sorted_strs(factor.p),
        q=_sorted_strs(factor.q),
        selectivity=estimate_factor(match),
        error_contribution=error_function.factor_error(match),
        attributes=attributes,
    )


def build_explain(estimator: "Estimator", query: "Query") -> ExplainResult:
    """Explain ``estimator``'s estimate of ``query``.

    For the SIT backend this runs (or re-uses, thanks to the memo) the
    full ``getSelectivity`` DP, then decorates the winning decomposition
    factor by factor — conditional factors first, ending at the
    unconditioned anchors, the order the chain rule multiplies them in.
    Peer backends (:mod:`repro.estimators`) have no decomposition; their
    explanation carries the header fields plus the ``backend`` tag (and
    the sampling backend's ``error_bound``).
    """
    result = estimator.estimate(query)
    error_function = estimator.error_function
    factors = tuple(
        _explain_factor(factor, match, error_function)
        for factor, match in zip(result.decomposition.factors, result.matches)
    )
    return ExplainResult(
        estimator=estimator.name,
        error_function=(
            error_function.name if error_function is not None else "none"
        ),
        engine=estimator.engine,
        query=str(query),
        tables=tuple(sorted(query.tables)),
        selectivity=result.selectivity,
        error=result.error,
        cardinality=result.selectivity
        * estimator.database.cross_product_size(query.tables),
        factors=factors,
        degradation_level=result.degradation_level,
        excluded_sits=result.excluded_sits,
        plan_cache_hit=result.plan_cache_hit,
        backend=result.backend,
        error_bound=result.error_bound,
        stats=estimator.stats_snapshot(),
    )
