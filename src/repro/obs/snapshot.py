"""The unified ``StatsSnapshot`` schema for every observability surface.

A :class:`StatsSnapshot` is the one documented shape, with these
namespaces:

``timings``
    wall-clock accumulators, in seconds (``analysis_seconds``,
    ``estimation_seconds``, plus per-stage trace timings when tracing is
    enabled — see :mod:`repro.obs.trace`);
``counters``
    monotone event counts for the current accounting window
    (``matcher_calls``, ``pruned_decompositions``,
    ``explored_decompositions``, ``universe_size``, ...);
``caches``
    cache sizes and hit/miss counts (``memo_entries``,
    ``match_cache_entries``, ``estimate_cache_entries``,
    ``match_cache_hits``, ``match_cache_misses``);
``catalog``
    statistics-lifecycle state (``snapshot_version``,
    ``catalog_version``, ``current``, ``sit_count``, ``stale_sits``,
    ``invalidations``, ``sits_rebuilt``, ``match_cache_hit_rate``, ...)
    — populated when the producer serves from a
    :class:`repro.catalog.StatisticsCatalog` / snapshot / session,
    empty otherwise;
``service``
    request-path state of the estimation-serving subsystem
    (:mod:`repro.service`): ``queue_depth``, ``workers``, ``served``,
    ``shed_overload`` / ``shed_deadline``, ``batches``,
    ``batched_requests``, ``snapshot_swaps`` and the ``latency_ms``
    histogram with p50/p95/p99 — empty for producers below the serving
    layer;
``resilience``
    degradation and fault-handling state (:mod:`repro.resilience`):
    ``degraded_level1..3`` outcome counters, ``faults_<kind>`` per typed
    fault kind, ``replans``, plus service-side self-healing counters
    (``worker_restarts``, ``breaker_trips``, ``requeues``,
    ``snapshot_rollbacks``) and injected-fault counters
    (``injected_<point>.<kind>``) when a fault plan is armed — empty
    when nothing ever degraded;
``plan_cache``
    compiled-plan cache state (:mod:`repro.core.plancache`): ``plans``,
    ``hits``, ``misses``, ``compiles``, ``evictions``, ``bytes``,
    ``hit_rate``, plus per-shape hit rates as
    ``shape.<digest>.hits`` / ``shape.<digest>.hit_rate`` — empty for
    producers that run without the cache;
``cluster``
    multi-process tier state (:mod:`repro.cluster`): ring membership
    (``shards``, ``replicas``, ``ejected``), routing counters
    (``routed``, ``spilled``, per-shard ``shard.<id>.routed``), hedging
    (``hedges``, ``hedge_wins``, ``hedge_cancelled``, ``hedge_delay_ms``)
    and swap coherence (``holds``, ``held_requests``, ``swaps``) — empty
    below the cluster router;
``advisor``
    self-tuning loop state (:mod:`repro.advisor`): ``ticks``,
    ``proposals``, ``accepts``, per-constraint rejects
    (``rejects_q_error`` / ``rejects_space`` / ``rejects_refresh_cost``),
    ``no_solution`` outcomes, ``skipped_ticks`` (safety evaluation
    unavailable), feedback-log fill (``feedback_records``,
    ``feedback_dropped``) and the last accepted proposal's safety
    margins (``safety_q_error``, ``safety_space_bytes``,
    ``safety_refresh_seconds``) — empty when no advisor runs;
``ingest``
    streaming-ingestion state (:mod:`repro.ingest` +
    :class:`repro.obs.staleness.StalenessTracker`): admission counters
    (``events``, ``shed``, ``dropped``), coalescing
    (``epochs_applied``, ``coalesced_events``, ``coalesce_ratio``),
    apply-fault retries (``apply_faults``, ``apply_retries``), the
    staleness gauges (``staleness_s_max``, per-table
    ``staleness_s.<table>``, ``tables_pending``) and measured drift on
    the probe sub-stream (``drift_probes``, ``drift_q_error_p50``,
    ``drift_q_error_p95``) — empty when nothing streams writes.

``meta`` carries identification (engine, estimator name, error function,
session name) and is excluded from numeric views.  Snapshots are plain
data: build one from a :class:`repro.obs.metrics.MetricsRegistry` with
:meth:`from_registry`, serialise with :meth:`to_dict` / :meth:`to_json`.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.obs.metrics import MetricsRegistry

#: the namespaces a snapshot exposes, in rendering order
NAMESPACES = (
    "timings",
    "counters",
    "caches",
    "catalog",
    "service",
    "resilience",
    "plan_cache",
    "cluster",
    "advisor",
    "ingest",
)


def deprecated(message: str) -> None:
    """Emit a :class:`DeprecationWarning` attributed to the caller's caller."""
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def _freeze(mapping: Mapping[str, object] | None) -> Mapping[str, object]:
    return MappingProxyType(dict(mapping or {}))


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable, documented observability snapshot."""

    timings: Mapping[str, float] = field(default_factory=dict)
    counters: Mapping[str, float] = field(default_factory=dict)
    caches: Mapping[str, float] = field(default_factory=dict)
    catalog: Mapping[str, float] = field(default_factory=dict)
    service: Mapping[str, object] = field(default_factory=dict)
    resilience: Mapping[str, float] = field(default_factory=dict)
    plan_cache: Mapping[str, float] = field(default_factory=dict)
    cluster: Mapping[str, float] = field(default_factory=dict)
    advisor: Mapping[str, float] = field(default_factory=dict)
    ingest: Mapping[str, float] = field(default_factory=dict)
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in (*NAMESPACES, "meta"):
            object.__setattr__(self, name, _freeze(getattr(self, name)))

    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls, registry: MetricsRegistry, meta: Mapping[str, object] | None = None
    ) -> "StatsSnapshot":
        """Group a registry's instruments into the documented namespaces.

        Instruments outside the conventional namespaces are folded into
        ``counters`` under their full dotted name, so nothing is lost.
        """
        nested = registry.snapshot()
        extra: dict[str, object] = {}
        for namespace, entries in nested.items():
            if namespace not in NAMESPACES:
                for name, value in entries.items():
                    extra[f"{namespace}.{name}"] = value
        counters = dict(nested.get("counters", {}))
        counters.update(extra)
        return cls(
            timings=nested.get("timings", {}),
            counters=counters,
            caches=nested.get("caches", {}),
            catalog=nested.get("catalog", {}),
            service=nested.get("service", {}),
            resilience=nested.get("resilience", {}),
            plan_cache=nested.get("plan_cache", {}),
            cluster=nested.get("cluster", {}),
            advisor=nested.get("advisor", {}),
            ingest=nested.get("ingest", {}),
            meta=meta or {},
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Nested plain-dict form (JSON-ready)."""
        return {
            "timings": dict(self.timings),
            "counters": dict(self.counters),
            "caches": dict(self.caches),
            "catalog": dict(self.catalog),
            "service": dict(self.service),
            "resilience": dict(self.resilience),
            "plan_cache": dict(self.plan_cache),
            "cluster": dict(self.cluster),
            "advisor": dict(self.advisor),
            "ingest": dict(self.ingest),
            "meta": dict(self.meta),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def namespace(self, name: str) -> Mapping[str, object]:
        if name not in NAMESPACES:
            raise KeyError(f"unknown namespace {name!r}; expected {NAMESPACES}")
        return getattr(self, name)

    # ------------------------------------------------------------------
    def flat(self, keys: Mapping[str, str] | None = None) -> dict[str, float]:
        """A flattened numeric view (a generic utility, not a schema).

        With ``keys`` (a ``{flat_key: "namespace.entry"}`` mapping) the
        result contains exactly those keys.  Without ``keys`` every
        numeric entry is flattened as ``namespace`` is dropped (colliding
        names keep the namespaced form).
        """
        if keys is not None:
            out: dict[str, float] = {}
            for flat_key, path in keys.items():
                namespace, _, entry = path.partition(".")
                out[flat_key] = getattr(self, namespace)[entry]
            return out
        out = {}
        for namespace in NAMESPACES:
            for entry, value in getattr(self, namespace).items():
                if entry in out:
                    entry = f"{namespace}.{entry}"
                if isinstance(value, (int, float)):
                    out[entry] = float(value)
        return out
