"""The asyncio JSON-lines front-end over :class:`EstimationService`.

One TCP connection, one JSON object per line (see
:mod:`repro.service.protocol`).  The event loop never estimates — it
decodes, admits into the thread-pooled service and awaits the wrapped
future, so slow DP work on one connection does not stall another's
admission (and a shed request is answered in microseconds).

Three ways to run it:

* ``async with EstimationServer(service) as server: await
  server.serve_forever()`` inside an existing loop;
* :func:`run_server` — blocking, drives its own loop (the CLI's
  ``python -m repro serve``);
* :func:`start_in_thread` — spins the loop up on a daemon thread and
  returns a handle with the bound address (tests, CI smoke, notebooks).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Callable

from repro.service.protocol import (
    InvalidRequest,
    ServiceError,
    decode_predicates,
    encode_line,
    decode_line,
    failure_to_wire,
)
from repro.service.service import EstimationService


class EstimationServer:
    """Serve one :class:`EstimationService` over newline-delimited JSON."""

    def __init__(
        self,
        service: EstimationService,
        host: str | None = None,
        port: int | None = None,
    ):
        self.service = service
        self.host = host if host is not None else service.config.host
        self.port = port if port is not None else service.config.port
        #: cluster deployments set this so every ok response carries the
        #: answering shard's id (:mod:`repro.cluster`); None = no field
        self.shard: int | None = None
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound ``(host, port)`` (resolves port 0)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> "EstimationServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "EstimationServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Pipelined: every request line becomes a task, responses are
        written as they complete (clients correlate on ``id``).  This is
        what lets one connection's burst coalesce into one micro-batch."""
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()

        async def respond(line: bytes) -> None:
            response = await self._dispatch(line)
            async with write_lock:
                writer.write(encode_line(response))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.create_task(respond(line))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
            if inflight:
                await asyncio.gather(*list(inflight), return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            for task in list(inflight):  # pragma: no cover - abrupt close
                task.cancel()
            with contextlib.suppress(Exception):
                writer.close()
            # deliberately no ``await writer.wait_closed()``: the
            # transport finishes closing on the loop, while awaiting it
            # would park this handler task past server shutdown (and a
            # cancelled handler trips asyncio.streams' done-callback)

    async def _dispatch(self, line: bytes) -> dict:
        request_id: object = None
        try:
            payload = decode_line(line)
            request_id = payload.get("id")
            op = payload.get("op", "estimate")
            if op == "ping":
                return {"id": request_id, "ok": True, "status": "ok", "pong": True}
            if op == "stats":
                return {
                    "id": request_id,
                    "ok": True,
                    "status": "ok",
                    "stats": self.service.stats_snapshot().to_dict(),
                }
            if op != "estimate":
                extra = await self._dispatch_extra(op, payload, request_id)
                if extra is not None:
                    return extra
                raise InvalidRequest(f"unknown op {op!r}")
            query = self._decode_query(payload)
            timeout_ms = payload.get("timeout_ms")
            timeout = None if timeout_ms is None else float(timeout_ms) / 1000.0
            future = self.service.submit(query, timeout=timeout)
            result = await asyncio.wrap_future(future)
            response = result.to_wire(request_id)
            if self.shard is not None:
                response["shard"] = self.shard
            if payload.get("hedge"):
                # a hedged duplicate: echo the flag so the winning
                # answer is attributable (repro.cluster observability)
                response["hedged"] = True
            return response
        except ServiceError as exc:
            return failure_to_wire(exc, request_id)
        except Exception as exc:  # defensive: a bug must not kill the loop
            return failure_to_wire(
                ServiceError(f"internal error: {exc}"), request_id
            )

    @staticmethod
    def _decode_query(payload: dict):
        """The request's query in whichever spelling it carried: a
        ``sql`` string, or the parse-free ``predicates`` list the
        cluster router sends (:mod:`repro.service.protocol`)."""
        if "predicates" in payload:
            return decode_predicates(payload["predicates"])
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise InvalidRequest(
                "estimate requires a non-empty 'sql' or a 'predicates' list"
            )
        return sql

    async def _dispatch_extra(
        self, op: str, payload: dict, request_id: object
    ) -> dict | None:
        """Subclass hook for ops beyond ping/stats/estimate (the cluster
        shard server adds invalidate/swap control ops).  Return ``None``
        to reject the op as unknown."""
        return None


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_server(
    service: EstimationService,
    host: str | None = None,
    port: int | None = None,
    ready: "Callable[[tuple[str, int]], None] | None" = None,
) -> None:
    """Blocking runner: start the server and serve until cancelled.

    ``ready`` (if given) is called with the bound address once
    listening.  On KeyboardInterrupt the service drains gracefully.
    """

    async def _main() -> None:
        server = EstimationServer(service, host, port)
        async with server:
            if ready is not None:
                ready(server.address)
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        service.close()


class ServerHandle:
    """A server running on a background thread (tests / CI smoke)."""

    def __init__(self, service: EstimationService, host: str, port: int):
        self.service = service
        self._loop = asyncio.new_event_loop()
        self._server = EstimationServer(service, host, port)
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):  # pragma: no cover
            raise RuntimeError("server failed to start within 30s")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def _start() -> None:
            await self._server.start()
            self._started.set()

        self._loop.run_until_complete(_start())
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._server.aclose())
            # connection handlers may still be parked on a half-closed
            # socket; cancel them so the loop closes without complaint
            pending = [
                task
                for task in asyncio.all_tasks(self._loop)
                if not task.done()
            ]
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    def close(self, drain: bool = True) -> bool:
        """Stop the listener, then drain and close the service."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)
        return self.service.close(drain=drain)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_in_thread(
    service: EstimationService,
    host: str | None = None,
    port: int | None = None,
) -> ServerHandle:
    """Run the JSON-lines server on a daemon thread; returns its handle."""
    return ServerHandle(
        service,
        host if host is not None else service.config.host,
        port if port is not None else service.config.port,
    )


__all__ = [
    "EstimationServer",
    "ServerHandle",
    "run_server",
    "start_in_thread",
]
