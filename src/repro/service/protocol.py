"""Typed request/response shapes and the JSON-lines wire codec.

One request or response per line, UTF-8 JSON.  The same shapes back the
in-process path (dataclasses + typed exceptions) and the TCP path (their
``to_wire`` / ``from_wire`` encodings), so a client cannot observe which
transport it is on.

Requests::

    {"id": "7", "sql": "SELECT ...", "timeout_ms": 250}
    {"id": "7b", "predicates": [{"kind": "filter", ...}, ...]}
    {"id": "8", "op": "stats"}
    {"id": "9", "op": "ping"}

``predicates`` is the pre-parsed alternative to ``sql``: a list of
predicate objects in the same JSON spelling the catalog files use
(:mod:`repro.stats.io`; infinities as ``"inf"``/``"-inf"``).  The
cluster router forwards requests this way so shards skip SQL parsing;
:func:`encode_predicates` / :func:`decode_predicates` are the codec.
A request carrying ``hedge: true`` is a hedged duplicate — the server
answers it normally, the flag only rides back for observability.

Responses::

    {"id": "7", "ok": true, "status": "ok", "selectivity": ..,
     "cardinality": .., "error": .., "snapshot_version": 3,
     "latency_ms": 1.8, "degradation_level": 0}
    {"id": "7", "ok": false, "status": "overloaded", "detail": "..."}
    {"id": "7", "ok": false, "status": "deadline_exceeded", "detail": "..."}
    {"id": "7", "ok": false, "status": "invalid", "detail": "..."}
    {"id": "7", "ok": false, "status": "closed", "detail": "..."}

``status`` is the machine-readable discriminator; ``ok`` is redundant
convenience for one-line clients.

``degradation_level`` reports how the estimate was produced when
statistics fault mid-request (see :mod:`repro.resilience.ladder` and
DESIGN.md §10): ``0`` = the normal path, ``1`` = re-planned without the
failed SITs (their names ride along in ``excluded_sits``), ``2`` = base
histograms under independence, ``3`` = magic constants.  A degraded
answer is still ``status: ok`` — the ladder's contract is that a
labelled estimate beats a failure.

Cluster deployments (:mod:`repro.cluster`) add two optional response
fields: ``shard`` (the integer shard id that produced the answer) and
``hedged`` (``true`` when the answer came from a hedged duplicate, i.e.
the replica beat the primary).  Both are absent outside a cluster, so
single-process responses are byte-identical to earlier releases.

Backend provenance (two more optional fields): ``backend`` names the
estimator implementation that produced the answer (``"sit"``, ``"bn"``,
``"sample"``, or ``"magic"`` for a level-3 constant answer; see
:mod:`repro.estimators`), and ``error_bound`` carries the sampling
backend's distribution-free additive guarantee (``|est - true| <=
error_bound`` with the configured confidence).  ``backend`` is emitted
only when it differs from the default ``"sit"`` and ``error_bound``
only when the backend provides one, so default-backend responses are
byte-identical to earlier releases.

Bounded-staleness provenance (one more optional field):
``staleness_s`` carries the worst pending-write age, in seconds, over
the base tables the query touched — the gap between the answer's
serving snapshot and the newest acked-but-unapplied table update in
the streaming-ingestion pipeline (:mod:`repro.ingest`; see DESIGN.md
§15).  ``0.0`` means every acked write was applied before this answer;
the field is emitted only when a :class:`repro.obs.StalenessTracker`
is attached (``service.attach_staleness`` /
``cluster.attach_staleness``), so deployments without streaming
ingestion stay byte-identical to earlier releases.

``plan_cache_hit`` (boolean, always present in ok responses) reports
whether the answer was replayed from a compiled template plan
(:mod:`repro.core.plancache`) instead of a fresh DP run.  Replay is
bit-identical to the full path, so the field is diagnostic only —
clients use it to audit steady-state latency, never correctness.

Transport loss is *client-side*
(:class:`repro.service.client.TransportError`) and never appears as a
wire status; the vocabulary above is closed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping

# ----------------------------------------------------------------------
# Status vocabulary
# ----------------------------------------------------------------------
STATUS_OK = "ok"
STATUS_OVERLOADED = "overloaded"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_INVALID = "invalid"
STATUS_CLOSED = "closed"

#: statuses a served request can terminate with
STATUSES = (
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_DEADLINE,
    STATUS_INVALID,
    STATUS_CLOSED,
)


# ----------------------------------------------------------------------
# Typed failures (the in-process spelling of non-ok responses)
# ----------------------------------------------------------------------
class ServiceError(Exception):
    """Base of every typed serving failure."""

    status = "error"

    @property
    def detail(self) -> str:
        return str(self)


class Overloaded(ServiceError):
    """Admission control shed the request: the bounded queue was full.

    This is the *typed* load-shedding response — the service answers
    immediately instead of buffering without bound or hanging.
    """

    status = STATUS_OVERLOADED


class DeadlineExceeded(ServiceError):
    """The request's deadline passed before a worker reached it."""

    status = STATUS_DEADLINE


class InvalidRequest(ServiceError):
    """The request could not be parsed/bound against the schema."""

    status = STATUS_INVALID


class ServiceClosed(ServiceError):
    """The service is shutting down (or gone) and not admitting work."""

    status = STATUS_CLOSED


#: wire status -> exception type, for client-side re-raising
ERRORS_BY_STATUS: Mapping[str, type[ServiceError]] = {
    STATUS_OVERLOADED: Overloaded,
    STATUS_DEADLINE: DeadlineExceeded,
    STATUS_INVALID: InvalidRequest,
    STATUS_CLOSED: ServiceClosed,
}


def error_from_status(status: str, detail: str) -> ServiceError:
    """Rehydrate a typed failure from its wire status."""
    return ERRORS_BY_STATUS.get(status, ServiceError)(detail)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServedEstimate:
    """A successful estimation answer.

    ``selectivity`` / ``cardinality`` / ``error`` are bit-identical to a
    direct :class:`~repro.estimators.sit.SITEstimator` call on the
    snapshot identified by ``snapshot_version`` (the parity tests pin
    this).
    """

    selectivity: float
    cardinality: float
    error: float
    snapshot_version: int
    latency_ms: float
    #: requests the answering micro-batch carried (1 = no coalescing)
    batch_size: int = 1
    #: True when this answer was deduplicated off another request's DP
    #: run within the same micro-batch
    deduplicated: bool = False
    #: graceful-degradation ladder level that produced this estimate
    #: (0 = normal path, 1 = re-plan without the failed SITs, 2 = base
    #: statistics + independence, 3 = magic constants; see
    #: :mod:`repro.resilience.ladder`)
    degradation_level: int = 0
    #: SIT names excluded by level-1 re-planning (empty on level 0)
    excluded_sits: tuple[str, ...] = ()
    #: True when this answer was replayed from a compiled plan
    #: (:mod:`repro.core.plancache`) instead of a fresh DP run; the
    #: replay is bit-identical, so this is purely diagnostic
    plan_cache_hit: bool = False
    #: cluster only: id of the shard that produced this answer
    #: (``None`` outside :mod:`repro.cluster`)
    shard: int | None = None
    #: cluster only: True when a hedged duplicate won the race and this
    #: answer came from the replica rather than the primary shard
    hedged: bool = False
    #: estimator backend that produced this answer (``"sit"``, ``"bn"``,
    #: ``"sample"``; ``"magic"`` marks a level-3 constant answer)
    backend: str = "sit"
    #: distribution-free additive guarantee of the sampling backend
    #: (``None`` for backends without one)
    error_bound: float | None = None
    #: worst-case serving-snapshot staleness (seconds) over the tables
    #: the query touched, measured by the ingest pipeline's
    #: :class:`repro.obs.StalenessTracker` (``None`` when no staleness
    #: tracking is wired — the field is omitted from the wire then, so
    #: payloads without streaming ingestion stay byte-identical)
    staleness_s: float | None = None

    @property
    def degraded(self) -> bool:
        return self.degradation_level > 0

    def to_wire(self, request_id: object = None) -> dict:
        payload: dict = {
            "ok": True,
            "status": STATUS_OK,
            "selectivity": self.selectivity,
            "cardinality": self.cardinality,
            "error": self.error,
            "snapshot_version": self.snapshot_version,
            "latency_ms": self.latency_ms,
            "batch_size": self.batch_size,
            "deduplicated": self.deduplicated,
            "degradation_level": self.degradation_level,
            "plan_cache_hit": self.plan_cache_hit,
        }
        if self.excluded_sits:
            payload["excluded_sits"] = list(self.excluded_sits)
        if self.shard is not None:
            payload["shard"] = self.shard
        if self.hedged:
            payload["hedged"] = True
        if self.backend != "sit":
            payload["backend"] = self.backend
        if self.error_bound is not None:
            payload["error_bound"] = self.error_bound
        if self.staleness_s is not None:
            payload["staleness_s"] = self.staleness_s
        if request_id is not None:
            payload["id"] = request_id
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping) -> "ServedEstimate":
        return cls(
            selectivity=float(payload["selectivity"]),
            cardinality=float(payload["cardinality"]),
            error=float(payload["error"]),
            snapshot_version=int(payload["snapshot_version"]),
            latency_ms=float(payload["latency_ms"]),
            batch_size=int(payload.get("batch_size", 1)),
            deduplicated=bool(payload.get("deduplicated", False)),
            degradation_level=int(payload.get("degradation_level", 0)),
            excluded_sits=tuple(payload.get("excluded_sits", ())),
            plan_cache_hit=bool(payload.get("plan_cache_hit", False)),
            shard=(None if payload.get("shard") is None else int(payload["shard"])),
            hedged=bool(payload.get("hedged", False)),
            backend=str(payload.get("backend", "sit")),
            error_bound=(
                None
                if payload.get("error_bound") is None
                else float(payload["error_bound"])
            ),
            staleness_s=(
                None
                if payload.get("staleness_s") is None
                else float(payload["staleness_s"])
            ),
        )


def failure_to_wire(exc: ServiceError, request_id: object = None) -> dict:
    payload: dict = {"ok": False, "status": exc.status, "detail": exc.detail}
    if request_id is not None:
        payload["id"] = request_id
    return payload


# ----------------------------------------------------------------------
# Predicate-set payloads (the parse-free request spelling)
# ----------------------------------------------------------------------
def encode_predicates(predicates) -> list[dict]:
    """Encode a predicate set for the ``predicates`` request field.

    Uses the catalog-file codec (:mod:`repro.stats.io`), so floats —
    including infinities — round-trip exactly and the decoded set
    rebuilds the *same* frozenset the sender held (bit-identical
    estimates depend on this).
    """
    from repro.stats.io import encode_predicate

    return [encode_predicate(p) for p in sorted(predicates, key=str)]


def decode_predicates(items) -> frozenset:
    """Decode a ``predicates`` request field back to a predicate set."""
    from repro.stats.io import PoolFormatError, decode_predicate

    if not isinstance(items, (list, tuple)) or not items:
        raise InvalidRequest("'predicates' must be a non-empty list")
    try:
        return frozenset(decode_predicate(item) for item in items)
    except (PoolFormatError, KeyError, TypeError, ValueError) as exc:
        raise InvalidRequest(f"bad predicate payload: {exc}") from exc


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
def encode_line(payload: Mapping) -> bytes:
    """One JSON object, newline-terminated, UTF-8."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one wire line; raises :class:`InvalidRequest` on garbage."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise InvalidRequest("empty request line")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise InvalidRequest(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise InvalidRequest("request must be a JSON object")
    return payload


def result_from_wire(payload: Mapping) -> ServedEstimate:
    """Client side: a wire response -> result, re-raising typed failures."""
    if payload.get("ok"):
        return ServedEstimate.from_wire(payload)
    raise error_from_status(
        str(payload.get("status", "error")), str(payload.get("detail", ""))
    )


__all__ = [
    "DeadlineExceeded",
    "ERRORS_BY_STATUS",
    "InvalidRequest",
    "Overloaded",
    "STATUSES",
    "STATUS_CLOSED",
    "STATUS_DEADLINE",
    "STATUS_INVALID",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "ServedEstimate",
    "ServiceClosed",
    "ServiceError",
    "decode_line",
    "decode_predicates",
    "encode_line",
    "encode_predicates",
    "error_from_status",
    "failure_to_wire",
    "result_from_wire",
]
