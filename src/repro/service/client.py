"""Clients of the estimation service — one construction path.

:func:`connect` is the single entrypoint: hand it *whatever you have* —
an :class:`~repro.service.service.EstimationService` (or the cluster
router, which duck-types one), a catalog/snapshot/pool to serve from, a
``"host:port"`` string, an ``(host, port)`` tuple, or a running
:class:`~repro.service.server.ServerHandle` — and it returns an
:class:`EstimationClient`::

    from repro.service import connect

    with connect(catalog) as client:                  # in-process
        answer = client.estimate("SELECT * FROM sales, customer WHERE ...")

    with connect("127.0.0.1:8642") as client:         # over TCP
        answers = client.estimate_batch(queries)

Every client speaks the same small surface — ``estimate``,
``estimate_batch``, ``stats``, ``close`` (plus the ``selectivity`` /
``cardinality`` conveniences) — raises the same typed failures
(:class:`~repro.service.protocol.Overloaded`,
:class:`~repro.service.protocol.DeadlineExceeded`, ...) and returns the
same :class:`~repro.service.protocol.ServedEstimate`, so callers are
transport-agnostic by construction.

``estimate_batch`` submits every query *before* waiting on any answer:
in-process that lands the burst in one micro-batch window; over TCP the
requests are pipelined on one connection and correlated by id.  Answers
come back in input order either way.

Self-healing (:mod:`repro.resilience`):

* every client takes a ``retry`` :class:`~repro.resilience.RetryPolicy`;
  shed requests (:class:`~repro.service.protocol.Overloaded`) and
  transport failures are retried with exponential backoff and *full
  jitter*, bounded by the policy's per-call budget.  The default is
  :data:`~repro.resilience.NO_RETRIES` — retrying is opt-in because an
  estimate is idempotent but a caller's surrounding loop may not be;
* :class:`SocketClient` reconnects transparently: a dead socket (server
  restart, connection reset, half-close mid-stream) is torn down and
  re-dialled up to ``reconnect_attempts`` times per request before the
  typed :class:`TransportError` surfaces.  The wire failure vocabulary
  is unchanged — ``TransportError`` is a *client-side* condition and
  never appears as a wire status.

The pre-redesign names (``Client``, ``TCPClient``) went through their
one release of :class:`DeprecationWarning` grace and are now removed;
:func:`connect` is the only construction path.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
from concurrent.futures import Future

from repro.engine.database import Database
from repro.resilience.retry import (
    NO_RETRIES,
    RetryPolicy,
    RetryTelemetry,
    call_with_retries,
)
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    Overloaded,
    ServedEstimate,
    ServiceError,
    decode_line,
    encode_line,
    result_from_wire,
)
from repro.service.service import EstimationService


class TransportError(ServiceError):
    """The connection to the server was lost and could not be restored.

    Client-side only: this status never travels on the wire (the wire
    vocabulary in :mod:`repro.service.protocol` is pinned), it is what a
    :class:`SocketClient` raises once its bounded reconnect budget is
    spent.  Subclasses :class:`ServiceError` so transport-agnostic
    callers keep a single except clause.
    """

    status = "transport"


def _default_retryable(exc: BaseException) -> bool:
    """What the clients retry by default: shed and transport failures.

    Deadline, invalid and closed responses are terminal — retrying them
    either cannot succeed or would violate the caller's deadline.
    """
    return isinstance(exc, (Overloaded, TransportError))


# ----------------------------------------------------------------------
# The client surface
# ----------------------------------------------------------------------
class EstimationClient:
    """The one client protocol every transport implements.

    Subclasses provide :meth:`estimate`, :meth:`estimate_batch`,
    :meth:`stats` and :meth:`close`; this base supplies the
    ``selectivity`` / ``cardinality`` conveniences, context management,
    and the shared retry plumbing (``retry`` policy, jitter ``rng``,
    injectable ``sleep``, per-client :class:`RetryTelemetry`).
    """

    def __init__(
        self,
        *,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ):
        self._retry = retry if retry is not None else NO_RETRIES
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        #: per-client retry accounting (attempts / retries / exhaustions)
        self.retry_telemetry = RetryTelemetry()

    # -- required surface ----------------------------------------------
    def estimate(self, query, timeout: float | None = None) -> ServedEstimate:
        raise NotImplementedError

    def estimate_batch(
        self, queries, timeout: float | None = None
    ) -> list[ServedEstimate]:
        """All queries submitted before any answer is awaited; answers
        in input order.  The first typed failure raises."""
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------
    def selectivity(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).selectivity

    def cardinality(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).cardinality

    def _with_retries(self, call):
        return call_with_retries(
            call,
            self._retry,
            retryable=_default_retryable,
            rng=self._rng,
            sleep=self._sleep,
            telemetry=self.retry_telemetry,
        )

    def __enter__(self) -> "EstimationClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessClient(EstimationClient):
    """Client over a live service object — no sockets, no JSON.

    ``service`` is anything with the
    :class:`~repro.service.service.EstimationService` call surface
    (``submit`` / ``estimate`` / ``stats_snapshot`` / ``close``); the
    cluster router (:mod:`repro.cluster`) qualifies, which is how
    ``connect(router)`` works.  ``owns_service=True`` makes
    :meth:`close` shut the service down too.
    """

    def __init__(
        self,
        service: EstimationService,
        owns_service: bool = False,
        *,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ):
        super().__init__(retry=retry, rng=rng, sleep=sleep)
        self.service = service
        self._owns_service = owns_service

    # ------------------------------------------------------------------
    @classmethod
    def serving(
        cls,
        statistics,
        *,
        database: Database | None = None,
        config: ServiceConfig | None = None,
        retry: RetryPolicy | None = None,
        **service_kwargs,
    ) -> "InProcessClient":
        """Spin up a private service around ``statistics`` and own it."""
        service = EstimationService(
            statistics, database=database, config=config, **service_kwargs
        )
        return cls(service, owns_service=True, retry=retry)

    # ------------------------------------------------------------------
    def submit(self, query, timeout: float | None = None):
        """Non-blocking: returns the request's future (no retry — the
        caller owns the future's failure handling)."""
        return self.service.submit(query, timeout=timeout)

    def estimate(self, query, timeout: float | None = None) -> ServedEstimate:
        return self._with_retries(
            lambda: self.service.estimate(query, timeout=timeout)
        )

    def estimate_batch(
        self, queries, timeout: float | None = None
    ) -> list[ServedEstimate]:
        queries = list(queries)
        wait = None
        if timeout is not None:
            wait = timeout + self.service.config.drain_timeout_s
        # submit-all-first so the burst coalesces into one micro-batch
        # window; a shed submit falls back to the per-item retry path
        # (and re-raises right away under NO_RETRIES)
        pending: list[Future | None] = []
        for query in queries:
            try:
                pending.append(self.service.submit(query, timeout=timeout))
            except Overloaded:
                if self._retry.max_attempts <= 1:
                    raise
                pending.append(None)
        answers: list[ServedEstimate] = []
        for query, future in zip(queries, pending):
            if future is None:
                answers.append(self.estimate(query, timeout=timeout))
            else:
                answers.append(future.result(timeout=wait))
        return answers

    def stats(self) -> dict:
        return self.service.stats_snapshot().to_dict()

    def close(self) -> None:
        if self._owns_service:
            self.service.close()


class SocketClient(EstimationClient):
    """A blocking JSON-lines client for the TCP front-end.

    Thread-safe for sequential request/response use (an internal lock
    serialises the socket); open one client per concurrent caller for
    parallel load.  :meth:`estimate_batch` pipelines: all request lines
    are written before any response line is read, so one client burst
    coalesces into the server's micro-batches.

    Transparent reconnect: when a round trip dies mid-stream (reset,
    half-close, server restart) the client tears the socket down and
    re-dials — with full-jitter backoff — up to ``reconnect_attempts``
    times before raising :class:`TransportError`.  Requests are re-sent
    on the fresh connection; estimation is idempotent so a re-send after
    a torn response is safe.  ``retry`` additionally re-submits shed
    (:class:`Overloaded`) answers, mirroring :class:`InProcessClient`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        *,
        reconnect_attempts: int = 3,
        reconnect_backoff: RetryPolicy | None = None,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ):
        if reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must be >= 0")
        super().__init__(retry=retry, rng=rng, sleep=sleep)
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._reconnect_attempts = reconnect_attempts
        self._reconnect_backoff = (
            reconnect_backoff
            if reconnect_backoff is not None
            else RetryPolicy(
                max_attempts=max(1, reconnect_attempts),
                base_backoff_s=0.02,
                max_backoff_s=0.5,
            )
        )
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._sock: socket.socket | None = None
        self._file = None
        #: completed transparent reconnects (tests assert on this)
        self.reconnects = 0
        with self._lock:
            self._connect_locked()

    # ------------------------------------------------------------------
    # Connection management (all under self._lock)
    # ------------------------------------------------------------------
    def _connect_locked(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            self._file = self._sock.makefile("rb")
        except OSError as exc:
            self._sock = None
            self._file = None
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc

    def _teardown_locked(self) -> None:
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        try:
            if file is not None:
                file.close()
        except OSError:  # pragma: no cover - best effort
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def _reconnect_locked(self, attempt: int, cause: Exception) -> None:
        """One bounded reconnect step (backoff happens *before* dialling
        so a flapping server is not hammered)."""
        self._teardown_locked()
        pause = self._reconnect_backoff.backoff(attempt, self._rng)
        if pause > 0.0:
            self._sleep(pause)
        self._connect_locked()
        self.reconnects += 1

    # ------------------------------------------------------------------
    def _exchange_locked(self, payloads: list[dict]) -> list[dict]:
        """Write every request line, then read until every id answered.

        Runs under ``self._lock``.  On a torn stream the *unanswered*
        payloads are re-sent on a fresh connection (bounded by the
        reconnect budget); answered ids are kept, so a mid-batch tear
        costs only the tail.
        """
        answers: dict[str, dict] = {}
        outstanding = {payload["id"]: payload for payload in payloads}
        last: Exception | None = None
        for attempt in range(self._reconnect_attempts + 1):
            if self._sock is None:
                try:
                    self._reconnect_locked(
                        max(0, attempt - 1), last or OSError("not connected")
                    )
                except TransportError as exc:
                    last = exc
                    continue
            try:
                blob = b"".join(
                    encode_line(payload) for payload in outstanding.values()
                )
                self._sock.sendall(blob)
                while outstanding:
                    line = self._file.readline()
                    if not line:
                        raise ConnectionResetError(
                            "server closed the connection mid-stream"
                        )
                    response = decode_line(line)
                    response_id = response.get("id")
                    if response_id not in outstanding:  # pragma: no cover
                        raise ServiceError(
                            f"unsolicited response id {response_id!r}"
                        )
                    outstanding.pop(response_id)
                    answers[response_id] = response
                return [answers[payload["id"]] for payload in payloads]
            except OSError as exc:
                # torn stream: drop the socket; the next attempt (if the
                # budget allows) re-dials and re-sends the unanswered tail
                last = exc
                self._teardown_locked()
        raise TransportError(
            f"connection to {self.host}:{self.port} lost and not "
            f"restored after {self._reconnect_attempts} "
            f"reconnect attempt(s): {last}"
        ) from last

    def _roundtrip_many(self, payloads: list[dict]) -> list[dict]:
        stamped = [
            dict(payload, id=str(next(self._ids))) for payload in payloads
        ]
        with self._lock:
            if self._closed:
                raise TransportError("client is closed")
            return self._exchange_locked(stamped)

    def _roundtrip(self, payload: dict) -> dict:
        return self._roundtrip_many([payload])[0]

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        response = self._roundtrip({"op": "stats"})
        return response.get("stats", {})

    @staticmethod
    def _request_payload(query, timeout: float | None) -> dict:
        payload: dict = {"op": "estimate"}
        if isinstance(query, str):
            payload["sql"] = query
        else:
            # a Query or predicate set: ship the parse-free spelling
            from repro.service.protocol import encode_predicates

            predicates = getattr(query, "predicates", query)
            payload["predicates"] = encode_predicates(predicates)
        if timeout is not None:
            payload["timeout_ms"] = timeout * 1000.0
        return payload

    def estimate(self, query, timeout: float | None = None) -> ServedEstimate:
        """Estimate one query (SQL string, ``Query``, or predicate set);
        raises the typed failure on non-ok."""
        payload = self._request_payload(query, timeout)
        return self._with_retries(
            lambda: result_from_wire(self._roundtrip(payload))
        )

    def estimate_batch(
        self, queries, timeout: float | None = None
    ) -> list[ServedEstimate]:
        payloads = [self._request_payload(q, timeout) for q in queries]
        if not payloads:
            return []
        responses = self._with_retries(
            lambda: self._roundtrip_many(payloads)
        )
        return [result_from_wire(response) for response in responses]

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._teardown_locked()


# ----------------------------------------------------------------------
# The one construction path
# ----------------------------------------------------------------------
def connect(target, **kwargs) -> EstimationClient:
    """Build the right :class:`EstimationClient` for ``target``.

    ========================================  ==============================
    ``target``                                client
    ========================================  ==============================
    ``EstimationService`` / cluster router    :class:`InProcessClient`
    catalog / snapshot / pool                 :class:`InProcessClient` owning
                                              a private service (pass
                                              ``database=`` / ``config=``)
    ``"host:port"`` or ``(host, port)``       :class:`SocketClient`
    ``ServerHandle`` (running server)         :class:`SocketClient` dialled
                                              at its bound address
    an ``EstimationClient``                   returned unchanged
    ========================================  ==============================

    Keyword arguments pass through to the chosen client's constructor
    (``retry=``, ``timeout_s=``, ``config=``, ...).
    """
    if isinstance(target, EstimationClient):
        if kwargs:
            raise TypeError(
                "cannot re-configure an existing client; got "
                + ", ".join(sorted(kwargs))
            )
        return target
    if isinstance(target, str):
        host, _, port = target.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"target {target!r} is not 'host:port'"
            )
        return SocketClient(host, int(port), **kwargs)
    if isinstance(target, tuple) and len(target) == 2:
        host, port = target
        return SocketClient(str(host), int(port), **kwargs)
    if hasattr(target, "submit") and hasattr(target, "stats_snapshot"):
        # a live service object (EstimationService or the cluster
        # router, which duck-types one)
        return InProcessClient(target, **kwargs)
    if hasattr(target, "address") and hasattr(target, "service"):
        # a ServerHandle: dial its bound socket
        host, port = target.address
        return SocketClient(host, port, **kwargs)
    if hasattr(target, "snapshot") or hasattr(target, "pool") or hasattr(
        target, "sits"
    ):
        # statistics (catalog / snapshot / pool): own a private service
        return InProcessClient.serving(target, **kwargs)
    raise TypeError(
        f"cannot connect to {type(target).__name__!r}: expected a service, "
        "statistics, 'host:port', (host, port), or a ServerHandle"
    )


__all__ = [
    "EstimationClient",
    "InProcessClient",
    "SocketClient",
    "TransportError",
    "connect",
]
