"""Clients of the estimation service.

:class:`Client` is the in-process client: it talks straight to an
:class:`~repro.service.service.EstimationService` (no sockets, no JSON)
and is what an embedded optimizer uses.  :class:`TCPClient` speaks the
JSON-lines wire protocol against a running server.  Both raise the same
typed failures (:class:`~repro.service.protocol.Overloaded`,
:class:`~repro.service.protocol.DeadlineExceeded`, ...) and return the
same :class:`~repro.service.protocol.ServedEstimate`, so callers can be
written transport-agnostically::

    with Client.in_process(catalog) as client:
        answer = client.estimate("SELECT * FROM sales, customer WHERE ...")
        answer.selectivity, answer.cardinality, answer.snapshot_version

Self-healing (:mod:`repro.resilience`):

* both clients take a ``retry`` :class:`~repro.resilience.RetryPolicy`;
  shed requests (:class:`~repro.service.protocol.Overloaded`) and
  transport failures are retried with exponential backoff and *full
  jitter*, bounded by the policy's per-call budget.  The default is
  :data:`~repro.resilience.NO_RETRIES` — retrying is opt-in because an
  estimate is idempotent but a caller's surrounding loop may not be;
* :class:`TCPClient` reconnects transparently: a dead socket (server
  restart, connection reset, half-close mid-stream) is torn down and
  re-dialled up to ``reconnect_attempts`` times per request before the
  typed :class:`TransportError` surfaces.  The wire failure vocabulary
  is unchanged — ``TransportError`` is a *client-side* condition and
  never appears as a wire status.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time

from repro.engine.database import Database
from repro.resilience.retry import (
    NO_RETRIES,
    RetryPolicy,
    RetryTelemetry,
    call_with_retries,
)
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    Overloaded,
    ServedEstimate,
    ServiceError,
    decode_line,
    encode_line,
    result_from_wire,
)
from repro.service.service import EstimationService


class TransportError(ServiceError):
    """The connection to the server was lost and could not be restored.

    Client-side only: this status never travels on the wire (the wire
    vocabulary in :mod:`repro.service.protocol` is pinned), it is what a
    :class:`TCPClient` raises once its bounded reconnect budget is
    spent.  Subclasses :class:`ServiceError` so transport-agnostic
    callers keep a single except clause.
    """

    status = "transport"


def _default_retryable(exc: BaseException) -> bool:
    """What the clients retry by default: shed and transport failures.

    Deadline, invalid and closed responses are terminal — retrying them
    either cannot succeed or would violate the caller's deadline.
    """
    return isinstance(exc, (Overloaded, TransportError))


class Client:
    """In-process client: submit/estimate against a live service.

    ``owns_service=True`` (what :meth:`in_process` sets) makes
    :meth:`close` shut the service down too.  ``retry`` bounds how many
    times a shed (:class:`Overloaded`) estimate is re-submitted with
    full-jitter backoff before the failure surfaces.
    """

    def __init__(
        self,
        service: EstimationService,
        owns_service: bool = False,
        *,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ):
        self.service = service
        self._owns_service = owns_service
        self._retry = retry if retry is not None else NO_RETRIES
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        #: per-client retry accounting (attempts / retries / exhaustions)
        self.retry_telemetry = RetryTelemetry()

    # ------------------------------------------------------------------
    @classmethod
    def in_process(
        cls,
        statistics,
        *,
        database: Database | None = None,
        config: ServiceConfig | None = None,
        retry: RetryPolicy | None = None,
        **service_kwargs,
    ) -> "Client":
        """Spin up a private service around ``statistics`` and own it."""
        service = EstimationService(
            statistics, database=database, config=config, **service_kwargs
        )
        return cls(service, owns_service=True, retry=retry)

    # ------------------------------------------------------------------
    def submit(self, query, timeout: float | None = None):
        """Non-blocking: returns the request's future (no retry — the
        caller owns the future's failure handling)."""
        return self.service.submit(query, timeout=timeout)

    def estimate(self, query, timeout: float | None = None) -> ServedEstimate:
        return call_with_retries(
            lambda: self.service.estimate(query, timeout=timeout),
            self._retry,
            retryable=_default_retryable,
            rng=self._rng,
            sleep=self._sleep,
            telemetry=self.retry_telemetry,
        )

    def selectivity(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).selectivity

    def cardinality(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).cardinality

    def stats(self) -> dict:
        return self.service.stats_snapshot().to_dict()

    def close(self) -> None:
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TCPClient:
    """A blocking JSON-lines client for the TCP front-end.

    Thread-safe for sequential request/response use (an internal lock
    serialises the socket); open one client per concurrent caller for
    parallel load.

    Transparent reconnect: when a round trip dies mid-stream (reset,
    half-close, server restart) the client tears the socket down and
    re-dials — with full-jitter backoff — up to ``reconnect_attempts``
    times before raising :class:`TransportError`.  Requests are re-sent
    on the fresh connection; estimation is idempotent so a re-send after
    a torn response is safe.  ``retry`` additionally re-submits shed
    (:class:`Overloaded`) answers, mirroring :class:`Client`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        *,
        reconnect_attempts: int = 3,
        reconnect_backoff: RetryPolicy | None = None,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ):
        if reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must be >= 0")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._reconnect_attempts = reconnect_attempts
        self._reconnect_backoff = (
            reconnect_backoff
            if reconnect_backoff is not None
            else RetryPolicy(
                max_attempts=max(1, reconnect_attempts),
                base_backoff_s=0.02,
                max_backoff_s=0.5,
            )
        )
        self._retry = retry if retry is not None else NO_RETRIES
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._sock: socket.socket | None = None
        self._file = None
        #: completed transparent reconnects (tests assert on this)
        self.reconnects = 0
        self.retry_telemetry = RetryTelemetry()
        with self._lock:
            self._connect_locked()

    # ------------------------------------------------------------------
    # Connection management (all under self._lock)
    # ------------------------------------------------------------------
    def _connect_locked(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            self._file = self._sock.makefile("rb")
        except OSError as exc:
            self._sock = None
            self._file = None
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc

    def _teardown_locked(self) -> None:
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        try:
            if file is not None:
                file.close()
        except OSError:  # pragma: no cover - best effort
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def _reconnect_locked(self, attempt: int, cause: Exception) -> None:
        """One bounded reconnect step (backoff happens *before* dialling
        so a flapping server is not hammered)."""
        self._teardown_locked()
        pause = self._reconnect_backoff.backoff(attempt, self._rng)
        if pause > 0.0:
            self._sleep(pause)
        self._connect_locked()
        self.reconnects += 1

    # ------------------------------------------------------------------
    def _roundtrip(self, payload: dict) -> dict:
        request_id = str(next(self._ids))
        payload = dict(payload, id=request_id)
        line = b""
        with self._lock:
            if self._closed:
                raise TransportError("client is closed")
            last: Exception | None = None
            for attempt in range(self._reconnect_attempts + 1):
                if self._sock is None:
                    try:
                        self._reconnect_locked(
                            max(0, attempt - 1), last or OSError("not connected")
                        )
                    except TransportError as exc:
                        last = exc
                        continue
                try:
                    self._sock.sendall(encode_line(payload))
                    line = self._file.readline()
                    if not line:
                        raise ConnectionResetError(
                            "server closed the connection mid-stream"
                        )
                    break
                except OSError as exc:
                    # torn stream: drop the socket; the next attempt (if
                    # the budget allows) re-dials and re-sends
                    last = exc
                    self._teardown_locked()
            else:
                raise TransportError(
                    f"connection to {self.host}:{self.port} lost and not "
                    f"restored after {self._reconnect_attempts} "
                    f"reconnect attempt(s): {last}"
                ) from last
        response = decode_line(line)
        if response.get("id") != request_id:  # pragma: no cover - paranoia
            raise ServiceError(
                f"response id {response.get('id')!r} != request {request_id!r}"
            )
        return response

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        response = self._roundtrip({"op": "stats"})
        return response.get("stats", {})

    def estimate(
        self, sql: str, timeout: float | None = None
    ) -> ServedEstimate:
        """Estimate one SQL query; raises the typed failure on non-ok."""
        payload: dict = {"op": "estimate", "sql": sql}
        if timeout is not None:
            payload["timeout_ms"] = timeout * 1000.0
        return call_with_retries(
            lambda: result_from_wire(self._roundtrip(payload)),
            self._retry,
            retryable=_default_retryable,
            rng=self._rng,
            sleep=self._sleep,
            telemetry=self.retry_telemetry,
        )

    def selectivity(self, sql: str, timeout: float | None = None) -> float:
        return self.estimate(sql, timeout=timeout).selectivity

    def cardinality(self, sql: str, timeout: float | None = None) -> float:
        return self.estimate(sql, timeout=timeout).cardinality

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._teardown_locked()

    def __enter__(self) -> "TCPClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["Client", "TCPClient", "TransportError"]
