"""Clients of the estimation service.

:class:`Client` is the in-process client: it talks straight to an
:class:`~repro.service.service.EstimationService` (no sockets, no JSON)
and is what an embedded optimizer uses.  :class:`TCPClient` speaks the
JSON-lines wire protocol against a running server.  Both raise the same
typed failures (:class:`~repro.service.protocol.Overloaded`,
:class:`~repro.service.protocol.DeadlineExceeded`, ...) and return the
same :class:`~repro.service.protocol.ServedEstimate`, so callers can be
written transport-agnostically::

    with Client.in_process(catalog) as client:
        answer = client.estimate("SELECT * FROM sales, customer WHERE ...")
        answer.selectivity, answer.cardinality, answer.snapshot_version
"""

from __future__ import annotations

import itertools
import socket
import threading

from repro.engine.database import Database
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    ServedEstimate,
    ServiceError,
    decode_line,
    encode_line,
    result_from_wire,
)
from repro.service.service import EstimationService


class Client:
    """In-process client: submit/estimate against a live service.

    ``owns_service=True`` (what :meth:`in_process` sets) makes
    :meth:`close` shut the service down too.
    """

    def __init__(self, service: EstimationService, owns_service: bool = False):
        self.service = service
        self._owns_service = owns_service

    # ------------------------------------------------------------------
    @classmethod
    def in_process(
        cls,
        statistics,
        *,
        database: Database | None = None,
        config: ServiceConfig | None = None,
        **service_kwargs,
    ) -> "Client":
        """Spin up a private service around ``statistics`` and own it."""
        service = EstimationService(
            statistics, database=database, config=config, **service_kwargs
        )
        return cls(service, owns_service=True)

    # ------------------------------------------------------------------
    def submit(self, query, timeout: float | None = None):
        """Non-blocking: returns the request's future."""
        return self.service.submit(query, timeout=timeout)

    def estimate(self, query, timeout: float | None = None) -> ServedEstimate:
        return self.service.estimate(query, timeout=timeout)

    def selectivity(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).selectivity

    def cardinality(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).cardinality

    def stats(self) -> dict:
        return self.service.stats_snapshot().to_dict()

    def close(self) -> None:
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TCPClient:
    """A blocking JSON-lines client for the TCP front-end.

    Thread-safe for sequential request/response use (an internal lock
    serialises the socket); open one client per concurrent caller for
    parallel load.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def _roundtrip(self, payload: dict) -> dict:
        request_id = str(next(self._ids))
        payload = dict(payload, id=request_id)
        with self._lock:
            self._sock.sendall(encode_line(payload))
            line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        response = decode_line(line)
        if response.get("id") != request_id:  # pragma: no cover - paranoia
            raise ServiceError(
                f"response id {response.get('id')!r} != request {request_id!r}"
            )
        return response

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        response = self._roundtrip({"op": "stats"})
        return response.get("stats", {})

    def estimate(
        self, sql: str, timeout: float | None = None
    ) -> ServedEstimate:
        """Estimate one SQL query; raises the typed failure on non-ok."""
        payload: dict = {"op": "estimate", "sql": sql}
        if timeout is not None:
            payload["timeout_ms"] = timeout * 1000.0
        return result_from_wire(self._roundtrip(payload))

    def selectivity(self, sql: str, timeout: float | None = None) -> float:
        return self.estimate(sql, timeout=timeout).selectivity

    def cardinality(self, sql: str, timeout: float | None = None) -> float:
        return self.estimate(sql, timeout=timeout).cardinality

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "TCPClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["Client", "TCPClient"]
