"""The concurrent estimation-serving engine.

:class:`EstimationService` turns the single-threaded
:class:`~repro.catalog.EstimationSession` into a request path:

* a **bounded admission queue** (:class:`~repro.service.queue.AdmissionQueue`)
  in front of a **worker-thread pool**; every worker owns one
  snapshot-pinned session, so the session single-owner contract holds by
  construction;
* **micro-batching** — a worker coalesces up to ``max_batch`` queued
  requests per tick.  Within a batch, requests with the *same* predicate
  set are answered by one DP run (dedup), and requests that merely
  *share decomposition factors* reuse the session's pool-pure
  match/estimate caches, so a batch of similar queries costs far less
  than N isolated calls;
* **admission control** — a full queue sheds immediately with the typed
  :class:`~repro.service.protocol.Overloaded`; per-request deadlines are
  enforced at dequeue (:class:`~repro.service.protocol.DeadlineExceeded`)
  so a backlogged worker never burns DP time on answers nobody is
  waiting for; :meth:`close` drains gracefully and flushes whatever
  cannot be served with :class:`~repro.service.protocol.ServiceClosed`;
* **hot snapshot swap** — between batches every worker compares its
  session's pinned version with ``catalog.version`` and rolls to a
  fresh session on mismatch.  In-flight batches keep their pinned
  snapshot (the catalog is copy-on-write), which extends the catalog's
  old-snapshot-consistency guarantee to the concurrent path: every
  response carries the ``snapshot_version`` it was computed on and is
  bit-identical to a direct estimator call on that snapshot.

Observability: queue-depth gauge, served/shed counters, batch and
snapshot-swap counters, and a p50/p95/p99-capable latency histogram —
all under the ``service`` namespace of :meth:`stats_snapshot`, with the
workers' session telemetry merged in under the usual namespaces.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace as _replace

from repro.catalog.catalog import CatalogSnapshot, StatisticsCatalog
from repro.catalog.session import EstimationSession
from repro.core.errors import ErrorFunction
from repro.core.predicates import PredicateSet, tables_of
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import (
    EstimationFault,
    POINT_WORKER_BATCH,
    active as _fault_plan,
)
from repro.stats.pool import SITPool

from repro.service.config import ServiceConfig
from repro.service.protocol import (
    DeadlineExceeded,
    InvalidRequest,
    Overloaded,
    ServedEstimate,
    ServiceClosed,
    ServiceError,
)


@dataclass(eq=False)
class _Pending:
    """One admitted request travelling queue -> worker -> future."""

    predicates: frozenset
    tables: frozenset[str]
    future: Future
    submitted_at: float
    deadline: float | None = None
    #: filled by the worker for telemetry assertions in tests
    batch_size: int = field(default=1, compare=False)
    #: times this request was re-queued after a worker crash (bounded by
    #: ``ServiceConfig.requeue_limit``)
    requeues: int = field(default=0, compare=False)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class EstimationService:
    """A thread-pooled, micro-batching front end over ``getSelectivity``.

    ``statistics`` may be a :class:`~repro.catalog.StatisticsCatalog`
    (hot snapshot swap active), a fixed
    :class:`~repro.catalog.CatalogSnapshot`, or a bare
    :class:`~repro.stats.pool.SITPool` (``database`` then required).
    """

    def __init__(
        self,
        statistics: "StatisticsCatalog | CatalogSnapshot | SITPool",
        *,
        database: Database | None = None,
        config: ServiceConfig | None = None,
        error_function: ErrorFunction | None = None,
        engine: str = "bitmask",
        backend: str | None = None,
        name: str = "repro.service",
    ):
        from repro.service.queue import AdmissionQueue

        self.config = config if config is not None else ServiceConfig()
        if backend is not None:
            # kwarg convenience: `connect(catalog, backend="bn")` routes
            # here; the config field stays the single source of truth
            self.config = _replace(self.config, backend=backend)
        self._statistics = statistics
        self._catalog = (
            statistics if isinstance(statistics, StatisticsCatalog) else None
        )
        self._error_function = error_function
        self._engine = engine
        self.name = name
        self.database = self._resolve_database(statistics, database)
        self._queue: AdmissionQueue[_Pending] = AdmissionQueue(
            self.config.queue_depth
        )
        self._closed = threading.Event()
        self._draining = threading.Event()
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._sessions: list[EstimationSession] = []
        #: telemetry of retired sessions, folded in at retirement so the
        #: session objects (and their pinned pools) can be released — see
        #: :meth:`_retire_session`
        self._retired_registry = MetricsRegistry()
        self._sessions_lock = threading.Lock()
        # -- self-healing state (repro.resilience) ----------------------
        self._breaker = CircuitBreaker(
            threshold=self.config.healing.breaker_threshold,
            window_s=self.config.healing.breaker_window_s,
        )
        #: snapshot versions the breaker has tripped on
        self._bad_versions: set[int] = set()
        #: the last snapshot that served a batch without a worker fault;
        #: sessions roll back to it while the current version is bad
        self._last_good: CatalogSnapshot | None = None
        self._restarts = 0
        # -- self-tuning loop (repro.advisor) ---------------------------
        #: constructed only when configured *and* serving from a catalog
        #: with a database (the loop needs the refresh path and an
        #: executor for truth); otherwise tuning is silently absent
        self.advisor = None
        self._tuning_thread: threading.Thread | None = None
        self._tuning_lock = threading.Lock()
        #: optional :class:`repro.obs.StalenessTracker` joined by the
        #: ingest pipeline (see :meth:`attach_staleness`); when present,
        #: worker sessions stamp answers with ``staleness_s`` provenance
        self.staleness_tracker = None
        if (
            self.config.advisor is not None
            and self._catalog is not None
            and self._catalog.database is not None
        ):
            from repro.advisor import SelfTuningAdvisor

            self.advisor = SelfTuningAdvisor(
                self._catalog,
                config=self.config.advisor,
                name=f"{name}-advisor",
            )
        self._workers_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{name}-worker-{index}",
                daemon=True,
            )
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_database(statistics, database: Database | None) -> Database:
        if database is not None:
            return database
        resolved = getattr(statistics, "database", None)
        if resolved is None:
            raise ValueError(
                "a database is required (pass one explicitly, or serve "
                "from a catalog built with a database)"
            )
        return resolved

    def _target_statistics(self):
        """What a fresh session should pin: the catalog's current
        snapshot, or the last-known-good one while the breaker holds the
        current version bad (the rollback half of the circuit breaker)."""
        if self._catalog is not None:
            with self._sessions_lock:
                bad = self._catalog.version in self._bad_versions
                last_good = self._last_good
            if bad and last_good is not None:
                return last_good
        return self._statistics

    def _make_session(self) -> EstimationSession:
        """A fresh session pinned to the target snapshot."""
        session = EstimationSession(
            self._target_statistics(),
            self._error_function,
            database=self.database,
            backend=self.config.backend,
            engine=self._engine,
            plan_cache=self.config.plan_cache,
        )
        if self.advisor is not None:
            session.feedback_sink = self.advisor.record_result
        if self.staleness_tracker is not None:
            session.staleness_tracker = self.staleness_tracker
        with self._sessions_lock:
            self._sessions.append(session)
        return session

    def _acquire_session(self) -> EstimationSession | None:
        """:meth:`_make_session` with snapshot-pin fault fallback.

        A pin fault (injected or real) is retried against the
        last-known-good snapshot; after three faulted attempts the
        worker gives up (``None``) and lets the restart budget decide.
        """
        for attempt in range(3):
            try:
                return self._make_session()
            except EstimationFault as fault:
                self._record_fault(fault)
        return None

    def _record_fault(self, fault: EstimationFault) -> None:
        with self._metrics_lock:
            self.metrics.counter(f"resilience.faults_{fault.kind}").inc()

    def _retire_session(self, session: EstimationSession) -> None:
        """Drop a session from rotation *and from memory*.

        Its lifetime telemetry is folded into ``_retired_registry`` so
        ``stats_snapshot`` keeps the totals, while the session object —
        and through it the pinned snapshot's pool, caches and memo — is
        released.  (Keeping retired session objects alive was the
        hot-swap leak: a long-running service accumulated every pool it
        had ever served.)
        """
        registry = session.metrics_registry()
        with self._sessions_lock:
            if session in self._sessions:
                self._sessions.remove(session)
            self._retired_registry.merge(registry)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _coerce_predicates(
        self, query: "Query | PredicateSet | str"
    ) -> tuple[frozenset, frozenset[str]]:
        if isinstance(query, str):
            from repro.sql import parse_query

            try:
                query = parse_query(query, self.database.schema)
            except Exception as exc:
                raise InvalidRequest(str(exc)) from exc
        if isinstance(query, Query):
            predicates = query.predicates
            tables = query.tables
        else:
            try:
                predicates = frozenset(query)
                tables = tables_of(predicates)
            except TypeError as exc:
                raise InvalidRequest(
                    f"unsupported query type {type(query).__name__}"
                ) from exc
        if not predicates:
            raise InvalidRequest("query has no predicates")
        return predicates, frozenset(tables)

    def submit(
        self,
        query: "Query | PredicateSet | str",
        timeout: float | None = None,
    ) -> "Future[ServedEstimate]":
        """Admit one request; returns its future.

        Raises :class:`ServiceClosed` after :meth:`close`,
        :class:`InvalidRequest` on unparsable input and — the explicit
        load-shedding path — :class:`Overloaded` the moment the bounded
        queue is at depth.  Never blocks the caller on a full queue.
        """
        if self._closed.is_set() or self._draining.is_set():
            raise ServiceClosed(f"{self.name} is shutting down")
        predicates, tables = self._coerce_predicates(query)
        now = time.monotonic()
        if timeout is None:
            timeout = self.config.default_timeout_s
        pending = _Pending(
            predicates=predicates,
            tables=tables,
            future=Future(),
            submitted_at=now,
            deadline=None if timeout is None else now + timeout,
        )
        try:
            admitted = self._queue.offer(pending)
        except RuntimeError as exc:
            raise ServiceClosed(f"{self.name} is shutting down") from exc
        if not admitted:
            with self._metrics_lock:
                self.metrics.counter("service.shed_overload").inc()
            raise Overloaded(
                f"queue at depth {self.config.queue_depth}; request shed"
            )
        with self._metrics_lock:
            self.metrics.counter("service.submitted").inc()
        return pending.future

    def estimate(
        self,
        query: "Query | PredicateSet | str",
        timeout: float | None = None,
    ) -> ServedEstimate:
        """Blocking convenience: submit and wait for the answer."""
        future = self.submit(query, timeout=timeout)
        wait = None
        if timeout is not None:
            # request deadline plus service slack; the worker-side
            # deadline is what actually governs shedding
            wait = timeout + self.config.drain_timeout_s
        return future.result(timeout=wait)

    def selectivity(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).selectivity

    def cardinality(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).cardinality

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        session = self._acquire_session()
        if session is None:
            # could not pin any snapshot; let the restart budget decide
            self._respawn_worker()
            return
        config = self.config
        while True:
            batch = self._queue.take_batch(
                config.max_batch, config.batch_window_s
            )
            if not batch:
                if self._queue.closed:
                    self._retire_session(session)
                    return
                continue
            rolled = self._roll_snapshot(session)
            if rolled is None:
                # snapshot-pin faults exhausted while rolling: treat the
                # batch as orphaned and crash-restart this worker
                self._handle_worker_crash(session, batch, None)
                self._respawn_worker()
                return
            session = rolled
            try:
                self._serve_batch(session, batch)
            except EstimationFault as fault:
                # a worker-level fault (injected or real): requeue the
                # orphaned requests, record against the breaker, retire
                # the session, and resurrect the worker
                self._handle_worker_crash(session, batch, fault)
                self._respawn_worker()
                return
            except BaseException as exc:  # pragma: no cover - safety net
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(
                            ServiceError(f"worker failure: {exc}")
                        )
            else:
                self._note_good_snapshot(session)
                self._maybe_tune()

    def _maybe_tune(self) -> None:
        """Between batches: kick one background tuning tick if due.

        Never blocks serving: the tick runs on its own daemon thread, at
        most one at a time (non-blocking lock), rate-limited by
        ``AdvisorConfig.min_interval_s``, and an unexpected tick failure
        is counted — not raised — so a broken advisor degrades to a
        no-op.
        """
        advisor = self.advisor
        if (
            advisor is None
            or self._draining.is_set()
            or self._closed.is_set()
            or not advisor.ready()
        ):
            return
        if not self._tuning_lock.acquire(blocking=False):
            return

        def run() -> None:
            try:
                advisor.tick()
            except Exception:  # pragma: no cover - tick() already guards
                with self._metrics_lock:
                    self.metrics.counter("advisor.failed_ticks").inc()
            finally:
                self._tuning_lock.release()

        thread = threading.Thread(
            target=run, name=f"{self.name}-advisor", daemon=True
        )
        self._tuning_thread = thread
        thread.start()

    def attach_staleness(self, tracker) -> None:
        """Join a :class:`repro.obs.StalenessTracker` (fed by the ingest
        pipeline) so every answer carries ``staleness_s`` provenance for
        the tables it touched.  Live worker sessions pick the tracker up
        immediately; new sessions inherit it at construction.  Also
        forwarded to the serving catalog for ``status()`` reporting."""
        self.staleness_tracker = tracker
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            session.staleness_tracker = tracker
        if self._catalog is not None and hasattr(
            self._catalog, "attach_staleness"
        ):
            self._catalog.attach_staleness(tracker)

    def tune(self):
        """Run one tuning tick synchronously (smoke tests, operators).

        Returns the :class:`~repro.advisor.loop.TuningReport`, or
        ``None`` when no advisor is configured.  Serialized against the
        background tick through the same lock.
        """
        advisor = self.advisor
        if advisor is None:
            return None
        with self._tuning_lock:
            return advisor.tick()

    def _expected_version(self) -> int | None:
        """The snapshot version a worker *should* be pinned to right now:
        the catalog's current version, or — while the breaker holds that
        version bad — the last-known-good version."""
        if self._catalog is None:
            return None
        with self._sessions_lock:
            version = self._catalog.version
            if version in self._bad_versions and self._last_good is not None:
                return self._last_good.version
            return version

    def _roll_snapshot(
        self, session: EstimationSession
    ) -> EstimationSession | None:
        """Between batches: adopt the target snapshot (catalog's latest,
        or the rollback target while the breaker is open).

        In-flight work is untouched — the old session (and its pinned
        pool) stays fully usable; it is simply retired from rotation.
        Comparing against the *expected target* version (not bare
        ``is_current``) keeps a rolled-back worker from thrashing: while
        the current catalog version is bad, a session pinned to the
        last-known-good snapshot is already where it should be.

        Returns ``None`` when pinning the fresh snapshot keeps faulting
        (the caller treats that as a worker crash).
        """
        expected = self._expected_version()
        if expected is None or session.snapshot_version == expected:
            return session
        fresh = self._acquire_session()
        if fresh is None:
            return None
        self._retire_session(session)
        with self._metrics_lock:
            self.metrics.counter("service.snapshot_swaps").inc()
        return fresh

    def _note_good_snapshot(self, session: EstimationSession) -> None:
        """A batch served without a worker fault: remember the snapshot
        as the breaker's rollback target."""
        snapshot = session.snapshot
        if snapshot is None:
            return
        with self._sessions_lock:
            if snapshot.version not in self._bad_versions:
                self._last_good = snapshot

    def _handle_worker_crash(
        self,
        session: EstimationSession,
        batch: list[_Pending],
        fault: EstimationFault | None,
    ) -> None:
        """A worker died mid-batch: salvage its work and its telemetry.

        Unanswered requests are re-queued (bounded by
        ``ServiceConfig.requeue_limit``) so another worker can serve
        them; past the bound — or once the queue is closed — they are
        failed with a typed :class:`ServiceError`.  The fault counts
        against the per-snapshot circuit breaker; on trip the snapshot
        version is marked bad and fresh sessions roll back to the
        last-known-good snapshot.
        """
        version = session.snapshot_version
        if fault is not None:
            self._record_fault(fault)
        with self._metrics_lock:
            self.metrics.counter("resilience.worker_crashes").inc()
        self._retire_session(session)
        requeued = 0
        for pending in batch:
            if pending.future.done():
                continue
            pending.requeues += 1
            if pending.requeues <= self.config.healing.requeue_limit:
                try:
                    if self._queue.offer(pending):
                        requeued += 1
                        continue
                except RuntimeError:
                    pass  # queue closed underneath us; fall through
            pending.future.set_exception(
                ServiceError(
                    "worker crashed while serving this request"
                    + (f": {fault}" if fault is not None else "")
                )
            )
        if requeued:
            with self._metrics_lock:
                self.metrics.counter("resilience.requeues").inc(requeued)
        if self._breaker.record_fault(version):
            self._trip_snapshot(version)

    def _trip_snapshot(self, version: int) -> None:
        """The breaker tripped on ``version``: mark it bad so fresh
        sessions pin the last-known-good snapshot instead."""
        with self._sessions_lock:
            self._bad_versions.add(version)
            rollback = (
                self._last_good is not None
                and self._last_good.version != version
            )
        if rollback:
            with self._metrics_lock:
                self.metrics.counter("resilience.snapshot_rollbacks").inc()

    def _respawn_worker(self) -> None:
        """Resurrect a crashed worker, bounded by ``max_worker_restarts``.

        No respawn happens once the service is closing — the remaining
        queue is flushed by :meth:`close` — or once the restart budget is
        spent (which bounds a crash loop against a poisoned snapshot).
        """
        if self._closed.is_set() or self._queue.closed:
            return
        with self._workers_lock:
            if self._restarts >= self.config.healing.max_worker_restarts:
                return
            self._restarts += 1
            index = len(self._workers)
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"{self.name}-worker-r{index}",
                daemon=True,
            )
            self._workers.append(worker)
        with self._metrics_lock:
            self.metrics.counter("resilience.worker_restarts").inc()
        worker.start()

    def _serve_batch(
        self, session: EstimationSession, batch: list[_Pending]
    ) -> None:
        session.assert_pinned()
        plan = _fault_plan()
        if plan is not None:
            # worker-batch injection point: the worker thread dies right
            # as it starts executing a micro-batch (chaos tests exercise
            # the requeue + resurrection path through this)
            plan.check(
                POINT_WORKER_BATCH,
                detail=f"version={session.snapshot_version}",
            )
        now = time.monotonic()
        batch_size = len(batch)

        # dedup identical predicate sets (one answer serves them all),
        # then hand the distinct sets to the session's batched path: it
        # groups them by *shape* and replays every compiled-plan template
        # group as one stacked numpy op (repro.core.plancache)
        served = 0
        shed_deadline = 0
        deduplicated = 0
        degraded = 0
        latencies: list[float] = []
        answers: list[tuple[_Pending, ServedEstimate]] = []
        snapshot_version = session.snapshot_version
        order: list[frozenset] = []
        live_groups: dict[frozenset, list[_Pending]] = {}
        for pending in batch:
            pending.batch_size = batch_size
            if pending.expired(now):
                shed_deadline += 1
                pending.future.set_exception(
                    DeadlineExceeded("deadline passed while queued; shedding")
                )
                continue
            members = live_groups.get(pending.predicates)
            if members is None:
                order.append(pending.predicates)
                live_groups[pending.predicates] = [pending]
            else:
                members.append(pending)
        results: "list | None" = None
        if order:
            try:
                results = session.estimate_batch(order)
            except EstimationFault:
                # only possible on a strict session; surfaces as a
                # worker crash so the requeue/breaker path engages
                raise
            except Exception as exc:
                for members in live_groups.values():
                    for pending in members:
                        pending.future.set_exception(
                            ServiceError(f"estimation failed: {exc}")
                        )
        for predicates, result in zip(order, results or ()):
            live = live_groups[predicates]
            if result.degradation_level:
                degraded += len(live)
            cross = self.database.cross_product_size(live[0].tables)
            done = time.monotonic()
            for index, pending in enumerate(live):
                latency_ms = (done - pending.submitted_at) * 1000.0
                answer = ServedEstimate(
                    selectivity=result.selectivity,
                    cardinality=result.selectivity * cross,
                    error=result.error,
                    snapshot_version=snapshot_version,
                    latency_ms=latency_ms,
                    batch_size=batch_size,
                    deduplicated=index > 0,
                    degradation_level=result.degradation_level,
                    excluded_sits=result.excluded_sits,
                    plan_cache_hit=result.plan_cache_hit,
                    backend=result.backend,
                    error_bound=result.error_bound,
                    staleness_s=result.staleness_s,
                )
                if index > 0:
                    deduplicated += 1
                served += 1
                latencies.append(latency_ms)
                answers.append((pending, answer))

        # counters first, then futures: a client that reads stats right
        # after its answer arrives must see that answer counted
        with self._metrics_lock:
            metrics = self.metrics
            latency_histogram = metrics.histogram("service.latency_ms")
            for latency_ms in latencies:
                latency_histogram.observe(latency_ms)
            metrics.counter("service.batches").inc()
            metrics.counter("service.batched_requests").inc(batch_size)
            metrics.counter("service.served").inc(served)
            metrics.counter("service.deduplicated").inc(deduplicated)
            if degraded:
                metrics.counter("service.degraded").inc(degraded)
            if shed_deadline:
                metrics.counter("service.shed_deadline").inc(shed_deadline)
            metrics.histogram("service.batch_size").observe(batch_size)
        for pending, answer in answers:
            pending.future.set_result(answer)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop admission and shut the pool down.

        With ``drain=True`` (default) every already-admitted request is
        still served (or deadline-shed) before the workers exit; with
        ``drain=False`` the backlog is flushed immediately with
        :class:`ServiceClosed`.  Returns ``True`` on a clean shutdown
        within the timeout.  Idempotent.
        """
        if self._closed.is_set():
            return True
        timeout = timeout if timeout is not None else self.config.drain_timeout_s
        self._draining.set()
        clean = True
        if drain:
            clean = self._queue.wait_empty(timeout=timeout)
        self._queue.close()
        if not drain or not clean:
            for pending in self._queue.drain():
                if not pending.future.done():
                    pending.future.set_exception(
                        ServiceClosed("service closed before serving")
                    )
        with self._workers_lock:
            workers = list(self._workers)
        for worker in workers:
            worker.join(timeout=timeout)
            clean = clean and not worker.is_alive()
        tuning = self._tuning_thread
        if tuning is not None and tuning.is_alive():
            tuning.join(timeout=timeout)
        self._closed.set()
        return clean

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """Service counters plus the merged telemetry of every session
        the pool has used (active and retired)."""
        registry = MetricsRegistry()
        with self._metrics_lock:
            registry.merge(self.metrics)
        registry.gauge("service.queue_depth").set(float(len(self._queue)))
        with self._workers_lock:
            alive = sum(1 for worker in self._workers if worker.is_alive())
        registry.gauge("service.workers").set(float(alive))
        registry.gauge("service.closed").set(1.0 if self.closed else 0.0)
        with self._sessions_lock:
            sessions = list(self._sessions)
            registry.merge(self._retired_registry)
            registry.gauge("service.active_sessions").set(
                float(len(sessions))
            )
        for session in sessions:
            registry.merge(session.metrics_registry())
        breaker = self._breaker.as_dict()
        registry.counter("resilience.breaker_trips").inc(
            breaker.get("breaker_trips", 0.0)
        )
        registry.gauge("resilience.breaker_open").set(
            breaker.get("breaker_open", 0.0)
        )
        plan = _fault_plan()
        if plan is not None:
            for key, count in plan.stats().items():
                registry.counter(f"resilience.injected_{key}").inc(count)
        if self.advisor is not None:
            registry.merge(self.advisor.metrics_registry())
        if self.staleness_tracker is not None:
            for name, value in self.staleness_tracker.metrics().items():
                registry.gauge(f"ingest.{name}").set(float(value))
        return registry

    def stats_snapshot(self) -> StatsSnapshot:
        """The unified snapshot: request-path state under ``service``,
        worker-session cache/catalog telemetry under the usual
        namespaces."""
        return StatsSnapshot.from_registry(
            self.metrics_registry(),
            meta={
                "subsystem": "service",
                "name": self.name,
                "workers": len(self._workers),
                "queue_depth_limit": self.config.queue_depth,
                "max_batch": self.config.max_batch,
                "engine": self._engine,
            },
        )


__all__ = ["EstimationService"]
