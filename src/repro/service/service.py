"""The concurrent estimation-serving engine.

:class:`EstimationService` turns the single-threaded
:class:`~repro.catalog.EstimationSession` into a request path:

* a **bounded admission queue** (:class:`~repro.service.queue.AdmissionQueue`)
  in front of a **worker-thread pool**; every worker owns one
  snapshot-pinned session, so the session single-owner contract holds by
  construction;
* **micro-batching** — a worker coalesces up to ``max_batch`` queued
  requests per tick.  Within a batch, requests with the *same* predicate
  set are answered by one DP run (dedup), and requests that merely
  *share decomposition factors* reuse the session's pool-pure
  match/estimate caches, so a batch of similar queries costs far less
  than N isolated calls;
* **admission control** — a full queue sheds immediately with the typed
  :class:`~repro.service.protocol.Overloaded`; per-request deadlines are
  enforced at dequeue (:class:`~repro.service.protocol.DeadlineExceeded`)
  so a backlogged worker never burns DP time on answers nobody is
  waiting for; :meth:`close` drains gracefully and flushes whatever
  cannot be served with :class:`~repro.service.protocol.ServiceClosed`;
* **hot snapshot swap** — between batches every worker compares its
  session's pinned version with ``catalog.version`` and rolls to a
  fresh session on mismatch.  In-flight batches keep their pinned
  snapshot (the catalog is copy-on-write), which extends the catalog's
  old-snapshot-consistency guarantee to the concurrent path: every
  response carries the ``snapshot_version`` it was computed on and is
  bit-identical to a direct estimator call on that snapshot.

Observability: queue-depth gauge, served/shed counters, batch and
snapshot-swap counters, and a p50/p95/p99-capable latency histogram —
all under the ``service`` namespace of :meth:`stats_snapshot`, with the
workers' session telemetry merged in under the usual namespaces.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.catalog.catalog import CatalogSnapshot, StatisticsCatalog
from repro.catalog.session import EstimationSession
from repro.core.errors import ErrorFunction
from repro.core.predicates import PredicateSet, tables_of
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.stats.pool import SITPool

from repro.service.config import ServiceConfig
from repro.service.protocol import (
    DeadlineExceeded,
    InvalidRequest,
    Overloaded,
    ServedEstimate,
    ServiceClosed,
    ServiceError,
)


@dataclass(eq=False)
class _Pending:
    """One admitted request travelling queue -> worker -> future."""

    predicates: frozenset
    tables: frozenset[str]
    future: Future
    submitted_at: float
    deadline: float | None = None
    #: filled by the worker for telemetry assertions in tests
    batch_size: int = field(default=1, compare=False)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class EstimationService:
    """A thread-pooled, micro-batching front end over ``getSelectivity``.

    ``statistics`` may be a :class:`~repro.catalog.StatisticsCatalog`
    (hot snapshot swap active), a fixed
    :class:`~repro.catalog.CatalogSnapshot`, or a bare
    :class:`~repro.stats.pool.SITPool` (``database`` then required).
    """

    def __init__(
        self,
        statistics: "StatisticsCatalog | CatalogSnapshot | SITPool",
        *,
        database: Database | None = None,
        config: ServiceConfig | None = None,
        error_function: ErrorFunction | None = None,
        engine: str = "bitmask",
        name: str = "repro.service",
    ):
        from repro.service.queue import AdmissionQueue

        self.config = config if config is not None else ServiceConfig()
        self._statistics = statistics
        self._catalog = (
            statistics if isinstance(statistics, StatisticsCatalog) else None
        )
        self._error_function = error_function
        self._engine = engine
        self.name = name
        self.database = self._resolve_database(statistics, database)
        self._queue: AdmissionQueue[_Pending] = AdmissionQueue(
            self.config.queue_depth
        )
        self._closed = threading.Event()
        self._draining = threading.Event()
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._sessions: list[EstimationSession] = []
        self._retired_sessions: list[EstimationSession] = []
        self._sessions_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{name}-worker-{index}",
                daemon=True,
            )
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_database(statistics, database: Database | None) -> Database:
        if database is not None:
            return database
        resolved = getattr(statistics, "database", None)
        if resolved is None:
            raise ValueError(
                "a database is required (pass one explicitly, or serve "
                "from a catalog built with a database)"
            )
        return resolved

    def _make_session(self) -> EstimationSession:
        """A fresh session pinned to the catalog's *current* snapshot."""
        session = EstimationSession(
            self._statistics,
            self._error_function,
            database=self.database,
            engine=self._engine,
        )
        with self._sessions_lock:
            self._sessions.append(session)
        return session

    def _retire_session(self, session: EstimationSession) -> None:
        with self._sessions_lock:
            self._sessions.remove(session)
            self._retired_sessions.append(session)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _coerce_predicates(
        self, query: "Query | PredicateSet | str"
    ) -> tuple[frozenset, frozenset[str]]:
        if isinstance(query, str):
            from repro.sql import parse_query

            try:
                query = parse_query(query, self.database.schema)
            except Exception as exc:
                raise InvalidRequest(str(exc)) from exc
        if isinstance(query, Query):
            predicates = query.predicates
            tables = query.tables
        else:
            try:
                predicates = frozenset(query)
                tables = tables_of(predicates)
            except TypeError as exc:
                raise InvalidRequest(
                    f"unsupported query type {type(query).__name__}"
                ) from exc
        if not predicates:
            raise InvalidRequest("query has no predicates")
        return predicates, frozenset(tables)

    def submit(
        self,
        query: "Query | PredicateSet | str",
        timeout: float | None = None,
    ) -> "Future[ServedEstimate]":
        """Admit one request; returns its future.

        Raises :class:`ServiceClosed` after :meth:`close`,
        :class:`InvalidRequest` on unparsable input and — the explicit
        load-shedding path — :class:`Overloaded` the moment the bounded
        queue is at depth.  Never blocks the caller on a full queue.
        """
        if self._closed.is_set() or self._draining.is_set():
            raise ServiceClosed(f"{self.name} is shutting down")
        predicates, tables = self._coerce_predicates(query)
        now = time.monotonic()
        if timeout is None:
            timeout = self.config.default_timeout_s
        pending = _Pending(
            predicates=predicates,
            tables=tables,
            future=Future(),
            submitted_at=now,
            deadline=None if timeout is None else now + timeout,
        )
        try:
            admitted = self._queue.offer(pending)
        except RuntimeError as exc:
            raise ServiceClosed(f"{self.name} is shutting down") from exc
        if not admitted:
            with self._metrics_lock:
                self.metrics.counter("service.shed_overload").inc()
            raise Overloaded(
                f"queue at depth {self.config.queue_depth}; request shed"
            )
        with self._metrics_lock:
            self.metrics.counter("service.submitted").inc()
        return pending.future

    def estimate(
        self,
        query: "Query | PredicateSet | str",
        timeout: float | None = None,
    ) -> ServedEstimate:
        """Blocking convenience: submit and wait for the answer."""
        future = self.submit(query, timeout=timeout)
        wait = None
        if timeout is not None:
            # request deadline plus service slack; the worker-side
            # deadline is what actually governs shedding
            wait = timeout + self.config.drain_timeout_s
        return future.result(timeout=wait)

    def selectivity(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).selectivity

    def cardinality(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).cardinality

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        session = self._make_session()
        config = self.config
        while True:
            batch = self._queue.take_batch(
                config.max_batch, config.batch_window_s
            )
            if not batch:
                if self._queue.closed:
                    return
                continue
            session = self._roll_snapshot(session)
            try:
                self._serve_batch(session, batch)
            except BaseException as exc:  # pragma: no cover - safety net
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(
                            ServiceError(f"worker failure: {exc}")
                        )

    def _roll_snapshot(self, session: EstimationSession) -> EstimationSession:
        """Between batches: adopt the catalog's latest snapshot.

        In-flight work is untouched — the old session (and its pinned
        pool) stays fully usable; it is simply retired from rotation.
        """
        if self._catalog is None or session.is_current:
            return session
        fresh = self._make_session()
        self._retire_session(session)
        with self._metrics_lock:
            self.metrics.counter("service.snapshot_swaps").inc()
        return fresh

    def _serve_batch(
        self, session: EstimationSession, batch: list[_Pending]
    ) -> None:
        session.assert_pinned()
        now = time.monotonic()
        batch_size = len(batch)

        # group identical predicate sets: one DP run answers them all
        groups: dict[frozenset, list[_Pending]] = {}
        for pending in batch:
            pending.batch_size = batch_size
            groups.setdefault(pending.predicates, []).append(pending)

        served = 0
        shed_deadline = 0
        deduplicated = 0
        latencies: list[float] = []
        snapshot_version = session.snapshot_version
        for predicates, members in groups.items():
            live: list[_Pending] = []
            for pending in members:
                if pending.expired(now):
                    shed_deadline += 1
                    pending.future.set_exception(
                        DeadlineExceeded(
                            "deadline passed while queued; shedding"
                        )
                    )
                else:
                    live.append(pending)
            if not live:
                continue
            try:
                result = session.estimate(predicates)
            except Exception as exc:
                for pending in live:
                    pending.future.set_exception(
                        ServiceError(f"estimation failed: {exc}")
                    )
                continue
            cross = self.database.cross_product_size(live[0].tables)
            done = time.monotonic()
            for index, pending in enumerate(live):
                latency_ms = (done - pending.submitted_at) * 1000.0
                answer = ServedEstimate(
                    selectivity=result.selectivity,
                    cardinality=result.selectivity * cross,
                    error=result.error,
                    snapshot_version=snapshot_version,
                    latency_ms=latency_ms,
                    batch_size=batch_size,
                    deduplicated=index > 0,
                )
                if index > 0:
                    deduplicated += 1
                served += 1
                latencies.append(latency_ms)
                pending.future.set_result(answer)

        with self._metrics_lock:
            metrics = self.metrics
            latency_histogram = metrics.histogram("service.latency_ms")
            for latency_ms in latencies:
                latency_histogram.observe(latency_ms)
            metrics.counter("service.batches").inc()
            metrics.counter("service.batched_requests").inc(batch_size)
            metrics.counter("service.served").inc(served)
            metrics.counter("service.deduplicated").inc(deduplicated)
            if shed_deadline:
                metrics.counter("service.shed_deadline").inc(shed_deadline)
            metrics.histogram("service.batch_size").observe(batch_size)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop admission and shut the pool down.

        With ``drain=True`` (default) every already-admitted request is
        still served (or deadline-shed) before the workers exit; with
        ``drain=False`` the backlog is flushed immediately with
        :class:`ServiceClosed`.  Returns ``True`` on a clean shutdown
        within the timeout.  Idempotent.
        """
        if self._closed.is_set():
            return True
        timeout = timeout if timeout is not None else self.config.drain_timeout_s
        self._draining.set()
        clean = True
        if drain:
            clean = self._queue.wait_empty(timeout=timeout)
        self._queue.close()
        if not drain or not clean:
            for pending in self._queue.drain():
                if not pending.future.done():
                    pending.future.set_exception(
                        ServiceClosed("service closed before serving")
                    )
        for worker in self._workers:
            worker.join(timeout=timeout)
            clean = clean and not worker.is_alive()
        self._closed.set()
        return clean

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """Service counters plus the merged telemetry of every session
        the pool has used (active and retired)."""
        registry = MetricsRegistry()
        with self._metrics_lock:
            registry.merge(self.metrics)
        registry.gauge("service.queue_depth").set(float(len(self._queue)))
        registry.gauge("service.workers").set(float(len(self._workers)))
        registry.gauge("service.closed").set(1.0 if self.closed else 0.0)
        with self._sessions_lock:
            sessions = list(self._sessions) + list(self._retired_sessions)
            registry.gauge("service.active_sessions").set(
                float(len(self._sessions))
            )
        for session in sessions:
            registry.merge(session.metrics_registry())
        return registry

    def stats_snapshot(self) -> StatsSnapshot:
        """The unified snapshot: request-path state under ``service``,
        worker-session cache/catalog telemetry under the usual
        namespaces."""
        return StatsSnapshot.from_registry(
            self.metrics_registry(),
            meta={
                "subsystem": "service",
                "name": self.name,
                "workers": len(self._workers),
                "queue_depth_limit": self.config.queue_depth,
                "max_batch": self.config.max_batch,
                "engine": self._engine,
            },
        )


__all__ = ["EstimationService"]
