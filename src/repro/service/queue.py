"""The bounded admission queue feeding the worker pool.

``queue.Queue`` cannot express the two things the serving layer needs —
*reject-don't-block* admission and *coalescing* batch pops — so this is
a small condition-variable queue purpose-built for them:

* :meth:`offer` is non-blocking admission control: it returns ``False``
  the instant the queue is at depth (the caller sheds with a typed
  ``Overloaded``), never buffering beyond the bound;
* :meth:`take_batch` blocks until at least one item arrives, then
  lingers up to the micro-batch window to coalesce whatever else the
  queue holds (bounded by ``max_batch``), which is what makes
  cross-request factor sharing pay.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")


class AdmissionQueue(Generic[T]):
    """Bounded MPMC queue with shed-on-full and batch dequeue."""

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = depth
        self._items: deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def offer(self, item: T) -> bool:
        """Admit ``item`` unless the queue is full or closed.

        Returns ``True`` on admission; ``False`` means *shed now* (the
        queue never blocks a producer and never exceeds its depth).
        Raises ``RuntimeError`` when closed — producers should have
        stopped already.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if len(self._items) >= self.depth:
                return False
            self._items.append(item)
            self._not_empty.notify()
            return True

    def take_batch(
        self,
        max_batch: int,
        window_s: float,
        poll_s: float = 0.05,
    ) -> list[T]:
        """Dequeue one micro-batch.

        Blocks (in ``poll_s`` slices, so closing wakes us promptly)
        until at least one item is available, then keeps coalescing
        arrivals for up to ``window_s`` or until ``max_batch`` items.
        Returns ``[]`` only when the queue is closed *and* drained.
        """
        batch: list[T] = []
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return batch
                self._not_empty.wait(timeout=poll_s)
            while self._items and len(batch) < max_batch:
                batch.append(self._items.popleft())
        if window_s <= 0 or len(batch) >= max_batch:
            return batch
        # linger: coalesce stragglers into the same batch
        deadline = time.monotonic() + window_s
        while len(batch) < max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            with self._not_empty:
                if not self._items:
                    if self._closed:
                        break
                    self._not_empty.wait(timeout=remaining)
                while self._items and len(batch) < max_batch:
                    batch.append(self._items.popleft())
        return batch

    # ------------------------------------------------------------------
    def drain(self) -> list[T]:
        """Remove and return everything queued (used on hard shutdown)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items

    def close(self) -> None:
        """Stop admission and wake every blocked consumer."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def wait_empty(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty (the graceful-drain barrier)."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            with self._lock:
                if not self._items:
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.001)


__all__ = ["AdmissionQueue"]
