"""Tunables of the estimation-serving subsystem, layered by concern.

The kwarg sprawl of the original flat ``ServiceConfig`` is split into
composable frozen dataclasses:

* :class:`ServiceConfig` — the request path of one
  :class:`~repro.service.EstimationService` (workers, queue, batching,
  deadlines, bind address);
* :class:`HealingConfig` — the self-healing knobs from
  :mod:`repro.resilience` (circuit breaker, requeue and restart
  budgets), nested as ``ServiceConfig.healing``;
* :class:`ClusterConfig` — the multi-process tier
  (:mod:`repro.cluster`): shard/replica counts, hedging policy and the
  consistent-hash ring, nested as ``ServiceConfig.cluster`` (``None``
  for a single-process service);
* :class:`repro.advisor.AdvisorConfig` — the self-tuning loop
  (:mod:`repro.advisor`), nested as ``ServiceConfig.advisor`` (``None``
  disables tuning).

Every layer validates in ``__post_init__`` and round-trips through
``from_dict`` / ``to_dict`` so a whole deployment fits in one JSON file
(``python -m repro serve --config cluster.json``).

The old flat spelling (``ServiceConfig(breaker_threshold=5, ...)``) is
accepted for one release through a :class:`DeprecationWarning` shim that
folds the healing knobs into a nested :class:`HealingConfig`; the flat
attribute reads (``config.breaker_threshold``) keep working the same
way.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.advisor.config import AdvisorConfig


def _deprecated(message: str) -> None:
    warnings.warn(message, DeprecationWarning, stacklevel=3)


@dataclass(frozen=True)
class HealingConfig:
    """Self-healing knobs of one service (:mod:`repro.resilience`)."""

    #: worker faults on one snapshot version inside ``breaker_window_s``
    #: before the circuit breaker trips and the service rolls back to
    #: the last-known-good snapshot
    breaker_threshold: int = 3
    #: sliding fault window of the circuit breaker (seconds)
    breaker_window_s: float = 30.0
    #: how many times a request orphaned by a worker crash is re-queued
    #: before it is failed with a typed error
    requeue_limit: int = 2
    #: crashed-worker resurrections before the service stops respawning
    #: (bounds a crash loop; remaining work is flushed on close)
    max_worker_restarts: int = 8

    def __post_init__(self) -> None:
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_window_s <= 0:
            raise ValueError("breaker_window_s must be > 0")
        if self.requeue_limit < 0:
            raise ValueError("requeue_limit must be >= 0")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HealingConfig":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class ClusterConfig:
    """The multi-process estimation tier (:mod:`repro.cluster`).

    ``shards`` worker processes each host a full
    :class:`~repro.service.EstimationService` over the shared-memory
    catalog snapshot; ``replicas`` additional processes serve only
    hedged (tail-latency) requests.  ``hedge_delay_s=None`` derives the
    hedge trigger from the observed p95 latency
    (``p95 * hedge_factor``, floored at ``min_hedge_delay_s``); a fixed
    value pins it.
    """

    #: primary shard processes on the consistent-hash ring
    shards: int = 2
    #: replica processes answering hedged requests (0 = hedge to the
    #: ring successor shard instead)
    replicas: int = 0
    #: fixed hedge trigger in seconds; ``None`` derives it from p95
    hedge_delay_s: float | None = None
    #: multiplier on the live p95 latency when deriving the hedge delay
    hedge_factor: float = 1.5
    #: floor of the derived hedge delay (seconds); also the delay used
    #: before any latency has been observed
    min_hedge_delay_s: float = 0.010
    #: virtual nodes per shard on the consistent-hash ring
    ring_points: int = 64
    #: worker threads inside each shard process
    shard_workers: int = 1
    #: shard faults inside ``breaker_window_s`` before the router ejects
    #: the shard from the ring (its keyspace spills to ring neighbors)
    breaker_threshold: int = 3
    #: sliding fault window of the per-shard breaker (seconds)
    breaker_window_s: float = 30.0
    #: seconds the router waits for a shard to come up / ack a swap
    startup_timeout_s: float = 60.0
    #: per-shard cap on requests parked behind an in-flight hot swap;
    #: the excess is shed with a typed ``Overloaded`` instead of
    #: accumulating without bound during a write storm
    max_held_requests: int = 256

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.hedge_delay_s is not None and self.hedge_delay_s < 0:
            raise ValueError("hedge_delay_s must be >= 0 (or None)")
        if self.hedge_factor <= 0:
            raise ValueError("hedge_factor must be > 0")
        if self.min_hedge_delay_s < 0:
            raise ValueError("min_hedge_delay_s must be >= 0")
        if self.ring_points < 1:
            raise ValueError("ring_points must be >= 1")
        if self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_window_s <= 0:
            raise ValueError("breaker_window_s must be > 0")
        if self.startup_timeout_s <= 0:
            raise ValueError("startup_timeout_s must be > 0")
        if self.max_held_requests < 1:
            raise ValueError("max_held_requests must be >= 1")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterConfig":
        return cls(**_known_fields(cls, data))


#: flat ServiceConfig kwargs that moved into the nested HealingConfig
#: (accepted one release through the DeprecationWarning shim)
_LEGACY_HEALING_KWARGS = (
    "breaker_threshold",
    "breaker_window_s",
    "requeue_limit",
    "max_worker_restarts",
)


def _known_fields(cls, data: Mapping[str, Any]) -> dict:
    names = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise ValueError(f"unknown {cls.__name__} keys: {unknown}")
    return dict(data)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`repro.service.EstimationService`.

    The defaults target an interactive optimizer inner loop: small
    batching window (latency bound), a queue deep enough to ride out
    bursts, and explicit load shedding rather than unbounded buffering.
    Self-healing knobs live in :attr:`healing`; the multi-process tier
    (when enabled) in :attr:`cluster`.
    """

    #: worker threads; each owns a snapshot-pinned
    #: :class:`~repro.catalog.EstimationSession`
    workers: int = 2
    #: admission-queue depth; a submit beyond this is shed with
    #: :class:`~repro.service.protocol.Overloaded`
    queue_depth: int = 256
    #: how long a worker lingers after the first dequeued request to
    #: coalesce more of the queue into one micro-batch (seconds)
    batch_window_s: float = 0.002
    #: the most requests one micro-batch may carry
    max_batch: int = 32
    #: default per-request deadline (seconds; ``None`` = no deadline)
    default_timeout_s: float | None = None
    #: seconds :meth:`EstimationService.close` waits for a graceful
    #: drain before abandoning the remaining queue
    drain_timeout_s: float = 30.0
    #: server bind address for the JSON-lines front-end
    host: str = "127.0.0.1"
    #: server port (0 = ephemeral, the bound port is reported)
    port: int = 8642
    #: estimation backend worker sessions are built with
    #: (:data:`repro.estimators.BACKENDS`: ``"sit"``, ``"bn"``,
    #: ``"sample"``).  The cluster tier is SIT-only: shards attach a
    #: stats-only shared-memory snapshot (histogram arrays, no rows)
    #: and the bn/sample backends build their models from rows, so
    #: ``cluster`` + a non-SIT backend is rejected at validation
    backend: str = "sit"
    #: compiled-plan cache (:mod:`repro.core.plancache`) in worker
    #: sessions: template hits replay in microseconds and same-shape
    #: batch members are served by one stacked numpy op.  Replay is
    #: bit-identical, so disabling this only trades latency for nothing —
    #: the knob exists for measurement and for custom error functions
    #: that are not plan-stable (those bypass the cache anyway)
    plan_cache: bool = True
    #: self-healing layer (:mod:`repro.resilience`)
    healing: HealingConfig = field(default_factory=HealingConfig)
    #: multi-process tier (:mod:`repro.cluster`); ``None`` = single
    #: process
    cluster: ClusterConfig | None = None
    #: self-tuning loop (:mod:`repro.advisor`): when set, the service
    #: collects per-query feedback and runs safety-gated configuration
    #: ticks between batches; ``None`` disables tuning
    advisor: AdvisorConfig | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ValueError("default_timeout_s must be > 0 (or None)")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")
        if not self.host:
            raise ValueError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        from repro.estimators import BACKENDS

        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if not isinstance(self.healing, HealingConfig):
            raise TypeError("healing must be a HealingConfig")
        if self.cluster is not None and not isinstance(
            self.cluster, ClusterConfig
        ):
            raise TypeError("cluster must be a ClusterConfig or None")
        if self.advisor is not None and not isinstance(
            self.advisor, AdvisorConfig
        ):
            raise TypeError("advisor must be an AdvisorConfig or None")
        if self.cluster is not None and self.backend != "sit":
            raise ValueError(
                f"the cluster tier supports only backend='sit': shards "
                f"attach a stats-only shared-memory snapshot (histogram "
                f"arrays, no rows) and the {self.backend!r} backend "
                f"builds its models from rows — serve it single-process "
                f"(workers=N) instead"
            )

    # ------------------------------------------------------------------
    # Deprecated flat views of the nested healing knobs (one release)
    # ------------------------------------------------------------------
    @property
    def breaker_threshold(self) -> int:
        _deprecated(
            "ServiceConfig.breaker_threshold is deprecated; read "
            "config.healing.breaker_threshold"
        )
        return self.healing.breaker_threshold

    @property
    def breaker_window_s(self) -> float:
        _deprecated(
            "ServiceConfig.breaker_window_s is deprecated; read "
            "config.healing.breaker_window_s"
        )
        return self.healing.breaker_window_s

    @property
    def requeue_limit(self) -> int:
        _deprecated(
            "ServiceConfig.requeue_limit is deprecated; read "
            "config.healing.requeue_limit"
        )
        return self.healing.requeue_limit

    @property
    def max_worker_restarts(self) -> int:
        _deprecated(
            "ServiceConfig.max_worker_restarts is deprecated; read "
            "config.healing.max_worker_restarts"
        )
        return self.healing.max_worker_restarts

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready nested form; ``from_dict`` round-trips it."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "healing":
                out[f.name] = value.to_dict()
            elif f.name in ("cluster", "advisor"):
                out[f.name] = None if value is None else value.to_dict()
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceConfig":
        """Build a config from its nested-dict form.

        Flat healing keys (the pre-layering spelling) are accepted with
        a :class:`DeprecationWarning`, exactly like the kwarg shim.
        """
        data = dict(data)
        healing = data.pop("healing", None)
        if isinstance(healing, Mapping):
            healing = HealingConfig.from_dict(healing)
        cluster = data.pop("cluster", None)
        if isinstance(cluster, Mapping):
            cluster = ClusterConfig.from_dict(cluster)
        advisor = data.pop("advisor", None)
        if isinstance(advisor, Mapping):
            advisor = AdvisorConfig.from_dict(advisor)
        legacy = {
            key: data.pop(key)
            for key in _LEGACY_HEALING_KWARGS
            if key in data
        }
        if legacy:
            _deprecated(
                "flat healing keys in ServiceConfig.from_dict are "
                "deprecated; nest them under 'healing'"
            )
            if healing is not None:
                raise ValueError(
                    "both nested 'healing' and flat healing keys given"
                )
            healing = HealingConfig(**legacy)
        kwargs = _known_fields(cls, data)
        if healing is not None:
            kwargs["healing"] = healing
        if cluster is not None:
            kwargs["cluster"] = cluster
        if advisor is not None:
            kwargs["advisor"] = advisor
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Legacy flat-kwarg shim: ServiceConfig(breaker_threshold=..., ...) keeps
# constructing (with a DeprecationWarning) for one release by folding
# the flat knobs into the nested HealingConfig.
# ----------------------------------------------------------------------
_dataclass_init = ServiceConfig.__init__


def _shimmed_init(self, *args, **kwargs) -> None:
    legacy = {
        key: kwargs.pop(key)
        for key in _LEGACY_HEALING_KWARGS
        if key in kwargs
    }
    if legacy:
        warnings.warn(
            "flat ServiceConfig healing kwargs "
            f"({', '.join(sorted(legacy))}) are deprecated; pass "
            "healing=HealingConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if "healing" in kwargs:
            raise TypeError(
                "pass either healing=HealingConfig(...) or the flat "
                "legacy kwargs, not both"
            )
        kwargs["healing"] = HealingConfig(**legacy)
    _dataclass_init(self, *args, **kwargs)


ServiceConfig.__init__ = _shimmed_init  # type: ignore[method-assign]


__all__ = ["ClusterConfig", "HealingConfig", "ServiceConfig"]
