"""Tunables of the estimation-serving subsystem."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`repro.service.EstimationService`.

    The defaults target an interactive optimizer inner loop: small
    batching window (latency bound), a queue deep enough to ride out
    bursts, and explicit load shedding rather than unbounded buffering.
    """

    #: worker threads; each owns a snapshot-pinned
    #: :class:`~repro.catalog.EstimationSession`
    workers: int = 2
    #: admission-queue depth; a submit beyond this is shed with
    #: :class:`~repro.service.protocol.Overloaded`
    queue_depth: int = 256
    #: how long a worker lingers after the first dequeued request to
    #: coalesce more of the queue into one micro-batch (seconds)
    batch_window_s: float = 0.002
    #: the most requests one micro-batch may carry
    max_batch: int = 32
    #: default per-request deadline (seconds; ``None`` = no deadline)
    default_timeout_s: float | None = None
    #: seconds :meth:`EstimationService.close` waits for a graceful
    #: drain before abandoning the remaining queue
    drain_timeout_s: float = 30.0
    #: server bind address for the JSON-lines front-end
    host: str = "127.0.0.1"
    #: server port (0 = ephemeral, the bound port is reported)
    port: int = 8642
    # -- self-healing (repro.resilience) --------------------------------
    #: worker faults on one snapshot version inside ``breaker_window_s``
    #: before the circuit breaker trips and the service rolls back to
    #: the last-known-good snapshot
    breaker_threshold: int = 3
    #: sliding fault window of the circuit breaker (seconds)
    breaker_window_s: float = 30.0
    #: how many times a request orphaned by a worker crash is re-queued
    #: before it is failed with a typed error
    requeue_limit: int = 2
    #: crashed-worker resurrections before the service stops respawning
    #: (bounds a crash loop; remaining work is flushed on close)
    max_worker_restarts: int = 8
    #: compiled-plan cache (:mod:`repro.core.plancache`) in worker
    #: sessions: template hits replay in microseconds and same-shape
    #: batch members are served by one stacked numpy op.  Replay is
    #: bit-identical, so disabling this only trades latency for nothing —
    #: the knob exists for measurement and for custom error functions
    #: that are not plan-stable (those bypass the cache anyway)
    plan_cache: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.requeue_limit < 0:
            raise ValueError("requeue_limit must be >= 0")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")


__all__ = ["ServiceConfig"]
