"""``repro.service`` — the concurrent estimation-serving subsystem.

Layering (queue → batch → worker → snapshot swap; DESIGN.md §9):

* :mod:`repro.service.config` — layered tunables:
  :class:`ServiceConfig` with a nested :class:`HealingConfig`
  (resilience knobs) and optional :class:`ClusterConfig`
  (shards/replicas/hedging), ``from_dict``/``to_dict`` round-trip for
  ``python -m repro serve --config file.json``;
* :mod:`repro.service.protocol` — typed requests/responses
  (:class:`ServedEstimate`, :class:`Overloaded`, ...) and the JSON-lines
  wire codec shared by both transports;
* :mod:`repro.service.queue` — the bounded
  :class:`~repro.service.queue.AdmissionQueue` (shed-on-full admission,
  coalescing batch pops);
* :mod:`repro.service.service` — :class:`EstimationService`: the worker
  pool with micro-batching, deadlines, graceful drain and hot snapshot
  swap over :class:`~repro.catalog.StatisticsCatalog`;
* :mod:`repro.service.server` — the asyncio JSON-lines TCP front-end
  (``python -m repro serve``);
* :mod:`repro.service.client` — :func:`connect`, the one client
  construction path: hand it a service, statistics, ``"host:port"``,
  or the cluster router and get an :class:`EstimationClient` back.

Quickstart::

    from repro.service import connect

    with connect(catalog) as client:
        answer = client.estimate("SELECT * FROM sales, customer WHERE ...")
"""

from repro.service.client import (
    EstimationClient,
    InProcessClient,
    SocketClient,
    TransportError,
    connect,
)
from repro.service.config import ClusterConfig, HealingConfig, ServiceConfig
from repro.service.protocol import (
    DeadlineExceeded,
    InvalidRequest,
    Overloaded,
    ServedEstimate,
    ServiceClosed,
    ServiceError,
)
from repro.service.queue import AdmissionQueue
from repro.service.server import (
    EstimationServer,
    ServerHandle,
    run_server,
    start_in_thread,
)
from repro.service.service import EstimationService

__all__ = [
    "AdmissionQueue",
    "ClusterConfig",
    "DeadlineExceeded",
    "EstimationClient",
    "EstimationServer",
    "EstimationService",
    "HealingConfig",
    "InProcessClient",
    "InvalidRequest",
    "Overloaded",
    "ServedEstimate",
    "ServerHandle",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceError",
    "SocketClient",
    "TransportError",
    "connect",
    "run_server",
    "start_in_thread",
]
