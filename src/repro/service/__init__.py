"""``repro.service`` — the concurrent estimation-serving subsystem.

Layering (queue → batch → worker → snapshot swap; DESIGN.md §9):

* :mod:`repro.service.config` — :class:`ServiceConfig` tunables;
* :mod:`repro.service.protocol` — typed requests/responses
  (:class:`ServedEstimate`, :class:`Overloaded`, ...) and the JSON-lines
  wire codec shared by both transports;
* :mod:`repro.service.queue` — the bounded
  :class:`~repro.service.queue.AdmissionQueue` (shed-on-full admission,
  coalescing batch pops);
* :mod:`repro.service.service` — :class:`EstimationService`: the worker
  pool with micro-batching, deadlines, graceful drain and hot snapshot
  swap over :class:`~repro.catalog.StatisticsCatalog`;
* :mod:`repro.service.server` — the asyncio JSON-lines TCP front-end
  (``python -m repro serve``);
* :mod:`repro.service.client` — :class:`Client` (in-process) and
  :class:`TCPClient` (wire), one call surface for both.

Quickstart::

    from repro.service import Client

    with Client.in_process(catalog) as client:
        answer = client.estimate("SELECT * FROM sales, customer WHERE ...")
"""

from repro.service.client import Client, TCPClient, TransportError
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    DeadlineExceeded,
    InvalidRequest,
    Overloaded,
    ServedEstimate,
    ServiceClosed,
    ServiceError,
)
from repro.service.queue import AdmissionQueue
from repro.service.server import (
    EstimationServer,
    ServerHandle,
    run_server,
    start_in_thread,
)
from repro.service.service import EstimationService

__all__ = [
    "AdmissionQueue",
    "Client",
    "DeadlineExceeded",
    "EstimationServer",
    "EstimationService",
    "InvalidRequest",
    "Overloaded",
    "ServedEstimate",
    "ServerHandle",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceError",
    "TCPClient",
    "TransportError",
    "run_server",
    "start_in_thread",
]
