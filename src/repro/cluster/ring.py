"""Consistent-hash ring over shard ids, with ejection and rejoin.

The router hashes each request's plan-cache shape fingerprint digest
(:func:`repro.core.plancache.fingerprint_digest`) onto the ring, so all
queries of one template land on one shard and that shard's match /
estimate / compiled-plan caches stay hot.  Virtual nodes (``points`` per
shard) smooth the keyspace split; blake2b keeps placement stable across
processes and runs (``hash()`` is salted per process and useless here).

Health handling is structural: :meth:`eject` removes a tripped shard's
points, so its keyspace *spills to the ring successors* with no routing
table to rebuild, and :meth:`rejoin` restores exactly the old placement
— templates return to their original shard and re-warm its caches.
"""

from __future__ import annotations

import bisect
import hashlib


def _point(label: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent hashing of string keys onto integer shard ids."""

    def __init__(self, shards, points: int = 64):
        if points < 1:
            raise ValueError("points must be >= 1")
        self._points = points
        self._members: set[int] = set()
        self._ejected: set[int] = set()
        #: sorted virtual-node positions and their parallel owners,
        #: rebuilt on membership change (lookups are pure bisect)
        self._ring: list[int] = []
        self._owners: list[int] = []
        for shard in shards:
            self._members.add(int(shard))
        if not self._members:
            raise ValueError("ring requires at least one shard")
        self._rebuild()

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        pairs: list[tuple[int, int]] = []
        for shard in sorted(self._members - self._ejected):
            for index in range(self._points):
                pairs.append((_point(f"shard-{shard}#{index}"), shard))
        pairs.sort()
        self._ring = [position for position, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    # ------------------------------------------------------------------
    @property
    def members(self) -> frozenset[int]:
        """All shards, ejected included."""
        return frozenset(self._members)

    @property
    def active(self) -> frozenset[int]:
        return frozenset(self._members - self._ejected)

    @property
    def ejected(self) -> frozenset[int]:
        return frozenset(self._ejected)

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> int:
        """The active shard owning ``key`` (first point clockwise)."""
        if not self._ring:
            raise LookupError("every shard is ejected; nothing to route to")
        index = bisect.bisect_right(self._ring, _point(key))
        if index == len(self._ring):
            index = 0
        return self._owners[index]

    def successor(self, key: str, after: int) -> int:
        """The first active shard clockwise of ``key`` that is not
        ``after`` — the hedge target when no dedicated replica exists,
        and where an ejected shard's keys spill."""
        if not self._ring:
            raise LookupError("every shard is ejected; nothing to route to")
        start = bisect.bisect_right(self._ring, _point(key))
        size = len(self._ring)
        for step in range(size):
            owner = self._owners[(start + step) % size]
            if owner != after:
                return owner
        return after  # single active shard: it is its own successor

    # ------------------------------------------------------------------
    def eject(self, shard: int) -> bool:
        """Remove a shard's points (keyspace spills to successors).
        Returns False when already ejected / unknown."""
        shard = int(shard)
        if shard not in self._members or shard in self._ejected:
            return False
        if len(self._members - self._ejected) == 1:
            raise RuntimeError("cannot eject the last active shard")
        self._ejected.add(shard)
        self._rebuild()
        return True

    def rejoin(self, shard: int) -> bool:
        """Restore an ejected shard's exact previous placement."""
        shard = int(shard)
        if shard not in self._ejected:
            return False
        self._ejected.discard(shard)
        self._rebuild()
        return True


__all__ = ["HashRing"]
