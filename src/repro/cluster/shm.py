"""Zero-copy snapshot sharing over ``multiprocessing.shared_memory``.

The cluster's memory model: the router process **exports** one catalog
snapshot — every SIT's four bucket arrays packed end-to-end into a
single shared-memory segment — and each shard process **attaches** the
segment read-only.  N shards then serve from *one* copy of the
histogram memory; what crosses the process boundary at spawn time is
only a JSON-able descriptor (segment name, per-SIT offsets, predicate
expressions, schema, row counts), a few kilobytes regardless of how
large the statistics are.

Attachment rebuilds real :class:`~repro.stats.sit.SIT` objects whose
:class:`~repro.histograms.base.Histogram` instances are created with
:meth:`~repro.histograms.base.Histogram.from_arrays` over views into
the segment — no bucket data is copied, and the element-order frequency
fold keeps shard-side estimates bit-identical to the exporter's.

Table *data* never crosses: estimation needs only the schema and the
per-table row counts (for ``cross_product_size``), so shards get a
:class:`StatsOnlyDatabase` — a :class:`~repro.engine.database.Database`
that answers catalog lookups from the descriptor and refuses column
access.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.catalog.catalog import CatalogSnapshot, StatisticsCatalog
from repro.core.predicates import Attribute
from repro.engine.database import Database
from repro.engine.schema import ForeignKey, Schema, TableSchema
from repro.histograms.base import Histogram
from repro.stats.io import decode_predicate, encode_predicate
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

#: bucket arrays exported per histogram, in layout order
_ARRAYS_PER_HISTOGRAM = 4


class StatsOnlyDatabase(Database):
    """A data-less database: schema + row counts, no columns.

    Shards estimate from shared-memory statistics; the only engine
    lookups on the estimation path are ``row_count`` /
    ``cross_product_size`` (the ``|R1 x ... x Rn|`` denominators), which
    this class answers from the exported counts.  Any attempt to touch
    column data raises, so a statistics rebuild cannot silently run
    against a shard's empty tables.
    """

    def __init__(self, schema: Schema, row_counts: dict[str, int]):
        super().__init__(schema=schema)
        self._row_counts = {name: int(count) for name, count in row_counts.items()}

    def row_count(self, table: str) -> int:
        try:
            return self._row_counts[table]
        except KeyError:
            raise KeyError(f"unknown table {table!r}") from None

    def table(self, name: str):
        raise LookupError(
            f"table {name!r} has no data in a stats-only shard database "
            "(shards serve from shared-memory statistics; see repro.cluster)"
        )

    @property
    def table_names(self) -> frozenset[str]:
        return frozenset(self._row_counts)


# ----------------------------------------------------------------------
# Schema codec (plain JSON, rides in the descriptor)
# ----------------------------------------------------------------------
def _encode_schema(schema: Schema) -> dict:
    return {
        "tables": [
            {
                "name": table.name,
                "columns": list(table.columns),
                "primary_key": table.primary_key,
            }
            for table in schema.tables.values()
        ],
        "foreign_keys": [
            {
                "source_table": fk.source_table,
                "source_column": fk.source_column,
                "target_table": fk.target_table,
                "target_column": fk.target_column,
            }
            for fk in schema.foreign_keys
        ],
    }


def _decode_schema(data: dict) -> Schema:
    schema = Schema()
    for table in data["tables"]:
        schema.add_table(
            TableSchema(
                name=table["name"],
                columns=tuple(table["columns"]),
                primary_key=table.get("primary_key"),
            )
        )
    for fk in data["foreign_keys"]:
        schema.add_foreign_key(ForeignKey(**fk))
    return schema


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
class SnapshotExport:
    """A live shared-memory export: the segment plus its descriptor.

    The exporter owns the segment: :meth:`close` detaches the local
    mapping, :meth:`unlink` destroys the segment (call it exactly once,
    after every shard has exited).  Context-managing does both.
    """

    def __init__(self, segment: shared_memory.SharedMemory, descriptor: dict):
        self.segment = segment
        self.descriptor = descriptor

    @property
    def nbytes(self) -> int:
        return int(self.descriptor["length"]) * 8

    def close(self) -> None:
        try:
            self.segment.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def unlink(self) -> None:
        try:
            self.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SnapshotExport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()


def export_snapshot(
    snapshot: CatalogSnapshot,
    database: Database | None = None,
    *,
    name: str | None = None,
) -> SnapshotExport:
    """Pack a snapshot's histograms into one shared-memory segment.

    Every SIT contributes its four float64 bucket arrays (lows, highs,
    frequencies, distincts) back-to-back; the returned descriptor
    records each SIT's offset/size plus everything a shard needs to
    rebuild a serving catalog: encoded expressions, ``diff`` values,
    catalog/table versions, the schema, and per-table row counts.
    """
    if database is None:
        database = snapshot.database
    if database is None:
        raise ValueError("export requires a database (schema + row counts)")
    sits = list(snapshot.pool)
    total = sum(
        sit.histogram.bucket_arrays()[0].size * _ARRAYS_PER_HISTOGRAM
        for sit in sits
    )
    segment = shared_memory.SharedMemory(
        create=True, size=max(8, total * 8), name=name
    )
    flat = np.ndarray((total,), dtype=np.float64, buffer=segment.buf)
    records: list[dict] = []
    cursor = 0
    for sit in sits:
        lows, highs, freqs, dists = sit.histogram.bucket_arrays()
        buckets = int(lows.size)
        for array in (lows, highs, freqs, dists):
            flat[cursor : cursor + buckets] = array
            cursor += buckets
        records.append(
            {
                "table": sit.attribute.table,
                "column": sit.attribute.column,
                "expression": [encode_predicate(p) for p in sorted(sit.expression, key=str)],
                "diff": sit.diff,
                "null_count": sit.histogram.null_count,
                "offset": cursor - buckets * _ARRAYS_PER_HISTOGRAM,
                "buckets": buckets,
            }
        )
    descriptor = {
        "segment": segment.name,
        "length": total,
        "version": snapshot.version,
        "table_versions": dict(snapshot.table_versions),
        "sits": records,
        "schema": _encode_schema(database.schema),
        "row_counts": {
            table: database.row_count(table)
            for table in database.schema.tables
        },
    }
    return SnapshotExport(segment, descriptor)


# ----------------------------------------------------------------------
# Attach
# ----------------------------------------------------------------------
class AttachedSnapshot:
    """A shard's view of an export: catalog + database over mapped memory.

    Keep this object alive for as long as the catalog serves — it owns
    the process-local mapping.  :meth:`close` detaches (never unlinks;
    the exporter owns the segment's lifetime).
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        catalog: StatisticsCatalog,
        database: StatsOnlyDatabase,
    ):
        self.segment = segment
        self.catalog = catalog
        self.database = database

    def close(self) -> None:
        try:
            self.segment.close()
        except OSError:  # pragma: no cover - already detached
            pass

    def __enter__(self) -> "AttachedSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_snapshot(descriptor: dict) -> AttachedSnapshot:
    """Rebuild a serving catalog over an exported segment — zero copy.

    The returned catalog reports the *exporter's* version and table
    versions, so responses served off it carry the same
    ``snapshot_version`` the single-process service would have sent.

    Resource-tracker note: Python 3.11 registers attachments exactly
    like creations (cpython #82300), but ``multiprocessing``-spawned
    shards inherit the exporter's tracker, whose cache is a *set* — the
    duplicate registration is a no-op and the single entry is released
    by the exporter's ``unlink``.  Do **not** "fix" this by
    unregistering in the shard: that removes the shared entry and makes
    the exporter's unlink-time unregister fail.
    """
    segment = shared_memory.SharedMemory(name=descriptor["segment"])
    flat = np.ndarray(
        (int(descriptor["length"]),), dtype=np.float64, buffer=segment.buf
    )
    flat.flags.writeable = False
    sits: list[SIT] = []
    for record in descriptor["sits"]:
        buckets = int(record["buckets"])
        offset = int(record["offset"])
        views = [
            flat[offset + index * buckets : offset + (index + 1) * buckets]
            for index in range(_ARRAYS_PER_HISTOGRAM)
        ]
        histogram = Histogram.from_arrays(
            *views, null_count=float(record["null_count"])
        )
        sits.append(
            SIT(
                attribute=Attribute(record["table"], record["column"]),
                expression=frozenset(
                    decode_predicate(p) for p in record["expression"]
                ),
                histogram=histogram,
                diff=float(record["diff"]),
            )
        )
    database = StatsOnlyDatabase(
        _decode_schema(descriptor["schema"]), descriptor["row_counts"]
    )
    catalog = StatisticsCatalog.from_pool(SITPool(sits), database=database)
    catalog._table_versions = {
        table: int(version)
        for table, version in descriptor["table_versions"].items()
    }
    catalog.version = int(descriptor["version"])
    return AttachedSnapshot(segment, catalog, database)


__all__ = [
    "AttachedSnapshot",
    "SnapshotExport",
    "StatsOnlyDatabase",
    "attach_snapshot",
    "export_snapshot",
]
