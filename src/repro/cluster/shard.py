"""The shard process: a full estimation service over attached memory.

Each shard is a separate OS process (``spawn`` start method) hosting an
ordinary :class:`~repro.service.EstimationService` — worker threads,
micro-batching, admission control, plan cache, the lot — whose catalog
is rebuilt zero-copy over the router's shared-memory snapshot export
(:mod:`repro.cluster.shm`).  It listens on an ephemeral TCP port with a
:class:`ShardServer`, an :class:`~repro.service.EstimationServer` that
adds the cluster control ops:

``{"op": "invalidate", "table": ..., "version": ...}``
    the router fanning out ``notify_table_update``: the shard runs its
    own catalog's invalidation path, pins the catalog version to the
    router's (so ``snapshot_version`` stays coherent cluster-wide) and
    acks with the new version.  The router holds the shard's requests
    until this ack — the coherent-routing half of a hot swap.
``{"op": "crash"}``
    test/chaos hook: hard-exits the process mid-serve, exercising the
    per-shard breaker → eject → respawn → rejoin path.

The bootstrap handshake: the parent passes a one-shot pipe; the child
sends ``("ready", port)`` once listening (or ``("error", message)``), so
the router never polls.
"""

from __future__ import annotations

import os

from repro.cluster.shm import attach_snapshot
from repro.service.config import ServiceConfig
from repro.service.server import EstimationServer
from repro.service.service import EstimationService


class ShardServer(EstimationServer):
    """The TCP front-end of one shard: estimate + cluster control ops."""

    def __init__(self, service: EstimationService, shard_id: int, **kwargs):
        super().__init__(service, **kwargs)
        self.shard = int(shard_id)

    async def _dispatch_extra(
        self, op: str, payload: dict, request_id: object
    ) -> dict | None:
        if op == "invalidate":
            catalog = self.service._catalog
            if catalog is None:  # pragma: no cover - shards always have one
                return None
            catalog.notify_table_update(str(payload["table"]))
            version = payload.get("version")
            if version is not None:
                # pin to the router's catalog version so every shard
                # reports the same snapshot_version after the swap
                catalog.version = int(version)
            return {
                "id": request_id,
                "ok": True,
                "status": "ok",
                "shard": self.shard,
                "version": catalog.version,
            }
        if op == "crash":
            # chaos hook: die without draining, like a real shard loss
            os._exit(17)
        return None


def shard_main(
    descriptor: dict,
    shard_id: int,
    config_data: dict,
    conn,
) -> None:
    """Child-process entrypoint (must stay module-level for ``spawn``).

    Attaches the shared snapshot, builds the service, binds an ephemeral
    port, reports it through ``conn``, and serves until killed.
    """
    try:
        attached = attach_snapshot(descriptor)
        config = ServiceConfig.from_dict(config_data)
        service = EstimationService(
            attached.catalog,
            database=attached.database,
            config=config,
            name=f"repro.cluster.shard{shard_id}",
        )
    except Exception as exc:  # pragma: no cover - bootstrap failure path
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return

    def ready(address) -> None:
        conn.send(("ready", address[1]))
        conn.close()

    server = ShardServer(service, shard_id, host=config.host, port=0)
    try:
        _serve(server, ready)
    finally:
        service.close(drain=False)
        attached.close()


def _serve(server: ShardServer, ready) -> None:
    """Blocking serve loop (mirrors :func:`repro.service.server.run_server`
    but for an already-constructed server object)."""
    import asyncio

    async def _main() -> None:
        async with server:
            ready(server.address)
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass


__all__ = ["ShardServer", "shard_main"]
