"""The cluster router: one service surface over N shard processes.

:class:`EstimationCluster` duck-types
:class:`~repro.service.EstimationService` (``submit`` / ``estimate`` /
``stats_snapshot`` / ``close`` / ``config``), so everything that serves
or wraps a service — :func:`repro.service.connect`,
:func:`repro.service.start_in_thread`, the CLI — works over a cluster
unchanged.  Underneath:

* **spawn** — ``shards + replicas`` child processes
  (:func:`repro.cluster.shard.shard_main`, ``spawn`` start method) all
  attach the router's one shared-memory snapshot export
  (:mod:`repro.cluster.shm`): N processes, one copy of the histograms;
* **route** — requests are consistent-hashed by their plan-cache shape
  fingerprint (:func:`repro.core.plancache.shape_fingerprint`), so
  every query template lands on one shard and that shard's match /
  estimate / compiled-plan caches stay hot across the keyspace split;
* **hedge** — a request still unanswered after a p95-derived delay is
  duplicated to a replica (or the ring successor when ``replicas=0``);
  the first answer wins, the loser is counted, never double-completed;
* **heal** — per-shard faults feed a
  :class:`~repro.resilience.breaker.CircuitBreaker` keyed by shard id;
  a tripped shard is ejected from the ring (its keyspace spills to the
  ring successors), respawned in the background and rejoined at its
  exact old placement;
* **stay coherent** — :meth:`notify_table_update` bumps the primary
  catalog, then *holds* new requests per shard while fanning out an
  ``invalidate`` op; each shard's held requests flush only after that
  shard acks at the new version, so no request routed after the update
  is ever served from a stale shard snapshot.

Telemetry lives under the ``cluster`` namespace of
:meth:`stats_snapshot` (routed / spilled / hedges / hedge_wins /
hedge_cancelled / holds / swaps / ...; see
:mod:`repro.obs.snapshot`).
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import multiprocessing
import socket
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field

from repro.catalog.catalog import CatalogSnapshot, StatisticsCatalog
from repro.core.plancache import fingerprint_digest, shape_fingerprint
from repro.core.predicates import tables_of
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import POINT_SWAP_UNDER_WRITE, inject
from repro.service.client import TransportError
from repro.service.config import ClusterConfig, ServiceConfig
from repro.service.protocol import (
    InvalidRequest,
    Overloaded,
    ServiceClosed,
    decode_line,
    encode_line,
    encode_predicates,
    result_from_wire,
)

from repro.cluster.ring import HashRing
from repro.cluster.shard import shard_main
from repro.cluster.shm import export_snapshot


class _ShardLink:
    """One persistent JSON-lines connection to a shard process.

    A single background reader correlates responses to request futures
    by id, so any number of router threads can have requests in flight
    on one socket.  When the connection dies every pending future fails
    with :class:`TransportError` — the router's fault signal.
    """

    def __init__(self, shard_id: int, host: str, port: int, timeout_s: float = 30.0):
        self.shard_id = int(shard_id)
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.settimeout(None)
        self._file = self._sock.makefile("rb")
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[str, Future] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-cluster-link-{shard_id}",
            daemon=True,
        )
        self._reader.start()

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def request(self, payload: dict) -> "Future[dict]":
        """Send one request line; the future resolves to the raw
        response dict (or fails with :class:`TransportError`)."""
        request_id = f"s{self.shard_id}-{next(self._ids)}"
        future: Future = Future()
        with self._pending_lock:
            if self._closed:
                future.set_exception(
                    TransportError(f"link to shard {self.shard_id} is closed")
                )
                return future
            self._pending[request_id] = future
        try:
            line = encode_line(dict(payload, id=request_id))
            with self._write_lock:
                self._sock.sendall(line)
        except OSError as exc:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            if not future.done():
                future.set_exception(
                    TransportError(f"shard {self.shard_id} unreachable: {exc}")
                )
        return future

    def _read_loop(self) -> None:
        try:
            while True:
                line = self._file.readline()
                if not line:
                    break
                response = decode_line(line)
                with self._pending_lock:
                    future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except Exception:
            pass
        finally:
            self._fail_pending(
                TransportError(f"connection to shard {self.shard_id} lost")
            )

    def _fail_pending(self, exc: Exception) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(exc)

    def close(self) -> None:
        with self._pending_lock:
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._file.close()
        except OSError:  # pragma: no cover - best effort
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best effort
            pass


#: bound on transparent re-dispatches of one request after shard faults
_MAX_REROUTES = 3


def _fold_shard_stats(prior: dict, live: dict) -> dict:
    """Merge one shard's pre-restart stats into its live snapshot.

    ``counters`` accumulate across process incarnations — a respawned
    shard starts from zero, but the cluster-visible totals must not.
    Every other namespace (gauges, caches, timings, meta) describes the
    *current* process, so the live value wins; namespaces only the prior
    carries are kept as-is.
    """
    merged = {
        key: dict(value) if isinstance(value, dict) else value
        for key, value in live.items()
    }
    for namespace, entries in prior.items():
        if namespace not in merged:
            merged[namespace] = (
                dict(entries) if isinstance(entries, dict) else entries
            )
            continue
        if namespace == "counters" and isinstance(entries, dict):
            bucket = merged[namespace]
            for name, value in entries.items():
                current = bucket.get(name, 0)
                if isinstance(value, (int, float)) and isinstance(
                    current, (int, float)
                ):
                    bucket[name] = current + value
                elif name not in bucket:
                    bucket[name] = value
    return merged


@dataclass(eq=False)
class _Request:
    """One client request travelling router -> shard(s) -> future."""

    predicates: frozenset
    tables: frozenset[str]
    digest: str
    payload: dict
    future: Future
    submitted_at: float
    timeout: float | None = None
    #: the ring owner the primary attempt was sent to
    shard: int | None = None
    #: attempts still in flight (primary + hedges); the last error loses
    outstanding: int = 0
    reroutes: int = 0
    hedged: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)


class EstimationCluster:
    """A sharded multi-process estimation tier behind one service API.

    ``statistics`` is a :class:`~repro.catalog.StatisticsCatalog`, a
    :class:`~repro.catalog.CatalogSnapshot` or a bare
    :class:`~repro.stats.pool.SITPool` (``database`` then required) —
    exactly the :class:`~repro.service.EstimationService` contract.  The
    cluster shape comes from ``config.cluster``
    (:class:`~repro.service.ClusterConfig`; defaulted when absent).

    ``_links`` is a test seam: a prebuilt list of link-like objects
    (``request(payload) -> Future[dict]``, ``close()``,
    ``pending_count``) that replaces process spawning — the first
    ``cluster.shards`` entries become ring shards, the rest replicas.
    Hedging, holds and routing are then unit-testable without a single
    child process.
    """

    def __init__(
        self,
        statistics: "StatisticsCatalog | CatalogSnapshot | object",
        *,
        database: Database | None = None,
        config: ServiceConfig | None = None,
        name: str = "repro.cluster",
        _links: "list | None" = None,
    ):
        if config is None:
            config = ServiceConfig(cluster=ClusterConfig())
        if config.cluster is None:
            config = dataclasses.replace(config, cluster=ClusterConfig())
        self.config = config
        self.name = name
        self._catalog = self._coerce_catalog(statistics, database)
        self.database = self._catalog.database
        if self.database is None:
            raise ValueError(
                "a database is required (pass one explicitly, or serve "
                "from a catalog built with a database)"
            )
        cluster = config.cluster
        self._closed = threading.Event()
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        #: shard-id-keyed breaker: repeated faults eject the shard
        self._breaker = CircuitBreaker(
            threshold=cluster.breaker_threshold,
            window_s=cluster.breaker_window_s,
        )
        self._shard_ids = list(range(cluster.shards))
        self._replica_ids = list(
            range(cluster.shards, cluster.shards + cluster.replicas)
        )
        self._ring = HashRing(self._shard_ids, points=cluster.ring_points)
        #: everything below the ring is guarded by _route_lock
        self._route_lock = threading.Lock()
        self._links: dict[int, object] = {}
        self._held: dict[int, list[_Request]] = {}
        self._reviving: set[int] = set()
        #: per-member shard stats: the latest polled snapshot of the live
        #: process, and the counter totals folded from dead incarnations
        self._shard_stats_last: dict[int, dict] = {}
        self._shard_stats_prior: dict[int, dict] = {}
        self._replica_cursor = 0
        #: optional StalenessTracker stamping answers with bounded-
        #: staleness provenance (see :meth:`attach_staleness`)
        self._staleness = None
        self._processes: dict[int, multiprocessing.process.BaseProcess] = {}
        self._export = None
        self._mp = None
        if _links is not None:
            expected = cluster.shards + cluster.replicas
            if len(_links) != expected:
                raise ValueError(
                    f"_links must carry shards+replicas={expected} entries"
                )
            for member, link in enumerate(_links):
                self._links[member] = link
        else:
            self._mp = multiprocessing.get_context("spawn")
            self._export = export_snapshot(self._catalog.snapshot(), self.database)
            try:
                for member in self._shard_ids + self._replica_ids:
                    process, link = self._spawn_shard(member)
                    self._processes[member] = process
                    self._links[member] = link
            except Exception:
                self._shutdown_processes()
                raise
        # hedge scheduler: fires duplicate requests after the delay
        self._hedge_cv = threading.Condition()
        self._hedge_heap: list[tuple[float, int, _Request]] = []
        self._hedge_seq = itertools.count()
        self._hedge_thread = threading.Thread(
            target=self._hedge_loop, name=f"{name}-hedger", daemon=True
        )
        self._hedge_thread.start()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_catalog(statistics, database: Database | None) -> StatisticsCatalog:
        if isinstance(statistics, StatisticsCatalog):
            return statistics
        if isinstance(statistics, CatalogSnapshot):
            return StatisticsCatalog.from_pool(
                statistics.pool,
                database=database or statistics.database,
            )
        return StatisticsCatalog.from_pool(statistics, database=database)

    def _shard_config(self) -> ServiceConfig:
        """The child-process service config: the router's knobs with the
        per-shard worker count and no nested cluster (shards are leaves)."""
        return dataclasses.replace(
            self.config,
            workers=self.config.cluster.shard_workers,
            cluster=None,
            port=0,
        )

    def _spawn_shard(self, member: int):
        """Start one child process and dial its bootstrap-reported port."""
        assert self._mp is not None and self._export is not None
        cluster = self.config.cluster
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=shard_main,
            args=(
                self._export.descriptor,
                member,
                self._shard_config().to_dict(),
                child_conn,
            ),
            name=f"{self.name}-shard-{member}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(cluster.startup_timeout_s):
            process.terminate()
            raise TimeoutError(
                f"shard {member} did not report ready within "
                f"{cluster.startup_timeout_s}s"
            )
        kind, detail = parent_conn.recv()
        parent_conn.close()
        if kind != "ready":
            process.join(timeout=5.0)
            raise RuntimeError(f"shard {member} failed to start: {detail}")
        link = _ShardLink(member, self.config.host, int(detail))
        return process, link

    # ------------------------------------------------------------------
    # Admission + routing
    # ------------------------------------------------------------------
    def _coerce_predicates(self, query) -> tuple[frozenset, frozenset[str]]:
        if isinstance(query, str):
            from repro.sql import parse_query

            try:
                query = parse_query(query, self.database.schema)
            except Exception as exc:
                raise InvalidRequest(str(exc)) from exc
        if isinstance(query, Query):
            predicates = query.predicates
            tables = query.tables
        else:
            try:
                predicates = frozenset(query)
                tables = tables_of(predicates)
            except TypeError as exc:
                raise InvalidRequest(
                    f"unsupported query type {type(query).__name__}"
                ) from exc
        if not predicates:
            raise InvalidRequest("query has no predicates")
        return predicates, frozenset(tables)

    def submit(self, query, timeout: float | None = None) -> "Future[object]":
        """Admit one request; returns its future (a
        :class:`~repro.service.protocol.ServedEstimate` on success).

        The request is parsed once here — shards receive the parse-free
        ``predicates`` wire spelling — fingerprinted, and routed to the
        ring owner of its query template.
        """
        if self._closed.is_set():
            raise ServiceClosed(f"{self.name} is shutting down")
        predicates, tables = self._coerce_predicates(query)
        if timeout is None:
            timeout = self.config.default_timeout_s
        fingerprint, _ = shape_fingerprint(predicates)
        payload: dict = {
            "op": "estimate",
            "predicates": encode_predicates(predicates),
        }
        if timeout is not None:
            payload["timeout_ms"] = timeout * 1000.0
        entry = _Request(
            predicates=predicates,
            tables=tables,
            digest=fingerprint_digest(fingerprint),
            payload=payload,
            future=Future(),
            submitted_at=time.monotonic(),
            timeout=timeout,
        )
        self._dispatch(entry)
        return entry.future

    def estimate(self, query, timeout: float | None = None):
        future = self.submit(query, timeout=timeout)
        wait = None
        if timeout is not None:
            wait = timeout + self.config.drain_timeout_s
        return future.result(timeout=wait)

    def selectivity(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).selectivity

    def cardinality(self, query, timeout: float | None = None) -> float:
        return self.estimate(query, timeout=timeout).cardinality

    # ------------------------------------------------------------------
    def _dispatch(self, entry: _Request, *, spilled: bool = False) -> None:
        """Route to the ring owner, honoring per-shard swap holds.

        Hold queues are bounded (``cluster.max_held_requests`` per
        shard): during a write storm the swap fan-out can outpace the
        ack rate, and an unbounded park would turn every client timeout
        into queued dead weight.  The excess is shed with a typed
        :class:`~repro.service.protocol.Overloaded` the moment it
        arrives, so callers get immediate backpressure instead of a
        stale queue position.
        """
        cap = self.config.cluster.max_held_requests
        with self._route_lock:
            shard = self._ring.lookup(entry.digest)
            held = self._held.get(shard)
            if held is not None:
                if len(held) >= cap:
                    self._count("cluster.holds_shed")
                    shed = Overloaded(
                        f"shard {shard} holds {len(held)} requests behind "
                        f"an in-flight swap (max_held_requests={cap})"
                    )
                else:
                    held.append(entry)
                    self._count("cluster.held_requests")
                    return
            else:
                shed = None
            link = self._links.get(shard)
        if shed is not None:
            self._maybe_fail(entry, shed, force=True)
            return
        if link is None:
            # ejected between lookup and send (rare race): try again;
            # the rebuilt ring resolves to a live owner
            self._fault_or_reroute(entry, shard)
            return
        entry.shard = shard
        with entry.lock:
            entry.outstanding += 1
        with self._metrics_lock:
            self.metrics.counter("cluster.routed").inc()
            self.metrics.counter(f"cluster.shard.{shard}.routed").inc()
            if spilled:
                self.metrics.counter("cluster.spilled").inc()
        raw = link.request(entry.payload)
        raw.add_done_callback(
            lambda f, s=shard: self._on_response(entry, s, f, hedge=False)
        )
        self._schedule_hedge(entry)

    def _send_hedge(self, entry: _Request, shard: int, link) -> None:
        with entry.lock:
            entry.outstanding += 1
            entry.hedged = True
        with self._metrics_lock:
            self.metrics.counter("cluster.hedges").inc()
        raw = link.request(dict(entry.payload, hedge=True))
        raw.add_done_callback(
            lambda f, s=shard: self._on_response(entry, s, f, hedge=True)
        )

    def _on_response(
        self, entry: _Request, shard: int, raw: Future, hedge: bool
    ) -> None:
        exc = raw.exception()
        if isinstance(exc, TransportError):
            self._note_shard_fault(shard)
            with entry.lock:
                entry.outstanding -= 1
            if entry.future.done():
                return
            if hedge:
                # the hedge died; the primary attempt is still the owner
                self._maybe_fail(entry, exc)
                return
            entry.reroutes += 1
            if entry.reroutes > _MAX_REROUTES:
                self._maybe_fail(entry, exc, force=True)
                return
            self._dispatch(entry, spilled=True)
            return
        if exc is not None:
            with entry.lock:
                entry.outstanding -= 1
            self._maybe_fail(entry, exc)
            return
        try:
            answer = result_from_wire(raw.result())
        except Exception as error:
            with entry.lock:
                entry.outstanding -= 1
            self._maybe_fail(entry, error)
            return
        answer = self._stamp_staleness(entry, answer)
        with entry.lock:
            entry.outstanding -= 1
        try:
            entry.future.set_result(answer)
        except InvalidStateError:
            # the other attempt already won; this one is the loser
            self._count("cluster.hedge_cancelled")
            return
        latency_ms = (time.monotonic() - entry.submitted_at) * 1000.0
        with self._metrics_lock:
            self.metrics.histogram("cluster.latency_ms").observe(latency_ms)
            if hedge:
                self.metrics.counter("cluster.hedge_wins").inc()

    def _maybe_fail(
        self, entry: _Request, error: Exception, *, force: bool = False
    ) -> None:
        """Fail the client future only once no attempt is still in
        flight (an outstanding hedge may yet win)."""
        with entry.lock:
            outstanding = entry.outstanding
        if outstanding > 0 and not force:
            return
        try:
            entry.future.set_exception(error)
        except InvalidStateError:  # pragma: no cover - race with winner
            pass

    def _fault_or_reroute(self, entry: _Request, shard: int) -> None:
        entry.reroutes += 1
        if entry.reroutes > _MAX_REROUTES:
            self._maybe_fail(
                entry,
                TransportError(f"shard {shard} unavailable"),
                force=True,
            )
            return
        self._dispatch(entry, spilled=True)

    # ------------------------------------------------------------------
    # Hedging
    # ------------------------------------------------------------------
    def _hedge_delay_s(self) -> float:
        cluster = self.config.cluster
        if cluster.hedge_delay_s is not None:
            return cluster.hedge_delay_s
        with self._metrics_lock:
            p95_ms = self.metrics.histogram("cluster.latency_ms").quantile(0.95)
        delay = max(
            cluster.min_hedge_delay_s, (p95_ms / 1000.0) * cluster.hedge_factor
        )
        with self._metrics_lock:
            self.metrics.gauge("cluster.hedge_delay_ms").set(delay * 1000.0)
        return delay

    def _schedule_hedge(self, entry: _Request) -> None:
        fire_at = time.monotonic() + self._hedge_delay_s()
        with self._hedge_cv:
            heapq.heappush(
                self._hedge_heap, (fire_at, next(self._hedge_seq), entry)
            )
            self._hedge_cv.notify()

    def _hedge_loop(self) -> None:
        while True:
            with self._hedge_cv:
                while not self._closed.is_set():
                    now = time.monotonic()
                    if self._hedge_heap and self._hedge_heap[0][0] <= now:
                        break
                    wait = (
                        self._hedge_heap[0][0] - now
                        if self._hedge_heap
                        else None
                    )
                    self._hedge_cv.wait(timeout=wait)
                if self._closed.is_set():
                    return
                _, _, entry = heapq.heappop(self._hedge_heap)
            self._issue_hedge(entry)

    def _issue_hedge(self, entry: _Request) -> None:
        if entry.future.done():
            return
        with self._route_lock:
            target, link = self._hedge_target_locked(entry)
        if link is None:
            return
        self._send_hedge(entry, target, link)

    def _hedge_target_locked(self, entry: _Request):
        """The duplicate's destination: a live, unheld replica
        (round-robin), else the ring successor of the primary shard."""
        for _ in range(max(1, len(self._replica_ids))):
            if not self._replica_ids:
                break
            replica = self._replica_ids[
                self._replica_cursor % len(self._replica_ids)
            ]
            self._replica_cursor += 1
            link = self._links.get(replica)
            if link is not None and replica not in self._held:
                return replica, link
        primary = entry.shard
        if primary is None:
            return None, None
        try:
            successor = self._ring.successor(entry.digest, primary)
        except LookupError:  # pragma: no cover - fully ejected ring
            return None, None
        if successor == primary or successor in self._held:
            return None, None
        return successor, self._links.get(successor)

    # ------------------------------------------------------------------
    # Health: per-shard breaker -> eject -> respawn -> rejoin
    # ------------------------------------------------------------------
    def _note_shard_fault(self, shard: int) -> None:
        self._count("cluster.shard_faults")
        if self._breaker.record_fault(shard):
            self._eject(shard)

    def _eject(self, shard: int) -> None:
        """Take a tripped shard out of service and start its revival."""
        held: list[_Request] = []
        with self._route_lock:
            link = self._links.pop(shard, None)
            held = self._held.pop(shard, None) or []
            # the incarnation is gone: bank its last polled counters so
            # shard_stats keeps reporting them after the respawn
            last = self._shard_stats_last.pop(shard, None)
            if last is not None:
                self._shard_stats_prior[shard] = _fold_shard_stats(
                    self._shard_stats_prior.get(shard, {}), last
                )
            if shard in self._shard_ids:
                try:
                    self._ring.eject(shard)
                except RuntimeError:
                    # last active shard: keep it on the ring; the revival
                    # below still replaces the dead process
                    pass
            revive = (
                self._export is not None and shard not in self._reviving
            )
            if revive:
                self._reviving.add(shard)
        self._count("cluster.ejections")
        if link is not None:
            link.close()
        for entry in held:
            self._fault_or_reroute(entry, shard)
        if revive:
            threading.Thread(
                target=self._revive,
                args=(shard,),
                name=f"{self.name}-revive-{shard}",
                daemon=True,
            ).start()

    def _revive(self, shard: int) -> None:
        old = self._processes.get(shard)
        if old is not None:
            old.terminate()
            old.join(timeout=5.0)
        link = None
        try:
            process, link = self._spawn_shard(shard)
            self._catch_up(link)
        except Exception:
            if link is not None:
                link.close()
            with self._route_lock:
                self._reviving.discard(shard)
            self._count("cluster.revive_failures")
            return
        if self._closed.is_set():
            link.close()
            process.terminate()
            return
        with self._route_lock:
            self._processes[shard] = process
            self._links[shard] = link
            self._breaker.reset(shard)
            if shard in self._shard_ids:
                self._ring.rejoin(shard)
            self._reviving.discard(shard)
        self._count("cluster.rejoins")

    def _catch_up(self, link) -> None:
        """Replay post-export table updates into a freshly spawned shard.

        A revived shard attaches the *original* snapshot export, so any
        ``notify_table_update`` applied since must be re-sent (pinning
        the shard to the primary's current version) before the shard
        takes traffic — otherwise a rejoin after a hot swap would serve
        from a stale snapshot version.
        """
        assert self._export is not None
        exported = self._export.descriptor["table_versions"]
        version = self._catalog.version
        stale = [
            table
            for table, current in self._catalog.table_versions.items()
            if current > int(exported.get(table, 0))
        ]
        acks = [
            link.request(
                {"op": "invalidate", "table": table, "version": version}
            )
            for table in stale
        ]
        deadline = self.config.cluster.startup_timeout_s
        for ack in acks:
            response = ack.result(timeout=deadline)
            if not response.get("ok"):
                raise RuntimeError(f"catch-up invalidate failed: {response}")

    def inject_crash(self, shard: int) -> None:
        """Chaos hook: hard-kill one shard process mid-serve (the shard's
        ``crash`` op).  The next requests routed to it fault, trip the
        breaker, and exercise eject -> respawn -> rejoin."""
        with self._route_lock:
            link = self._links.get(shard)
        if link is None:
            raise LookupError(f"no live link to shard {shard}")
        link.request({"op": "crash"})

    # ------------------------------------------------------------------
    # Coherent hot swap
    # ------------------------------------------------------------------
    def attach_staleness(self, tracker) -> None:
        """Stamp served answers with bounded-staleness provenance.

        ``tracker`` is a :class:`~repro.obs.StalenessTracker` shared with
        the ingestion pipeline; every answer's ``staleness_s`` becomes
        the worst pending-write age over the query's tables at response
        time.  Also attached to the primary catalog so ``catalog
        status`` and the merged metrics surface the same gauges.
        """
        self._staleness = tracker
        attach = getattr(self._catalog, "attach_staleness", None)
        if attach is not None:
            attach(tracker)

    def _stamp_staleness(self, entry: _Request, answer):
        tracker = self._staleness
        if tracker is None:
            return answer
        try:
            staleness = tracker.staleness_for(entry.tables)
            return dataclasses.replace(answer, staleness_s=staleness)
        except Exception:  # pragma: no cover - provenance is best-effort
            return answer

    def notify_table_update(self, table: str) -> int:
        """Propagate a base-table change through the whole cluster.

        Order matters: holds are installed *before* the primary version
        bump, so any request admitted after the bump is either held (and
        flushed post-ack at the new version) or routed to an
        already-acked shard — never served from a stale shard snapshot.
        """
        if self._closed.is_set():
            raise ServiceClosed(f"{self.name} is shutting down")
        with self._route_lock:
            members = [
                (member, link) for member, link in self._links.items()
            ]
            for member, _ in members:
                self._held.setdefault(member, [])
        with self._metrics_lock:
            self.metrics.counter("cluster.swaps").inc()
            self.metrics.counter("cluster.holds").inc(len(members))
        table_version = self._catalog.notify_table_update(table)
        version = self._catalog.version
        for member, link in members:
            try:
                inject(
                    POINT_SWAP_UNDER_WRITE,
                    detail=f"member={member} table={table} version={version}",
                )
            except Exception:
                # The fan-out failed at this member before its invalidate
                # went out.  A shard that missed the swap must never serve
                # again at the old version, so eject it outright: its held
                # requests spill to ring successors (flushed at the new
                # version once those ack) and the revival's catch-up
                # replays the invalidate before the shard rejoins.
                self._count("cluster.swap_faults")
                self._eject(member)
                continue
            raw = link.request(
                {"op": "invalidate", "table": table, "version": version}
            )
            raw.add_done_callback(
                lambda f, m=member: self._on_swap_ack(m, f)
            )
        return table_version

    def _on_swap_ack(self, member: int, raw: Future) -> None:
        """One shard acked (or failed) its invalidate: release its hold.

        Held requests re-enter the normal dispatch path — on a failed
        ack the shard's next faults trip the breaker and the requests
        spill to its successors, so a swap never wedges admission.
        """
        exc = raw.exception()
        failed = isinstance(exc, Exception)
        if not failed:
            response = raw.result()
            failed = not response.get("ok")
        with self._route_lock:
            held = self._held.pop(member, None) or []
        if failed:
            self._note_shard_fault(member)
        for entry in held:
            self._dispatch(entry)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop admission, drain in-flight work, stop every shard.

        With ``drain=True`` the router waits (bounded by ``timeout`` /
        ``drain_timeout_s``) for in-flight requests to finish before
        tearing the links down; held and unanswered requests fail with
        :class:`TransportError` once their links close.  Idempotent.
        """
        if self._closed.is_set():
            return True
        timeout = (
            timeout if timeout is not None else self.config.drain_timeout_s
        )
        clean = True
        if drain:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._route_lock:
                    links = list(self._links.values())
                    held = sum(len(entries) for entries in self._held.values())
                if held == 0 and all(
                    link.pending_count == 0 for link in links
                ):
                    break
                time.sleep(0.005)
            else:
                clean = False
        self._closed.set()
        with self._hedge_cv:
            self._hedge_cv.notify_all()
        with self._route_lock:
            links = list(self._links.values())
            self._links.clear()
            held = [
                entry
                for entries in self._held.values()
                for entry in entries
            ]
            self._held.clear()
        for entry in held:
            self._maybe_fail(
                entry, ServiceClosed("cluster closed before serving"), force=True
            )
        for link in links:
            link.close()
        self._shutdown_processes()
        if self._export is not None:
            self._export.close()
            self._export.unlink()
            self._export = None
        self._hedge_thread.join(timeout=5.0)
        return clean

    def _shutdown_processes(self) -> None:
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        for process in self._processes.values():
            process.join(timeout=5.0)
        self._processes.clear()

    def __enter__(self) -> "EstimationCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _count(self, key: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self.metrics.counter(key).inc(amount)

    def metrics_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        with self._metrics_lock:
            registry.merge(self.metrics)
        with self._route_lock:
            active = len(self._ring.active)
            ejected = len(self._ring.ejected)
            held = sum(len(entries) for entries in self._held.values())
            replicas = sum(
                1 for member in self._replica_ids if member in self._links
            )
        registry.gauge("cluster.shards").set(float(active))
        registry.gauge("cluster.replicas").set(float(replicas))
        registry.gauge("cluster.ejected").set(float(ejected))
        registry.gauge("cluster.holding").set(float(held))
        registry.gauge("cluster.closed").set(1.0 if self.closed else 0.0)
        registry.merge(self._catalog.metrics_registry())
        return registry

    def stats_snapshot(self) -> StatsSnapshot:
        """Router-side telemetry under the ``cluster`` namespace (plus
        the primary catalog's).  Shard-internal counters stay in the
        shards; fetch them with :meth:`shard_stats`."""
        cluster = self.config.cluster
        return StatsSnapshot.from_registry(
            self.metrics_registry(),
            meta={
                "subsystem": "cluster",
                "name": self.name,
                "shards": cluster.shards,
                "replicas": cluster.replicas,
                "ring_points": cluster.ring_points,
                "shard_workers": cluster.shard_workers,
            },
        )

    def shard_stats(self, timeout_s: float = 10.0) -> dict[int, dict]:
        """Per-member ``stats`` snapshots, accumulated across restarts.

        Each poll remembers the member's latest live snapshot; when a
        shard is ejected that snapshot is folded into a per-member prior,
        and a revived shard's fresh numbers are merged on top
        (:func:`_fold_shard_stats`) — so per-shard ``counters`` survive
        eject → respawn → rejoin instead of resetting with the process.
        Members currently without a live link report their folded prior
        alone.
        """
        with self._route_lock:
            links = dict(self._links)
            prior = dict(self._shard_stats_prior)
        futures = {
            member: link.request({"op": "stats"})
            for member, link in links.items()
        }
        out: dict[int, dict] = {}
        for member, future in futures.items():
            try:
                response = future.result(timeout=timeout_s)
            except Exception:
                continue
            if not response.get("ok"):
                continue
            live = response.get("stats", {})
            with self._route_lock:
                self._shard_stats_last[member] = live
            out[member] = (
                _fold_shard_stats(prior[member], live)
                if member in prior
                else live
            )
        for member, banked in prior.items():
            if member not in out and member not in links:
                out[member] = banked
        return out


__all__ = ["EstimationCluster"]
