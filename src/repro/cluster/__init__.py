"""``repro.cluster`` — the sharded multi-process estimation tier.

DP enumeration is GIL-bound, so one Python process cannot scale the
service across cores no matter how many worker threads it runs.  This
package moves the parallelism to the OS-process level without paying a
per-process copy of the statistics:

* :mod:`repro.cluster.shm` — one catalog snapshot **exported** into a
  single ``multiprocessing.shared_memory`` segment; every shard
  process **attaches** it read-only and rebuilds a serving catalog
  zero-copy (estimates stay bit-identical to the exporter's);
* :mod:`repro.cluster.shard` — the child-process entrypoint: a full
  :class:`~repro.service.EstimationService` behind a TCP front-end
  that adds the cluster control ops (``invalidate``, ``crash``);
* :mod:`repro.cluster.ring` — consistent hashing of query-template
  fingerprints onto shards, with eject / spill-to-successor / rejoin;
* :mod:`repro.cluster.router` — :class:`EstimationCluster`, the one
  public entry: spawns the shards, routes by template so per-shard
  caches stay hot, hedges tail requests, ejects and revives tripped
  shards, and fans table updates out coherently.

The router duck-types :class:`~repro.service.EstimationService`, so the
redesigned client API needs no cluster-specific spelling::

    from repro.cluster import EstimationCluster
    from repro.service import connect

    with EstimationCluster(catalog) as cluster:
        with connect(cluster) as client:
            answer = client.estimate("SELECT * FROM sales, customer WHERE ...")
"""

from repro.cluster.ring import HashRing
from repro.cluster.router import EstimationCluster
from repro.cluster.shard import ShardServer, shard_main
from repro.cluster.shm import (
    AttachedSnapshot,
    SnapshotExport,
    StatsOnlyDatabase,
    attach_snapshot,
    export_snapshot,
)

__all__ = [
    "AttachedSnapshot",
    "EstimationCluster",
    "HashRing",
    "ShardServer",
    "SnapshotExport",
    "StatsOnlyDatabase",
    "attach_snapshot",
    "export_snapshot",
    "shard_main",
]
