"""Snapshot-pinned estimation sessions with cross-query cache sharing.

An :class:`EstimationSession` is the unit of *serving*: it pins one
:class:`~repro.catalog.catalog.CatalogSnapshot` and answers any number of
estimation requests off it.  Because the underlying
:class:`~repro.core.get_selectivity.GetSelectivity` keeps its
factor-match and factor-estimate caches *pool-pure* (they survive
``reset()``), queries within a session share the
:class:`~repro.core.matching.ViewMatcher` work: the second query that
needs ``Sel(P'|Q)`` for a factor the first query already matched pays a
dictionary lookup instead of a matching pass.  The session accumulates
the cross-query hit/miss accounting and surfaces it — together with the
snapshot/catalog versions it is keyed on — in the ``catalog`` block of
its :class:`~repro.obs.snapshot.StatsSnapshot`.

Snapshot isolation: a catalog refresh or table update never touches a
running session's statistics (the catalog publishes new pool objects
instead of mutating published ones).  :attr:`is_current` reports whether
the pinned snapshot still matches the catalog, so a serving layer can
rotate sessions at its own pace.

Threading contract (the serving layer relies on this):

* **Pinned-snapshot invariant** — the session's :attr:`pool` is the
  *object* published in the pinned snapshot and is never re-resolved:
  ``session.pool is session.snapshot.pool`` for the session's whole
  life.  Because the catalog is copy-on-write, a concurrent
  ``catalog.refresh()`` / ``notify_table_update`` can only publish *new*
  pool objects; it can never mutate the membership of the one a session
  estimates against.  (:meth:`assert_pinned` checks the invariant and is
  exercised by the concurrency regression tests.)
* **Hand-off, not sharing** — a session may be *handed between threads*
  for read-only estimation (worker A finishes a batch, worker B picks
  the session up), but must never be driven by two threads at once: the
  DP memo, accounting windows and shared caches are mutated per query.
  This is *enforced*: estimation entry points take a non-blocking owner
  lock and raise :class:`RuntimeError` on concurrent use instead of
  corrupting state silently.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Mapping

from repro.core.errors import ErrorFunction
from repro.core.get_selectivity import EstimationResult
from repro.core.predicates import PredicateSet, tables_of
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.estimators import Estimator, create_estimator
from repro.resilience.faults import (
    POINT_SNAPSHOT_PIN,
    active as _fault_plan,
)
from repro.stats.pool import SITPool

from repro.catalog.catalog import CatalogSnapshot, StatisticsCatalog


def _pin_snapshot(statistics) -> tuple[SITPool, CatalogSnapshot | None]:
    """Resolve a catalog / snapshot / bare pool into (pool, snapshot)."""
    if isinstance(statistics, StatisticsCatalog):
        snapshot = statistics.snapshot()
    elif isinstance(statistics, CatalogSnapshot):
        snapshot = statistics
    elif isinstance(statistics, SITPool):
        plan = _fault_plan()
        if plan is not None:
            plan.check(POINT_SNAPSHOT_PIN, detail="version=0")
        return statistics, None
    else:
        raise TypeError(
            "statistics must be a StatisticsCatalog, CatalogSnapshot or "
            f"SITPool, got {type(statistics).__name__}"
        )
    plan = _fault_plan()
    if plan is not None:
        # snapshot-pin injection point: the snapshot's backing state is
        # unavailable right as a session/worker tries to pin it
        plan.check(POINT_SNAPSHOT_PIN, detail=f"version={snapshot.version}")
    return snapshot.pool, snapshot


class EstimationSession:
    """Many queries, one snapshot, shared matcher/estimate caches."""

    def __init__(
        self,
        statistics: "StatisticsCatalog | CatalogSnapshot | SITPool",
        error_function: ErrorFunction | None = None,
        *,
        database: Database | None = None,
        backend: str = "sit",
        engine: str = "bitmask",
        sit_driven_pruning: bool = False,
        estimator: Estimator | None = None,
        name: str | None = None,
        strict: bool = False,
        plan_cache: bool = True,
    ):
        pool, snapshot = _pin_snapshot(statistics)
        self.snapshot = snapshot
        if database is None and snapshot is not None:
            database = snapshot.database
        if estimator is not None:
            self.estimator = estimator
            database = estimator.database
        else:
            if database is None:
                raise ValueError(
                    "a database is required (pass one explicitly, or use a "
                    "catalog built with a database)"
                )
            if backend == "sit":
                kwargs = dict(
                    error_function=error_function,
                    sit_driven_pruning=sit_driven_pruning,
                    engine=engine,
                    strict=strict,
                    plan_cache=plan_cache,
                )
            else:
                kwargs = {}
            self.estimator = create_estimator(
                backend,
                database,
                snapshot if snapshot is not None else pool,
                **kwargs,
            )
        self.database = database
        self.name = name if name is not None else self.estimator.name
        #: queries answered so far
        self.queries = 0
        #: the pool object pinned at construction (identity is the
        #: snapshot-isolation invariant; see :meth:`assert_pinned`)
        self._pinned_pool = self.estimator.pool
        # single-owner guard: estimation is hand-off safe across threads
        # but never concurrency-safe (see the module docstring)
        self._owner_lock = threading.Lock()
        # -- cross-query accumulators (per-query counters roll in here on
        #    every begin_query) ------------------------------------------
        self._match_cache_hits = 0
        self._match_cache_misses = 0
        self._matcher_calls = 0
        self._analysis_seconds = 0.0
        self._estimation_seconds = 0.0
        #: optional ``(predicates, result) -> None`` hook invoked after
        #: every answered query — the self-tuning advisor's observation
        #: point (:mod:`repro.advisor`).  Sink errors are swallowed:
        #: feedback is advisory and must never fail serving.
        self.feedback_sink = None
        #: optional :class:`repro.obs.StalenessTracker` — when set, every
        #: answer is stamped with the worst-case serving-snapshot
        #: staleness over the tables it touched (``staleness_s``
        #: provenance; see :mod:`repro.ingest`).  Stamping uses
        #: ``dataclasses.replace`` on a ``compare=False`` field, so
        #: parity comparisons are unaffected.
        self.staleness_tracker = None
        # register the compiled-plan cache with the owning catalog so
        # `catalog.status()` can aggregate live caches (weakly held — a
        # retired session's cache unregisters itself)
        if (
            self.plan_cache is not None
            and self.snapshot is not None
            and self.snapshot.catalog is not None
        ):
            self.snapshot.catalog.attach_plan_cache(self.plan_cache)

    # ------------------------------------------------------------------
    @property
    def pool(self) -> SITPool:
        return self.estimator.pool

    @property
    def plan_cache(self):
        """The estimator's compiled-plan cache, or ``None`` (shared by
        every query the session answers)."""
        return self.estimator.plan_cache

    @property
    def snapshot_version(self) -> int:
        """The catalog version this session is keyed on (0 for bare pools)."""
        return self.snapshot.version if self.snapshot is not None else 0

    @property
    def is_current(self) -> bool:
        """True while the pinned snapshot matches the owning catalog (a
        bare-pool session is trivially current)."""
        return self.snapshot is None or self.snapshot.is_current

    # ------------------------------------------------------------------
    def _absorb(self) -> None:
        """Fold the estimator's per-query counters into session totals."""
        estimator = self.estimator
        self._match_cache_hits += estimator.match_cache_hits
        self._match_cache_misses += estimator.match_cache_misses
        self._matcher_calls += estimator.view_matching_calls
        self._analysis_seconds += estimator.analysis_seconds
        self._estimation_seconds += estimator.estimation_seconds

    def begin_query(self) -> None:
        """Start a new per-query accounting window.

        Clears the DP memo and counters; the pool-pure factor-match and
        estimate caches survive — that survival is the session's whole
        point.
        """
        self._absorb()
        self.estimator.reset()

    # ------------------------------------------------------------------
    def assert_pinned(self) -> None:
        """Check the pinned-snapshot invariant (cheap; raises on breach).

        The pool a session estimates against must be the *same object*
        for the session's whole life — a concurrent catalog refresh may
        publish new pools but must never swap or mutate this one.
        """
        if self.estimator.pool is not self._pinned_pool:
            raise RuntimeError(
                "pinned-snapshot invariant violated: the session's pool "
                "object changed underneath it"
            )
        if self.snapshot is not None and self.snapshot.pool is not self._pinned_pool:
            raise RuntimeError(
                "pinned-snapshot invariant violated: the snapshot's pool "
                "was replaced after pinning"
            )

    def _stamp_staleness(self, predicates, result):
        """Attach ``staleness_s`` provenance when a tracker is wired."""
        tracker = self.staleness_tracker
        if tracker is None or result is None:
            return result
        try:
            staleness = tracker.staleness_for(tables_of(predicates))
        except Exception:
            return result
        return dataclasses.replace(result, staleness_s=staleness)

    def _emit_feedback(self, predicates, result) -> None:
        sink = self.feedback_sink
        if sink is None or result is None:
            return
        try:
            sink(predicates, result)
        except Exception:
            pass

    def _acquire_owner(self):
        if not self._owner_lock.acquire(blocking=False):
            raise RuntimeError(
                "EstimationSession is single-owner: it may be handed "
                "between threads but not driven concurrently; give each "
                "worker its own session (see repro.service)"
            )
        return self._owner_lock

    # ------------------------------------------------------------------
    def estimate(self, query: Query | PredicateSet) -> EstimationResult:
        """Answer one workload query (opens a fresh accounting window)."""
        lock = self._acquire_owner()
        try:
            self.begin_query()
            self.queries += 1
            predicates = (
                query.predicates
                if isinstance(query, Query)
                else frozenset(query)
            )
            result = self.estimator.estimate_predicates(predicates)
            self._emit_feedback(predicates, result)
            return self._stamp_staleness(predicates, result)
        finally:
            lock.release()

    def estimate_predicates(self, predicates: PredicateSet) -> EstimationResult:
        """A sub-query of the current query (same accounting window)."""
        lock = self._acquire_owner()
        try:
            return self.estimator.estimate_predicates(frozenset(predicates))
        finally:
            lock.release()

    def estimate_batch(
        self, predicate_sets
    ) -> list[EstimationResult]:
        """Answer a group of queries in one accounting window.

        With the plan cache enabled, members are probed by *shape*:
        template hits are grouped per compiled plan and replayed as one
        stacked numpy op per plan
        (:meth:`~repro.core.plancache.CompiledPlan.replay_batch`); misses
        take the full path and compile, so later same-shape members of
        the same batch already hit.  Results are positional and each is
        identical to what :meth:`estimate` would have returned.
        """
        lock = self._acquire_owner()
        try:
            sets = [frozenset(ps) for ps in predicate_sets]
            self.queries += len(sets)
            results: list[EstimationResult | None] = [None] * len(sets)
            cache = self.plan_cache
            if cache is None:
                # one accounting window per member, exactly like N
                # :meth:`estimate` calls (the shared match/estimate
                # caches still do the cross-member work)
                for i, ps in enumerate(sets):
                    self.begin_query()
                    results[i] = self.estimator.estimate_predicates(ps)
                    self._emit_feedback(ps, results[i])
                    results[i] = self._stamp_staleness(ps, results[i])
                return results
            # plan id -> (plan, [(member index, str-ordered predicates)])
            groups: dict = {}
            for i, ps in enumerate(sets):
                plan, ordered = cache.plan_for(ps)
                if plan is None:
                    self.begin_query()
                    results[i] = self.estimator.estimate_predicates(
                        ps, use_plan_cache=False
                    )
                else:
                    groups.setdefault(id(plan), (plan, []))[1].append(
                        (i, ordered)
                    )
            for plan, members in groups.values():
                replayed = plan.replay_batch(
                    [ordered for _, ordered in members]
                )
                for (i, _), result in zip(members, replayed):
                    results[i] = result
            for ps, result in zip(sets, results):
                self._emit_feedback(ps, result)
            if self.staleness_tracker is not None:
                results = [
                    self._stamp_staleness(ps, result)
                    for ps, result in zip(sets, results)
                ]
            return results
        finally:
            lock.release()

    def selectivity(self, query: Query | PredicateSet) -> float:
        return self.estimate(query).selectivity

    def cardinality(self, query: Query | PredicateSet) -> float:
        result = self.estimate(query)
        tables = (
            query.tables
            if isinstance(query, Query)
            else tables_of(frozenset(query))
        )
        return result.selectivity * self.database.cross_product_size(tables)

    def explain(self, query: Query | str):
        """``EXPLAIN ESTIMATE`` through the session's estimator."""
        return self.estimator.explain(query)

    # ------------------------------------------------------------------
    @property
    def match_cache_hits(self) -> int:
        """Cross-query factor-match cache hits (in-flight window included)."""
        return self._match_cache_hits + self.estimator.match_cache_hits

    @property
    def match_cache_misses(self) -> int:
        return self._match_cache_misses + self.estimator.match_cache_misses

    @property
    def match_cache_hit_rate(self) -> float:
        """Session-lifetime hit rate of the shared factor-match cache."""
        hits = self.match_cache_hits
        total = hits + self.match_cache_misses
        return hits / total if total else 0.0

    # ------------------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """Session-lifetime metrics: shared-cache accounting under the
        usual namespaces plus the ``catalog`` identity block."""
        estimator = self.estimator
        registry = MetricsRegistry()
        gauge = registry.gauge
        counter = registry.counter
        gauge("timings.analysis_seconds").set(
            self._analysis_seconds + estimator.analysis_seconds
        )
        gauge("timings.estimation_seconds").set(
            self._estimation_seconds + estimator.estimation_seconds
        )
        counter("counters.matcher_calls").inc(
            self._matcher_calls + estimator.view_matching_calls
        )
        counter("counters.queries").inc(self.queries)
        counter("caches.match_cache_hits").inc(self.match_cache_hits)
        counter("caches.match_cache_misses").inc(self.match_cache_misses)
        gauge("caches.match_cache_entries").set(estimator.match_cache_entries)
        gauge("caches.estimate_cache_entries").set(
            estimator.estimate_cache_entries
        )
        gauge("catalog.snapshot_version").set(float(self.snapshot_version))
        if self.snapshot is not None and self.snapshot.catalog is not None:
            gauge("catalog.catalog_version").set(
                float(self.snapshot.catalog.version)
            )
        gauge("catalog.current").set(1.0 if self.is_current else 0.0)
        gauge("catalog.sit_count").set(
            float(len(self.pool)) if self.pool is not None else 0.0
        )
        gauge("catalog.match_cache_hit_rate").set(self.match_cache_hit_rate)
        resilience = self.estimator.resilience
        if resilience:
            for key, value in resilience.as_dict().items():
                counter(f"resilience.{key}").inc(value)
        cache = self.plan_cache
        if cache is not None:
            for key, value in cache.stats_namespace().items():
                gauge(f"plan_cache.{key}").set(float(value))
        return registry

    def stats_snapshot(self) -> StatsSnapshot:
        """The session's ``StatsSnapshot``: cross-query cache efficiency in
        ``caches``, snapshot/catalog versions and the session-lifetime
        match-cache hit rate in the ``catalog`` namespace."""
        meta: Mapping[str, object] = {
            "session": self.name,
            "engine": self.estimator.engine,
            "backend": self.estimator.backend,
            "queries": self.queries,
            "snapshot_version": self.snapshot_version,
            "current": self.is_current,
        }
        return StatsSnapshot.from_registry(self.metrics_registry(), meta=meta)


__all__ = ["EstimationSession"]
