"""The statistics catalog: one versioned, snapshot-isolated subsystem
unifying the SIT lifecycle — build → serve → feedback → invalidate →
refresh.

Layering:

* :mod:`repro.catalog.catalog` — the :class:`StatisticsCatalog` registry
  (per-SIT provenance metadata, table versions, the single
  ``notify_table_update`` invalidation event path) and the immutable
  :class:`CatalogSnapshot` it publishes;
* :mod:`repro.catalog.refresh` — :class:`RefreshPolicy` /
  :func:`execute_refresh`: incremental rebuild of exactly the stale SITs
  (full-scan or sampled) plus the advisor's space-budget re-ranking;
* :mod:`repro.catalog.session` — :class:`EstimationSession`: many
  queries against one pinned snapshot, sharing the pool-pure
  factor-match and estimate caches across queries.

The underlying statistics structures (pools, builders, SITs, the v2
persistence format) stay in :mod:`repro.stats`; this package owns their
*lifecycle*.
"""

from repro.catalog.catalog import (
    BUILD_FULL,
    BUILD_SAMPLED,
    CatalogSnapshot,
    RefreshConflict,
    SITKey,
    SITMetadata,
    StatisticsCatalog,
    sit_key,
)
from repro.catalog.refresh import RefreshPolicy, RefreshReport, execute_refresh
from repro.catalog.session import EstimationSession

__all__ = [
    "BUILD_FULL",
    "BUILD_SAMPLED",
    "CatalogSnapshot",
    "EstimationSession",
    "RefreshConflict",
    "RefreshPolicy",
    "RefreshReport",
    "SITKey",
    "SITMetadata",
    "StatisticsCatalog",
    "execute_refresh",
    "sit_key",
]
